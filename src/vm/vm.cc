#include "src/vm/vm.h"

#include <array>
#include <chrono>
#include <cmath>
#include <memory>

#include "src/vm/vm_ops.h"

// Dispatch strategy. On GCC/Clang the interpreter uses computed goto (a label
// address table indexed by opcode), which gives each handler its own indirect
// branch and lets the CPU's branch predictor learn per-opcode successor
// patterns — the classic "threaded code" win over a single switch whose one
// indirect branch aliases every opcode transition. Define
// OSGUARD_VM_SWITCH_DISPATCH (or build with a compiler without the extension)
// to force the portable switch loop; both paths share the same handler bodies
// via the VM_CASE / VM_NEXT macros, so they cannot drift apart semantically.
#if !defined(OSGUARD_VM_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define OSGUARD_VM_COMPUTED_GOTO 1
#else
#define OSGUARD_VM_COMPUTED_GOTO 0
#endif

namespace osguard {

bool TruthyValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNil:
      return false;
    case ValueType::kBool:
      return *value.IfBool();
    case ValueType::kInt:
      return *value.IfInt() != 0;
    case ValueType::kFloat:
      return *value.IfFloat() != 0.0;
    case ValueType::kString:
      return !value.IfString()->empty();
    case ValueType::kList:
      return !value.IfList()->empty();
  }
  return false;
}

namespace {

bool Truthy(const Value& v) { return TruthyValue(v); }

// The scalar semantics (wrapping arithmetic, Arith/Compare fault rules, the
// numeric fast-path coercions) are shared with the native tier's host shim —
// see src/vm/vm_ops.h for the definitions and the determinism rationale.
using vm_ops::Arith;
using vm_ops::Compare;
using vm_ops::DoCompare;
using vm_ops::ToDouble;
using vm_ops::WrapAdd;
using vm_ops::WrapMul;
using vm_ops::WrapNeg;
using vm_ops::WrapSub;

inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wall deadlines are polled every 32 instructions: guardrail programs are
// typically shorter than that, so max_steps is the precise knob and the
// deadline only catches pathologically long programs without putting a clock
// read on every instruction.
inline bool BudgetExhausted(const ExecBudget& budget, int64_t executed) {
  if (budget.max_steps > 0 && executed > budget.max_steps) {
    return true;
  }
  if (budget.deadline_wall_ns > 0 && (executed & 31) == 0 &&
      SteadyNowNs() >= budget.deadline_wall_ns) {
    return true;
  }
  return false;
}

}  // namespace

Result<Value> Vm::Execute(const Program& program, HelperContext& context,
                          const ExecBudget* budget) {
  // Register file: normally the member scratch array (reused across calls so
  // a 1 kHz monitor doesn't churn 64 Value constructions per tick); on
  // re-entrant execution a heap-allocated spare.
  std::unique_ptr<std::array<Value, kMaxRegisters>> spare;
  Value* regs;
  if (!scratch_in_use_) {
    scratch_in_use_ = true;
    regs = scratch_regs_.data();
  } else {
    spare = std::make_unique<std::array<Value, kMaxRegisters>>();
    regs = spare->data();
  }
  struct ScratchGuard {
    Vm* vm;
    bool release;
    ~ScratchGuard() {
      if (release) {
        vm->scratch_in_use_ = false;
      }
    }
  } scratch_guard{this, spare == nullptr};

  const Insn* const insns = program.insns.data();
  const Value* const consts = program.consts.data();
  const size_t n = program.insns.size();
  size_t pc = 0;
  int64_t executed = 0;
  const Insn* insn = nullptr;
  Status fault;

#if OSGUARD_VM_COMPUTED_GOTO
  // Indexed by static_cast<int>(Op); must stay in enum declaration order.
  static const void* const kDispatch[kOpCount] = {
      &&lbl_LoadConst, &&lbl_Mov,         &&lbl_Add,        &&lbl_Sub,
      &&lbl_Mul,       &&lbl_Div,         &&lbl_Mod,        &&lbl_Neg,
      &&lbl_Not,       &&lbl_Cmp,         &&lbl_Cmp,        &&lbl_Cmp,
      &&lbl_Cmp,       &&lbl_Cmp,         &&lbl_Cmp,        &&lbl_Jump,
      &&lbl_JumpIfFalse, &&lbl_JumpIfTrue, &&lbl_MakeList,  &&lbl_Call,
      &&lbl_Ret,       &&lbl_CmpConst,    &&lbl_CmpConstJf, &&lbl_CmpConstJt,
      &&lbl_CmpRegJf,  &&lbl_CmpRegJt,    &&lbl_CallKeyed,
  };

#define VM_CASE(name) lbl_##name:
#define VM_NEXT()                                             \
  do {                                                        \
    if (pc >= n) goto lbl_off_end;                            \
    if (++executed > kMaxInstructions) goto lbl_budget;       \
    if (budget != nullptr && BudgetExhausted(*budget, executed)) \
      goto lbl_user_budget;                                   \
    insn = &insns[pc];                                        \
    if (static_cast<int>(insn->op) >= kOpCount) goto lbl_bad_op; \
    goto* kDispatch[static_cast<int>(insn->op)];              \
  } while (0)

  VM_NEXT();  // initial dispatch

#else  // switch fallback

#define VM_CASE(name) case Op::k##name:
#define VM_NEXT() continue

  for (;;) {
    if (pc >= n) goto lbl_off_end;
    if (++executed > kMaxInstructions) goto lbl_budget;
    if (budget != nullptr && BudgetExhausted(*budget, executed)) goto lbl_user_budget;
    insn = &insns[pc];
    switch (insn->op) {
#endif

      VM_CASE(LoadConst) {
        regs[insn->a] = consts[static_cast<size_t>(insn->imm)];
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Mov) {
        regs[insn->a] = regs[insn->b];
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Add) {
        const Value& lhs = regs[insn->b];
        const Value& rhs = regs[insn->c];
        if (const int64_t* li = lhs.IfInt()) {
          if (const int64_t* ri = rhs.IfInt()) {
            regs[insn->a] = Value(WrapAdd(*li, *ri));
            ++pc;
            VM_NEXT();
          }
        }
        double a;
        double b;
        if (ToDouble(lhs, &a) && ToDouble(rhs, &b)) {
          regs[insn->a] = Value(a + b);
          ++pc;
          VM_NEXT();
        }
        auto result = Arith(Op::kAdd, lhs, rhs);
        if (!result.ok()) {
          fault = result.status();
          goto lbl_fault;
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Sub) {
        const Value& lhs = regs[insn->b];
        const Value& rhs = regs[insn->c];
        if (const int64_t* li = lhs.IfInt()) {
          if (const int64_t* ri = rhs.IfInt()) {
            regs[insn->a] = Value(WrapSub(*li, *ri));
            ++pc;
            VM_NEXT();
          }
        }
        double a;
        double b;
        if (ToDouble(lhs, &a) && ToDouble(rhs, &b)) {
          regs[insn->a] = Value(a - b);
          ++pc;
          VM_NEXT();
        }
        auto result = Arith(Op::kSub, lhs, rhs);
        if (!result.ok()) {
          fault = result.status();
          goto lbl_fault;
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Mul) {
        const Value& lhs = regs[insn->b];
        const Value& rhs = regs[insn->c];
        if (const int64_t* li = lhs.IfInt()) {
          if (const int64_t* ri = rhs.IfInt()) {
            regs[insn->a] = Value(WrapMul(*li, *ri));
            ++pc;
            VM_NEXT();
          }
        }
        double a;
        double b;
        if (ToDouble(lhs, &a) && ToDouble(rhs, &b)) {
          regs[insn->a] = Value(a * b);
          ++pc;
          VM_NEXT();
        }
        auto result = Arith(Op::kMul, lhs, rhs);
        if (!result.ok()) {
          fault = result.status();
          goto lbl_fault;
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Div) {
        double a;
        double b;
        if (ToDouble(regs[insn->b], &a) && ToDouble(regs[insn->c], &b) && b != 0.0) {
          regs[insn->a] = Value(a / b);
          ++pc;
          VM_NEXT();
        }
        auto result = Arith(Op::kDiv, regs[insn->b], regs[insn->c]);
        if (!result.ok()) {
          fault = result.status();
          goto lbl_fault;
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Mod) {
        auto result = Arith(Op::kMod, regs[insn->b], regs[insn->c]);
        if (!result.ok()) {
          fault = result.status();
          goto lbl_fault;
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Neg) {
        const Value& v = regs[insn->b];
        if (const int64_t* i = v.IfInt()) {
          regs[insn->a] = Value(WrapNeg(*i));
        } else if (const double* d = v.IfFloat()) {
          regs[insn->a] = Value(-*d);
        } else if (const bool* bv = v.IfBool()) {
          regs[insn->a] = Value(*bv ? -1 : 0);
        } else {
          fault = ExecutionError("cannot negate " + v.ToString());
          goto lbl_fault;
        }
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Not) {
        regs[insn->a] = Value(!Truthy(regs[insn->b]));
        ++pc;
        VM_NEXT();
      }
#if OSGUARD_VM_COMPUTED_GOTO
      VM_CASE(Cmp) {
#else
      VM_CASE(CmpLt)
      VM_CASE(CmpLe)
      VM_CASE(CmpGt)
      VM_CASE(CmpGe)
      VM_CASE(CmpEq)
      VM_CASE(CmpNe) {
#endif
        bool flag;
        if (!DoCompare(CmpOpToKind(insn->op), regs[insn->b], regs[insn->c], &flag,
                       &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Jump) {
        pc += 1 + static_cast<size_t>(insn->imm);
        VM_NEXT();
      }
      VM_CASE(JumpIfFalse) {
        pc += Truthy(regs[insn->a]) ? 1 : 1 + static_cast<size_t>(insn->imm);
        VM_NEXT();
      }
      VM_CASE(JumpIfTrue) {
        pc += Truthy(regs[insn->a]) ? 1 + static_cast<size_t>(insn->imm) : 1;
        VM_NEXT();
      }
      VM_CASE(MakeList) {
        std::vector<Value> list;
        list.reserve(static_cast<size_t>(insn->imm));
        for (int i = 0; i < insn->imm; ++i) {
          list.push_back(regs[insn->b + i]);
        }
        regs[insn->a] = Value(std::move(list));
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Call) {
        ++stats_.helper_calls;
        std::span<const Value> args(&regs[insn->b], static_cast<size_t>(insn->c));
        auto result = context.CallHelper(static_cast<HelperId>(insn->imm), args);
        if (!result.ok()) {
          stats_.insns_executed += executed;
          return ExecutionError("program '" + program.name + "': helper failed: " +
                                result.status().ToString());
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }
      VM_CASE(Ret) {
        stats_.insns_executed += executed;
        return regs[insn->a];
      }
      VM_CASE(CmpConst) {
        bool flag;
        if (!DoCompare(insn->c, regs[insn->b], consts[static_cast<size_t>(insn->imm)],
                       &flag, &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        ++pc;
        VM_NEXT();
      }
      VM_CASE(CmpConstJf) {
        bool flag;
        if (!DoCompare(insn->c, regs[insn->b], consts[static_cast<size_t>(insn->imm)],
                       &flag, &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        pc += flag ? 1 : 1 + static_cast<size_t>(insn->aux);
        VM_NEXT();
      }
      VM_CASE(CmpConstJt) {
        bool flag;
        if (!DoCompare(insn->c, regs[insn->b], consts[static_cast<size_t>(insn->imm)],
                       &flag, &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        pc += flag ? 1 + static_cast<size_t>(insn->aux) : 1;
        VM_NEXT();
      }
      VM_CASE(CmpRegJf) {
        bool flag;
        if (!DoCompare(insn->imm, regs[insn->b], regs[insn->c], &flag, &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        pc += flag ? 1 : 1 + static_cast<size_t>(insn->aux);
        VM_NEXT();
      }
      VM_CASE(CmpRegJt) {
        bool flag;
        if (!DoCompare(insn->imm, regs[insn->b], regs[insn->c], &flag, &fault)) {
          goto lbl_fault;
        }
        regs[insn->a] = Value(flag);
        pc += flag ? 1 + static_cast<size_t>(insn->aux) : 1;
        VM_NEXT();
      }
      VM_CASE(CallKeyed) {
        ++stats_.helper_calls;
        std::span<const Value> args(&regs[insn->b], static_cast<size_t>(insn->c));
        auto result = context.CallHelperKeyed(static_cast<HelperId>(insn->imm),
                                              static_cast<uint32_t>(insn->aux), args);
        if (!result.ok()) {
          stats_.insns_executed += executed;
          return ExecutionError("program '" + program.name + "': helper failed: " +
                                result.status().ToString());
        }
        regs[insn->a] = std::move(result).value();
        ++pc;
        VM_NEXT();
      }

#if !OSGUARD_VM_COMPUTED_GOTO
      default:
        goto lbl_bad_op;
    }  // switch
  }    // for
#endif

#undef VM_CASE
#undef VM_NEXT

lbl_off_end:
  stats_.insns_executed += executed;
  return ExecutionError("program '" + program.name + "' ran off the end");
lbl_budget:
  stats_.insns_executed += executed;
  return ExecutionError("program '" + program.name + "' exceeded the instruction budget");
lbl_user_budget:
  stats_.insns_executed += executed;
  ++stats_.budget_aborts;
  return ResourceExhaustedError("program '" + program.name +
                                "' exceeded its runtime budget after " +
                                std::to_string(executed) + " steps");
lbl_bad_op:
  stats_.insns_executed += executed;
  return ExecutionError("program '" + program.name + "': unknown opcode " +
                        std::to_string(static_cast<int>(insn->op)));
lbl_fault:
  stats_.insns_executed += executed;
  return fault;
}

}  // namespace osguard
