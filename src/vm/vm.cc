#include "src/vm/vm.h"

#include <array>
#include <cmath>

namespace osguard {

bool TruthyValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNil:
      return false;
    case ValueType::kBool:
      return value.AsBool().value();
    case ValueType::kInt:
      return value.AsInt().value() != 0;
    case ValueType::kFloat:
      return value.AsFloat().value() != 0.0;
    case ValueType::kString:
      return !value.AsString().value().empty();
    case ValueType::kList:
      return !value.AsList().value().empty();
  }
  return false;
}

namespace {

bool Truthy(const Value& v) { return TruthyValue(v); }

Result<Value> Arith(Op op, const Value& lhs, const Value& rhs) {
  if (!lhs.is_numeric() && lhs.type() != ValueType::kBool) {
    return ExecutionError("arithmetic on non-numeric value " + lhs.ToString());
  }
  if (!rhs.is_numeric() && rhs.type() != ValueType::kBool) {
    return ExecutionError("arithmetic on non-numeric value " + rhs.ToString());
  }
  const bool both_int = lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt;
  const double a = lhs.NumericOr(0.0);
  const double b = rhs.NumericOr(0.0);
  switch (op) {
    case Op::kAdd:
      return both_int ? Value(lhs.AsInt().value() + rhs.AsInt().value()) : Value(a + b);
    case Op::kSub:
      return both_int ? Value(lhs.AsInt().value() - rhs.AsInt().value()) : Value(a - b);
    case Op::kMul:
      return both_int ? Value(lhs.AsInt().value() * rhs.AsInt().value()) : Value(a * b);
    case Op::kDiv:
      if (b == 0.0) {
        return ExecutionError("division by zero");
      }
      return Value(a / b);
    case Op::kMod: {
      if (b == 0.0) {
        return ExecutionError("modulo by zero");
      }
      if (both_int) {
        return Value(lhs.AsInt().value() % rhs.AsInt().value());
      }
      return Value(std::fmod(a, b));
    }
    default:
      return InternalError("not an arithmetic op");
  }
}

// Numbers and bools all participate in numeric comparison (bool as 0/1),
// matching EvalConst's semantics.
bool NumericLike(const Value& v) { return v.is_numeric() || v.type() == ValueType::kBool; }

Result<Value> Compare(Op op, const Value& lhs, const Value& rhs) {
  if (op == Op::kCmpEq) {
    return Value(lhs == rhs || (NumericLike(lhs) && NumericLike(rhs) &&
                                lhs.NumericOr(0.0) == rhs.NumericOr(0.0)));
  }
  if (op == Op::kCmpNe) {
    return Value(!(lhs == rhs || (NumericLike(lhs) && NumericLike(rhs) &&
                                  lhs.NumericOr(0.0) == rhs.NumericOr(0.0))));
  }
  // Ordered comparisons: strings compare lexicographically, numerics (and
  // bools) numerically; anything else faults.
  if (lhs.type() == ValueType::kString && rhs.type() == ValueType::kString) {
    const std::string a = lhs.AsString().value();
    const std::string b = rhs.AsString().value();
    switch (op) {
      case Op::kCmpLt:
        return Value(a < b);
      case Op::kCmpLe:
        return Value(a <= b);
      case Op::kCmpGt:
        return Value(a > b);
      case Op::kCmpGe:
        return Value(a >= b);
      default:
        break;
    }
  }
  const bool lhs_ok = NumericLike(lhs);
  const bool rhs_ok = NumericLike(rhs);
  if (!lhs_ok || !rhs_ok) {
    return ExecutionError("ordered comparison on non-numeric values " + lhs.ToString() +
                          " and " + rhs.ToString());
  }
  const double a = lhs.NumericOr(0.0);
  const double b = rhs.NumericOr(0.0);
  switch (op) {
    case Op::kCmpLt:
      return Value(a < b);
    case Op::kCmpLe:
      return Value(a <= b);
    case Op::kCmpGt:
      return Value(a > b);
    case Op::kCmpGe:
      return Value(a >= b);
    default:
      return InternalError("not a comparison op");
  }
}

}  // namespace

Result<Value> Vm::Execute(const Program& program, HelperContext& context) {
  std::array<Value, kMaxRegisters> regs;
  const size_t n = program.insns.size();
  size_t pc = 0;
  int64_t executed = 0;
  while (pc < n) {
    if (++executed > kMaxInstructions) {
      return ExecutionError("program '" + program.name + "' exceeded the instruction budget");
    }
    const Insn& insn = program.insns[pc];
    switch (insn.op) {
      case Op::kLoadConst:
        regs[insn.a] = program.consts[static_cast<size_t>(insn.imm)];
        ++pc;
        break;
      case Op::kMov:
        regs[insn.a] = regs[insn.b];
        ++pc;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        OSGUARD_ASSIGN_OR_RETURN(regs[insn.a], Arith(insn.op, regs[insn.b], regs[insn.c]));
        ++pc;
        break;
      }
      case Op::kNeg: {
        const Value& v = regs[insn.b];
        if (v.type() == ValueType::kInt) {
          regs[insn.a] = Value(-v.AsInt().value());
        } else if (v.type() == ValueType::kFloat) {
          regs[insn.a] = Value(-v.AsFloat().value());
        } else if (v.type() == ValueType::kBool) {
          regs[insn.a] = Value(v.AsBool().value() ? -1 : 0);
        } else {
          return ExecutionError("cannot negate " + v.ToString());
        }
        ++pc;
        break;
      }
      case Op::kNot:
        regs[insn.a] = Value(!Truthy(regs[insn.b]));
        ++pc;
        break;
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe: {
        OSGUARD_ASSIGN_OR_RETURN(regs[insn.a], Compare(insn.op, regs[insn.b], regs[insn.c]));
        ++pc;
        break;
      }
      case Op::kJump:
        pc += 1 + static_cast<size_t>(insn.imm);
        break;
      case Op::kJumpIfFalse:
        pc += Truthy(regs[insn.a]) ? 1 : 1 + static_cast<size_t>(insn.imm);
        break;
      case Op::kJumpIfTrue:
        pc += Truthy(regs[insn.a]) ? 1 + static_cast<size_t>(insn.imm) : 1;
        break;
      case Op::kMakeList: {
        std::vector<Value> list;
        list.reserve(static_cast<size_t>(insn.imm));
        for (int i = 0; i < insn.imm; ++i) {
          list.push_back(regs[insn.b + i]);
        }
        regs[insn.a] = Value(std::move(list));
        ++pc;
        break;
      }
      case Op::kCall: {
        ++stats_.helper_calls;
        std::span<const Value> args(&regs[insn.b], static_cast<size_t>(insn.c));
        auto result = context.CallHelper(static_cast<HelperId>(insn.imm), args);
        if (!result.ok()) {
          stats_.insns_executed += executed;
          return ExecutionError("program '" + program.name + "': helper failed: " +
                                result.status().ToString());
        }
        regs[insn.a] = std::move(result).value();
        ++pc;
        break;
      }
      case Op::kRet:
        stats_.insns_executed += executed;
        return regs[insn.a];
    }
  }
  stats_.insns_executed += executed;
  return ExecutionError("program '" + program.name + "' ran off the end");
}

}  // namespace osguard
