// Native AOT pipeline: compile verified guardrail programs to host shared
// objects and load them.
//
//   emit C (c_backend native flavor, prefixed with the embedded ABI prelude)
//     -> content-hash the translation unit
//     -> reuse a cached object if one exists (memory first, then the on-disk
//        cache dir), otherwise `cc -O2 -fPIC -shared` and dlopen the result.
//
// Objects are keyed by the content hash of the *entire* emitted TU, so a
// reload or a supervisor rollback that restores bit-identical bytecode gets
// back the exact same shared object — no recompile, no drift. Loaded objects
// are cached for the lifetime of the NativeAot instance and never dlclosed
// while referenced.
//
// The pipeline degrades gracefully: if the binary was built without dlopen
// support, or no working host compiler can be found, Available() is false
// and the engine simply stays on the interpreter (see docs/NATIVE.md).

#ifndef SRC_VM_NATIVE_AOT_H_
#define SRC_VM_NATIVE_AOT_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/support/status.h"
#include "src/vm/compiler.h"
#include "src/vm/native_abi.h"

namespace osguard {

// One dlopen'ed shared object holding a guardrail's entry points. Held via
// shared_ptr by the cache and by every monitor bound to it; the handle is
// dlclosed only when the last reference drops.
struct NativeObject {
  using EntryFn = osg_value (*)(osg_ctx*);

  EntryFn rule = nullptr;
  EntryFn action = nullptr;
  EntryFn on_satisfy = nullptr;  // null when the guardrail has none
  std::string content_hash;      // hex FNV-1a of the emitted TU
  void* handle = nullptr;

  NativeObject() = default;
  NativeObject(const NativeObject&) = delete;
  NativeObject& operator=(const NativeObject&) = delete;
  ~NativeObject();
};

struct NativeAotOptions {
  // Host C compiler command. Empty selects, in order: $OSGUARD_CC, the
  // compiler CMake discovered at configure time, then plain "cc". The value
  // is used unquoted, so it may carry flags ("ccache gcc").
  std::string compiler;
  // Object cache directory. Empty selects $OSGUARD_NATIVE_CACHE, then
  // <system tmp>/osguard-native-<uid>.
  std::string cache_dir;
};

struct NativeAotStats {
  uint64_t compiles = 0;    // cc invocations that produced a new object
  uint64_t cache_hits = 0;  // bit-identical object reused (memory or disk)
  uint64_t failures = 0;    // compile, dlopen, or dlsym failures
};

class NativeAot {
 public:
  explicit NativeAot(NativeAotOptions options = {});

  // Whether this binary was built with dlopen support at all.
  static bool CompiledIn();

  // Whether the tier can actually produce and load objects: probes the host
  // compiler once (compile + dlopen of a trivial TU) and caches the verdict.
  bool Available();

  // Emits, compiles, and loads all of `guardrail`'s programs
  // (osg_rule / osg_action / osg_on_satisfy).
  Result<std::shared_ptr<NativeObject>> Compile(const CompiledGuardrail& guardrail);

  // Single program, exported as osg_rule. Used by the differential tests and
  // benchmarks.
  Result<std::shared_ptr<NativeObject>> CompileProgram(const Program& program);

  const NativeAotStats& stats() const { return stats_; }
  const std::string& compiler() const { return compiler_; }
  const std::string& cache_dir() const { return cache_dir_; }

 private:
  Result<std::shared_ptr<NativeObject>> CompileText(const std::string& tu_text,
                                                    bool expect_action);
  Result<std::shared_ptr<NativeObject>> LoadObject(const std::string& so_path,
                                                   const std::string& hash,
                                                   bool expect_action);

  std::string compiler_;
  std::string cache_dir_;
  int available_ = -1;  // -1 unprobed, 0 no, 1 yes
  NativeAotStats stats_;
  std::unordered_map<std::string, std::shared_ptr<NativeObject>> cache_;
};

}  // namespace osguard

#endif  // SRC_VM_NATIVE_AOT_H_
