#include "src/vm/compiler.h"

#include <algorithm>

#include "src/dsl/parser.h"
#include "src/vm/verifier.h"

namespace osguard {
namespace {

// Emits one program. Registers are allocated with stack discipline: a scope
// mark is taken before compiling a subexpression and restored once its value
// has been consumed.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  Result<int> AllocReg() {
    if (next_reg_ >= kMaxRegisters) {
      return VerifierError("program '" + program_.name + "' needs more than " +
                           std::to_string(kMaxRegisters) + " registers");
    }
    const int reg = next_reg_++;
    program_.register_count = std::max(program_.register_count, next_reg_);
    return reg;
  }
  int Mark() const { return next_reg_; }
  void Release(int mark) { next_reg_ = mark; }

  size_t Emit(Op op, uint8_t a = 0, uint8_t b = 0, uint8_t c = 0, int32_t imm = 0) {
    program_.insns.push_back(Insn{op, a, b, c, imm});
    return program_.insns.size() - 1;
  }

  // Emits a jump with a to-be-patched offset; PatchJump fixes it to point at
  // the current end of the program.
  size_t EmitJump(Op op, uint8_t cond_reg = 0) { return Emit(op, cond_reg, 0, 0, 0); }
  void PatchJump(size_t jump_pc) {
    program_.insns[jump_pc].imm =
        static_cast<int32_t>(program_.insns.size() - jump_pc - 1);
  }

  Result<int> InternConst(const Value& value) {
    for (size_t i = 0; i < program_.consts.size(); ++i) {
      if (program_.consts[i] == value) {
        return static_cast<int>(i);
      }
    }
    if (program_.consts.size() >= kMaxConstants) {
      return VerifierError("program '" + program_.name + "' exceeds the constant pool limit");
    }
    program_.consts.push_back(value);
    return static_cast<int>(program_.consts.size() - 1);
  }

  // Loads a constant into a fresh register.
  Result<int> EmitConst(const Value& value) {
    OSGUARD_ASSIGN_OR_RETURN(int index, InternConst(value));
    OSGUARD_ASSIGN_OR_RETURN(int reg, AllocReg());
    Emit(Op::kLoadConst, static_cast<uint8_t>(reg), 0, 0, index);
    return reg;
  }

  // r[dst] = canonical bool of r[src], via double negation.
  Result<int> EmitTruthy(int src) {
    OSGUARD_ASSIGN_OR_RETURN(int tmp, AllocReg());
    Emit(Op::kNot, static_cast<uint8_t>(tmp), static_cast<uint8_t>(src));
    Emit(Op::kNot, static_cast<uint8_t>(tmp), static_cast<uint8_t>(tmp));
    return tmp;
  }

  Program Take() { return std::move(program_); }

 private:
  Program program_;
  int next_reg_ = 0;
};

class ExprCompiler {
 public:
  explicit ExprCompiler(std::string name) : builder_(std::move(name)) {}

  ProgramBuilder& builder() { return builder_; }

  // Compiles `expr`, returning the register holding its value.
  Result<int> Compile(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return builder_.EmitConst(expr.literal);
      case ExprKind::kIdent:
        return CompileImplicitLoad(expr);
      case ExprKind::kUnary:
        return CompileUnary(expr);
      case ExprKind::kBinary:
        return CompileBinary(expr);
      case ExprKind::kCall:
        return CompileCall(expr);
      case ExprKind::kList:
        return SemanticError("a {...} list is only valid as a call argument: " +
                             expr.ToString());
    }
    return InternalError("unhandled expression kind");
  }

  // Finishes the program with `ret r`.
  Program Finish(int result_reg) {
    builder_.Emit(Op::kRet, static_cast<uint8_t>(result_reg));
    return builder_.Take();
  }

 private:
  Result<int> CompileImplicitLoad(const Expr& expr) {
    // Bare identifier: LOAD(key).
    OSGUARD_ASSIGN_OR_RETURN(int key_reg, builder_.EmitConst(Value(expr.name)));
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(Op::kCall, static_cast<uint8_t>(dst), static_cast<uint8_t>(key_reg), 1,
                  static_cast<int32_t>(HelperId::kLoad));
    return dst;
  }

  Result<int> CompileUnary(const Expr& expr) {
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int operand, Compile(*expr.children[0]));
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(expr.unary_op == UnaryOp::kNeg ? Op::kNeg : Op::kNot,
                  static_cast<uint8_t>(dst), static_cast<uint8_t>(operand));
    return dst;
  }

  Result<int> CompileBinary(const Expr& expr) {
    if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
      return CompileShortCircuit(expr);
    }
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int lhs, Compile(*expr.children[0]));
    OSGUARD_ASSIGN_OR_RETURN(int rhs, Compile(*expr.children[1]));
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    Op op;
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        op = Op::kAdd;
        break;
      case BinaryOp::kSub:
        op = Op::kSub;
        break;
      case BinaryOp::kMul:
        op = Op::kMul;
        break;
      case BinaryOp::kDiv:
        op = Op::kDiv;
        break;
      case BinaryOp::kMod:
        op = Op::kMod;
        break;
      case BinaryOp::kLt:
        op = Op::kCmpLt;
        break;
      case BinaryOp::kLe:
        op = Op::kCmpLe;
        break;
      case BinaryOp::kGt:
        op = Op::kCmpGt;
        break;
      case BinaryOp::kGe:
        op = Op::kCmpGe;
        break;
      case BinaryOp::kEq:
        op = Op::kCmpEq;
        break;
      case BinaryOp::kNe:
        op = Op::kCmpNe;
        break;
      default:
        return InternalError("unexpected binary op");
    }
    builder_.Emit(op, static_cast<uint8_t>(dst), static_cast<uint8_t>(lhs),
                  static_cast<uint8_t>(rhs));
    return dst;
  }

  // dst = truthy(a); if (op==AND && !dst) skip b; dst = truthy(b)
  Result<int> CompileShortCircuit(const Expr& expr) {
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int lhs, Compile(*expr.children[0]));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(lhs));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    builder_.Release(mark);
    const Op skip_op =
        expr.binary_op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue;
    const size_t jump_pc = builder_.EmitJump(skip_op, static_cast<uint8_t>(dst));
    OSGUARD_ASSIGN_OR_RETURN(int rhs, Compile(*expr.children[1]));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(rhs));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    builder_.Release(mark);
    builder_.PatchJump(jump_pc);
    return dst;
  }

  // Evaluates one call argument according to its declared mode, leaving the
  // value in a freshly allocated register (so consecutive arguments occupy
  // consecutive registers).
  Result<int> CompileCallArg(const Expr& arg, ArgMode mode) {
    switch (mode) {
      case ArgMode::kKey: {
        // Bare identifier or string literal -> string constant.
        std::string key;
        if (arg.kind == ExprKind::kIdent) {
          key = arg.name;
        } else if (arg.kind == ExprKind::kLiteral &&
                   arg.literal.type() == ValueType::kString) {
          key = arg.literal.AsString().value();
        } else {
          return SemanticError("expected a key identifier, got: " + arg.ToString());
        }
        return builder_.EmitConst(Value(std::move(key)));
      }
      case ArgMode::kNameList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("expected a {name, ...} list, got: " + arg.ToString());
        }
        std::vector<Value> names;
        for (const ExprPtr& element : arg.children) {
          if (element->kind == ExprKind::kIdent) {
            names.emplace_back(element->name);
          } else if (element->kind == ExprKind::kLiteral &&
                     element->literal.type() == ValueType::kString) {
            names.push_back(element->literal);
          } else {
            return SemanticError("name lists may only contain identifiers: " +
                                 element->ToString());
          }
        }
        return builder_.EmitConst(Value(std::move(names)));
      }
      case ArgMode::kValueList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("expected a {value, ...} list, got: " + arg.ToString());
        }
        // Evaluate elements into consecutive registers, then fold into one
        // list register at the position the argument window expects.
        OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
        const int mark = builder_.Mark();
        int first = -1;
        for (const ExprPtr& element : arg.children) {
          const int element_mark = builder_.Mark();
          OSGUARD_ASSIGN_OR_RETURN(int value_reg, Compile(*element));
          // Pin the element value at the next consecutive slot.
          if (value_reg != element_mark) {
            builder_.Emit(Op::kMov, static_cast<uint8_t>(element_mark),
                          static_cast<uint8_t>(value_reg));
            builder_.Release(element_mark + 1);
          }
          if (first < 0) {
            first = element_mark;
          }
        }
        builder_.Emit(Op::kMakeList, static_cast<uint8_t>(dst),
                      static_cast<uint8_t>(first < 0 ? 0 : first), 0,
                      static_cast<int32_t>(arg.children.size()));
        builder_.Release(mark);
        return dst;
      }
      case ArgMode::kValue: {
        const int slot = builder_.Mark();
        OSGUARD_ASSIGN_OR_RETURN(int value_reg, Compile(arg));
        if (value_reg != slot) {
          builder_.Emit(Op::kMov, static_cast<uint8_t>(slot),
                        static_cast<uint8_t>(value_reg));
          builder_.Release(slot + 1);
        }
        return slot;
      }
    }
    return InternalError("unhandled argument mode");
  }

  Result<int> CompileCall(const Expr& expr) {
    const Builtin* builtin = FindBuiltin(expr.name);
    if (builtin == nullptr) {
      return SemanticError("unknown function '" + expr.name + "'");
    }
    const int mark = builder_.Mark();
    int first_arg = -1;
    for (size_t i = 0; i < expr.children.size(); ++i) {
      ArgMode mode = ArgMode::kValue;
      if (!builtin->arg_modes.empty()) {
        const size_t mode_index = std::min(i, builtin->arg_modes.size() - 1);
        mode = builtin->arg_modes[mode_index];
      }
      OSGUARD_ASSIGN_OR_RETURN(int reg, CompileCallArg(*expr.children[i], mode));
      if (first_arg < 0) {
        first_arg = reg;
      }
    }
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(Op::kCall, static_cast<uint8_t>(dst),
                  static_cast<uint8_t>(first_arg < 0 ? 0 : first_arg),
                  static_cast<uint8_t>(expr.children.size()),
                  static_cast<int32_t>(builtin->id));
    return dst;
  }

  ProgramBuilder builder_;
};

// Compiles the conjunction of `rules` into a program returning bool.
Result<Program> CompileRuleProgram(const std::vector<ExprPtr>& rules, const std::string& name) {
  ExprCompiler compiler(name);
  ProgramBuilder& b = compiler.builder();
  OSGUARD_ASSIGN_OR_RETURN(int dst, b.AllocReg());
  std::vector<size_t> exit_jumps;
  for (size_t i = 0; i < rules.size(); ++i) {
    const int mark = b.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int value_reg, compiler.Compile(*rules[i]));
    b.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(value_reg));
    b.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    b.Release(mark);
    if (i + 1 < rules.size()) {
      exit_jumps.push_back(b.EmitJump(Op::kJumpIfFalse, static_cast<uint8_t>(dst)));
    }
  }
  for (size_t jump_pc : exit_jumps) {
    b.PatchJump(jump_pc);
  }
  Program program = compiler.Finish(dst);
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = false}));
  return program;
}

// Compiles a sequence of action statements into a program returning nil.
Result<Program> CompileActionProgram(const std::vector<ExprPtr>& statements,
                                     const std::string& name) {
  ExprCompiler compiler(name);
  ProgramBuilder& b = compiler.builder();
  for (const ExprPtr& stmt : statements) {
    const int mark = b.Mark();
    OSGUARD_RETURN_IF_ERROR(compiler.Compile(*stmt).status());
    b.Release(mark);
  }
  OSGUARD_ASSIGN_OR_RETURN(int nil_reg, b.EmitConst(Value()));
  Program program = compiler.Finish(nil_reg);
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = true}));
  return program;
}

}  // namespace

Result<Program> CompileExpr(const Expr& expr, const std::string& name) {
  ExprCompiler compiler(name);
  OSGUARD_ASSIGN_OR_RETURN(int result_reg, compiler.Compile(expr));
  Program program = compiler.Finish(result_reg);
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = false}));
  return program;
}

Result<CompiledGuardrail> CompileGuardrail(const AnalyzedGuardrail& guardrail) {
  CompiledGuardrail out;
  out.name = guardrail.decl.name;
  out.meta = guardrail.meta;
  for (const TriggerDecl& trigger : guardrail.decl.triggers) {
    CompiledTrigger compiled;
    compiled.kind = trigger.kind;
    compiled.start = trigger.start;
    compiled.interval = trigger.interval;
    compiled.stop = trigger.stop;
    compiled.function_name = trigger.function_name;
    compiled.watch_key = trigger.watch_key;
    out.triggers.push_back(std::move(compiled));
  }
  OSGUARD_ASSIGN_OR_RETURN(out.rule,
                           CompileRuleProgram(guardrail.decl.rules, out.name + ".rule"));
  OSGUARD_ASSIGN_OR_RETURN(
      out.action, CompileActionProgram(guardrail.decl.actions, out.name + ".action"));
  if (!guardrail.decl.satisfy_actions.empty()) {
    OSGUARD_ASSIGN_OR_RETURN(
        out.on_satisfy,
        CompileActionProgram(guardrail.decl.satisfy_actions, out.name + ".on_satisfy"));
  }
  return out;
}

Result<std::vector<CompiledGuardrail>> CompileSpec(const AnalyzedSpec& spec) {
  std::vector<CompiledGuardrail> out;
  out.reserve(spec.guardrails.size());
  for (const AnalyzedGuardrail& guardrail : spec.guardrails) {
    OSGUARD_ASSIGN_OR_RETURN(CompiledGuardrail compiled, CompileGuardrail(guardrail));
    out.push_back(std::move(compiled));
  }
  return out;
}

Result<std::vector<CompiledGuardrail>> CompileSource(const std::string& source) {
  OSGUARD_ASSIGN_OR_RETURN(SpecFile spec, ParseSpecSource(source));
  OSGUARD_ASSIGN_OR_RETURN(AnalyzedSpec analyzed, Analyze(std::move(spec)));
  return CompileSpec(analyzed);
}

}  // namespace osguard
