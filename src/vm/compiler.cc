#include "src/vm/compiler.h"

#include <algorithm>

#include "src/dsl/parser.h"
#include "src/vm/verifier.h"

namespace osguard {
namespace {

// Emits one program. Registers are allocated with stack discipline: a scope
// mark is taken before compiling a subexpression and restored once its value
// has been consumed.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  Result<int> AllocReg() {
    if (next_reg_ >= kMaxRegisters) {
      return VerifierError("program '" + program_.name + "' needs more than " +
                           std::to_string(kMaxRegisters) + " registers");
    }
    const int reg = next_reg_++;
    program_.register_count = std::max(program_.register_count, next_reg_);
    return reg;
  }
  int Mark() const { return next_reg_; }
  void Release(int mark) { next_reg_ = mark; }

  size_t Emit(Op op, uint8_t a = 0, uint8_t b = 0, uint8_t c = 0, int32_t imm = 0) {
    program_.insns.push_back(Insn{op, a, b, c, imm});
    return program_.insns.size() - 1;
  }

  // Emits a jump with a to-be-patched offset; PatchJump fixes it to point at
  // the current end of the program.
  size_t EmitJump(Op op, uint8_t cond_reg = 0) { return Emit(op, cond_reg, 0, 0, 0); }
  void PatchJump(size_t jump_pc) {
    program_.insns[jump_pc].imm =
        static_cast<int32_t>(program_.insns.size() - jump_pc - 1);
  }

  Result<int> InternConst(const Value& value) {
    for (size_t i = 0; i < program_.consts.size(); ++i) {
      if (program_.consts[i] == value) {
        return static_cast<int>(i);
      }
    }
    if (program_.consts.size() >= kMaxConstants) {
      return VerifierError("program '" + program_.name + "' exceeds the constant pool limit");
    }
    program_.consts.push_back(value);
    return static_cast<int>(program_.consts.size() - 1);
  }

  // Loads a constant into a fresh register.
  Result<int> EmitConst(const Value& value) {
    OSGUARD_ASSIGN_OR_RETURN(int index, InternConst(value));
    OSGUARD_ASSIGN_OR_RETURN(int reg, AllocReg());
    Emit(Op::kLoadConst, static_cast<uint8_t>(reg), 0, 0, index);
    return reg;
  }

  // r[dst] = canonical bool of r[src], via double negation.
  Result<int> EmitTruthy(int src) {
    OSGUARD_ASSIGN_OR_RETURN(int tmp, AllocReg());
    Emit(Op::kNot, static_cast<uint8_t>(tmp), static_cast<uint8_t>(src));
    Emit(Op::kNot, static_cast<uint8_t>(tmp), static_cast<uint8_t>(tmp));
    return tmp;
  }

  Program Take() { return std::move(program_); }

 private:
  Program program_;
  int next_reg_ = 0;
};

class ExprCompiler {
 public:
  explicit ExprCompiler(std::string name) : builder_(std::move(name)) {}

  ProgramBuilder& builder() { return builder_; }

  // Compiles `expr`, returning the register holding its value.
  Result<int> Compile(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return builder_.EmitConst(expr.literal);
      case ExprKind::kIdent:
        return CompileImplicitLoad(expr);
      case ExprKind::kUnary:
        return CompileUnary(expr);
      case ExprKind::kBinary:
        return CompileBinary(expr);
      case ExprKind::kCall:
        return CompileCall(expr);
      case ExprKind::kList:
        return SemanticError("a {...} list is only valid as a call argument: " +
                             expr.ToString());
    }
    return InternalError("unhandled expression kind");
  }

  // Finishes the program with `ret r`.
  Program Finish(int result_reg) {
    builder_.Emit(Op::kRet, static_cast<uint8_t>(result_reg));
    return builder_.Take();
  }

 private:
  Result<int> CompileImplicitLoad(const Expr& expr) {
    // Bare identifier: LOAD(key).
    OSGUARD_ASSIGN_OR_RETURN(int key_reg, builder_.EmitConst(Value(expr.name)));
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(Op::kCall, static_cast<uint8_t>(dst), static_cast<uint8_t>(key_reg), 1,
                  static_cast<int32_t>(HelperId::kLoad));
    return dst;
  }

  Result<int> CompileUnary(const Expr& expr) {
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int operand, Compile(*expr.children[0]));
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(expr.unary_op == UnaryOp::kNeg ? Op::kNeg : Op::kNot,
                  static_cast<uint8_t>(dst), static_cast<uint8_t>(operand));
    return dst;
  }

  Result<int> CompileBinary(const Expr& expr) {
    if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
      return CompileShortCircuit(expr);
    }
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int lhs, Compile(*expr.children[0]));
    OSGUARD_ASSIGN_OR_RETURN(int rhs, Compile(*expr.children[1]));
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    Op op;
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        op = Op::kAdd;
        break;
      case BinaryOp::kSub:
        op = Op::kSub;
        break;
      case BinaryOp::kMul:
        op = Op::kMul;
        break;
      case BinaryOp::kDiv:
        op = Op::kDiv;
        break;
      case BinaryOp::kMod:
        op = Op::kMod;
        break;
      case BinaryOp::kLt:
        op = Op::kCmpLt;
        break;
      case BinaryOp::kLe:
        op = Op::kCmpLe;
        break;
      case BinaryOp::kGt:
        op = Op::kCmpGt;
        break;
      case BinaryOp::kGe:
        op = Op::kCmpGe;
        break;
      case BinaryOp::kEq:
        op = Op::kCmpEq;
        break;
      case BinaryOp::kNe:
        op = Op::kCmpNe;
        break;
      default:
        return InternalError("unexpected binary op");
    }
    builder_.Emit(op, static_cast<uint8_t>(dst), static_cast<uint8_t>(lhs),
                  static_cast<uint8_t>(rhs));
    return dst;
  }

  // dst = truthy(a); if (op==AND && !dst) skip b; dst = truthy(b)
  Result<int> CompileShortCircuit(const Expr& expr) {
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    const int mark = builder_.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int lhs, Compile(*expr.children[0]));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(lhs));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    builder_.Release(mark);
    const Op skip_op =
        expr.binary_op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue;
    const size_t jump_pc = builder_.EmitJump(skip_op, static_cast<uint8_t>(dst));
    OSGUARD_ASSIGN_OR_RETURN(int rhs, Compile(*expr.children[1]));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(rhs));
    builder_.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    builder_.Release(mark);
    builder_.PatchJump(jump_pc);
    return dst;
  }

  // Evaluates one call argument according to its declared mode, leaving the
  // value in a freshly allocated register (so consecutive arguments occupy
  // consecutive registers).
  Result<int> CompileCallArg(const Expr& arg, ArgMode mode) {
    switch (mode) {
      case ArgMode::kKey: {
        // Bare identifier or string literal -> string constant.
        std::string key;
        if (arg.kind == ExprKind::kIdent) {
          key = arg.name;
        } else if (arg.kind == ExprKind::kLiteral &&
                   arg.literal.type() == ValueType::kString) {
          key = arg.literal.AsString().value();
        } else {
          return SemanticError("expected a key identifier, got: " + arg.ToString());
        }
        return builder_.EmitConst(Value(std::move(key)));
      }
      case ArgMode::kNameList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("expected a {name, ...} list, got: " + arg.ToString());
        }
        std::vector<Value> names;
        for (const ExprPtr& element : arg.children) {
          if (element->kind == ExprKind::kIdent) {
            names.emplace_back(element->name);
          } else if (element->kind == ExprKind::kLiteral &&
                     element->literal.type() == ValueType::kString) {
            names.push_back(element->literal);
          } else {
            return SemanticError("name lists may only contain identifiers: " +
                                 element->ToString());
          }
        }
        return builder_.EmitConst(Value(std::move(names)));
      }
      case ArgMode::kValueList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("expected a {value, ...} list, got: " + arg.ToString());
        }
        // Evaluate elements into consecutive registers, then fold into one
        // list register at the position the argument window expects.
        OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
        const int mark = builder_.Mark();
        int first = -1;
        for (const ExprPtr& element : arg.children) {
          const int element_mark = builder_.Mark();
          OSGUARD_ASSIGN_OR_RETURN(int value_reg, Compile(*element));
          // Pin the element value at the next consecutive slot.
          if (value_reg != element_mark) {
            builder_.Emit(Op::kMov, static_cast<uint8_t>(element_mark),
                          static_cast<uint8_t>(value_reg));
            builder_.Release(element_mark + 1);
          }
          if (first < 0) {
            first = element_mark;
          }
        }
        builder_.Emit(Op::kMakeList, static_cast<uint8_t>(dst),
                      static_cast<uint8_t>(first < 0 ? 0 : first), 0,
                      static_cast<int32_t>(arg.children.size()));
        builder_.Release(mark);
        return dst;
      }
      case ArgMode::kValue: {
        const int slot = builder_.Mark();
        OSGUARD_ASSIGN_OR_RETURN(int value_reg, Compile(arg));
        if (value_reg != slot) {
          builder_.Emit(Op::kMov, static_cast<uint8_t>(slot),
                        static_cast<uint8_t>(value_reg));
          builder_.Release(slot + 1);
        }
        return slot;
      }
    }
    return InternalError("unhandled argument mode");
  }

  Result<int> CompileCall(const Expr& expr) {
    const Builtin* builtin = FindBuiltin(expr.name);
    if (builtin == nullptr) {
      return SemanticError("unknown function '" + expr.name + "'");
    }
    const int mark = builder_.Mark();
    int first_arg = -1;
    for (size_t i = 0; i < expr.children.size(); ++i) {
      ArgMode mode = ArgMode::kValue;
      if (!builtin->arg_modes.empty()) {
        const size_t mode_index = std::min(i, builtin->arg_modes.size() - 1);
        mode = builtin->arg_modes[mode_index];
      }
      OSGUARD_ASSIGN_OR_RETURN(int reg, CompileCallArg(*expr.children[i], mode));
      if (first_arg < 0) {
        first_arg = reg;
      }
    }
    builder_.Release(mark);
    OSGUARD_ASSIGN_OR_RETURN(int dst, builder_.AllocReg());
    builder_.Emit(Op::kCall, static_cast<uint8_t>(dst),
                  static_cast<uint8_t>(first_arg < 0 ? 0 : first_arg),
                  static_cast<uint8_t>(expr.children.size()),
                  static_cast<int32_t>(builtin->id));
    return dst;
  }

  ProgramBuilder builder_;
};

// Compiles the conjunction of `rules` into a program returning bool.
Result<Program> CompileRuleProgram(const std::vector<ExprPtr>& rules, const std::string& name) {
  ExprCompiler compiler(name);
  ProgramBuilder& b = compiler.builder();
  OSGUARD_ASSIGN_OR_RETURN(int dst, b.AllocReg());
  std::vector<size_t> exit_jumps;
  for (size_t i = 0; i < rules.size(); ++i) {
    const int mark = b.Mark();
    OSGUARD_ASSIGN_OR_RETURN(int value_reg, compiler.Compile(*rules[i]));
    b.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(value_reg));
    b.Emit(Op::kNot, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst));
    b.Release(mark);
    if (i + 1 < rules.size()) {
      exit_jumps.push_back(b.EmitJump(Op::kJumpIfFalse, static_cast<uint8_t>(dst)));
    }
  }
  for (size_t jump_pc : exit_jumps) {
    b.PatchJump(jump_pc);
  }
  Program program = PeepholeOptimize(compiler.Finish(dst));
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = false}));
  return program;
}

// Compiles a sequence of action statements into a program returning nil.
Result<Program> CompileActionProgram(const std::vector<ExprPtr>& statements,
                                     const std::string& name) {
  ExprCompiler compiler(name);
  ProgramBuilder& b = compiler.builder();
  for (const ExprPtr& stmt : statements) {
    const int mark = b.Mark();
    OSGUARD_RETURN_IF_ERROR(compiler.Compile(*stmt).status());
    b.Release(mark);
  }
  OSGUARD_ASSIGN_OR_RETURN(int nil_reg, b.EmitConst(Value()));
  Program program = PeepholeOptimize(compiler.Finish(nil_reg));
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = true}));
  return program;
}

}  // namespace

// ---------------------------------------------------------------------------
// Peephole optimizer.
//
// Operates on the builder's output before verification. Because verified
// programs only ever jump forward, a single backward sweep computes exact
// liveness and a single forward sweep can apply local rewrites; deletions are
// committed at the end of each round by compacting the instruction vector and
// remapping every jump offset. Rounds iterate to a small fixpoint so that,
// e.g., a LoadConst+Cmp fusion in round 1 exposes a CmpConst+branch fusion in
// round 2.
// ---------------------------------------------------------------------------

namespace {

struct PeepEffects {
  uint64_t uses = 0;
  uint64_t defs = 0;
  bool is_jump = false;
  bool jump_in_aux = false;   // fused branches keep their offset in aux
  bool falls_through = true;
};

PeepEffects PeepEffectsOf(const Insn& insn) {
  PeepEffects e;
  auto use = [&e](int r) { e.uses |= 1ull << r; };
  auto def = [&e](int r) { e.defs |= 1ull << r; };
  switch (insn.op) {
    case Op::kLoadConst:
      def(insn.a);
      break;
    case Op::kMov:
    case Op::kNeg:
    case Op::kNot:
      use(insn.b);
      def(insn.a);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpGt:
    case Op::kCmpGe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      use(insn.b);
      use(insn.c);
      def(insn.a);
      break;
    case Op::kJump:
      e.is_jump = true;
      e.falls_through = false;
      break;
    case Op::kJumpIfFalse:
    case Op::kJumpIfTrue:
      use(insn.a);
      e.is_jump = true;
      break;
    case Op::kMakeList:
      for (int i = 0; i < insn.imm; ++i) {
        use(insn.b + i);
      }
      def(insn.a);
      break;
    case Op::kCall:
    case Op::kCallKeyed:
      for (int i = 0; i < insn.c; ++i) {
        use(insn.b + i);
      }
      def(insn.a);
      break;
    case Op::kRet:
      use(insn.a);
      e.falls_through = false;
      break;
    case Op::kCmpConst:
      use(insn.b);
      def(insn.a);
      break;
    case Op::kCmpConstJf:
    case Op::kCmpConstJt:
      use(insn.b);
      def(insn.a);
      e.is_jump = true;
      e.jump_in_aux = true;
      break;
    case Op::kCmpRegJf:
    case Op::kCmpRegJt:
      use(insn.b);
      use(insn.c);
      def(insn.a);
      e.is_jump = true;
      e.jump_in_aux = true;
      break;
  }
  return e;
}

int32_t PeepJumpOffset(const Insn& insn, const PeepEffects& e) {
  return e.jump_in_aux ? insn.aux : insn.imm;
}

bool IsPlainCmp(Op op) {
  const int v = static_cast<int>(op);
  return v >= static_cast<int>(Op::kCmpLt) && v <= static_cast<int>(Op::kCmpNe);
}

// Ops that always leave a canonical bool in their destination register.
bool IsBoolProducer(Op op) {
  return IsPlainCmp(op) || op == Op::kNot || op == Op::kCmpConst;
}

// cmp<kind> with swapped operands: const OP x  ==  x OP' const.
int MirrorCmpKind(int kind) {
  switch (kind) {
    case 0:  // Lt -> Gt
      return 2;
    case 1:  // Le -> Ge
      return 3;
    case 2:  // Gt -> Lt
      return 0;
    case 3:  // Ge -> Le
      return 1;
    default:  // Eq / Ne are symmetric
      return kind;
  }
}

// Cheap structural sanity check so the optimizer can assume in-range register
// indices (shift safety) and in-bounds forward jumps. Anything questionable
// makes PeepholeOptimize a no-op; Verify() reports the real diagnostic.
bool PeepSafe(const Program& program) {
  const size_t n = program.insns.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = program.insns[pc];
    if (static_cast<int>(insn.op) >= kOpCount) {
      return false;
    }
    if (insn.a >= kMaxRegisters || insn.b >= kMaxRegisters || insn.c >= kMaxRegisters) {
      return false;
    }
    if (insn.op == Op::kMakeList &&
        (insn.imm < 0 || insn.b + insn.imm > kMaxRegisters)) {
      return false;
    }
    if ((insn.op == Op::kCall || insn.op == Op::kCallKeyed) &&
        insn.b + insn.c > kMaxRegisters) {
      return false;
    }
    const PeepEffects e = PeepEffectsOf(insn);
    if (e.is_jump) {
      const int32_t off = PeepJumpOffset(insn, e);
      if (off < 1 || pc + 1 + static_cast<size_t>(off) >= n) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Program PeepholeOptimize(Program program) {
  if (program.insns.empty() || !PeepSafe(program)) {
    return program;
  }

  for (int round = 0; round < 4; ++round) {
    std::vector<Insn>& insns = program.insns;
    const size_t m = insns.size();

    // Which pcs are jump targets. Fusions never span a target pc: the second
    // instruction of a fused pair must be reachable only by falling out of
    // the first, otherwise the join path would observe different state.
    std::vector<char> is_target(m, 0);
    for (size_t k = 0; k < m; ++k) {
      const PeepEffects e = PeepEffectsOf(insns[k]);
      if (e.is_jump) {
        is_target[k + 1 + static_cast<size_t>(PeepJumpOffset(insns[k], e))] = 1;
      }
    }

    // Exact backward liveness — forward-only jumps mean one sweep suffices.
    std::vector<uint64_t> live_in(m + 1, 0);
    std::vector<uint64_t> live_out(m, 0);
    for (size_t k = m; k-- > 0;) {
      const PeepEffects e = PeepEffectsOf(insns[k]);
      uint64_t out = 0;
      if (e.falls_through && k + 1 < m) {
        out |= live_in[k + 1];
      }
      if (e.is_jump) {
        out |= live_in[k + 1 + static_cast<size_t>(PeepJumpOffset(insns[k], e))];
      }
      live_out[k] = out;
      live_in[k] = (out & ~e.defs) | e.uses;
    }

    std::vector<char> deleted(m, 0);
    bool changed = false;

    size_t i = 0;
    while (i < m) {
      // Pattern: <bool-producer> r ; not t, r ; not t, t
      // The double negation only canonicalizes truthiness, and a compare/not
      // already yields a canonical bool.
      if (i + 2 < m && IsBoolProducer(insns[i].op) && insns[i + 1].op == Op::kNot &&
          insns[i + 2].op == Op::kNot && !is_target[i + 1] && !is_target[i + 2] &&
          insns[i + 1].b == insns[i].a && insns[i + 2].a == insns[i + 1].a &&
          insns[i + 2].b == insns[i + 1].a) {
        const uint8_t r = insns[i].a;
        const uint8_t t = insns[i + 1].a;
        if (t == r) {
          deleted[i + 1] = deleted[i + 2] = 1;
        } else if (((live_out[i + 2] >> r) & 1) == 0) {
          // r dies here: produce the bool directly into t.
          insns[i].a = t;
          deleted[i + 1] = deleted[i + 2] = 1;
        } else {
          insns[i + 1] = Insn{Op::kMov, t, r, 0, 0, 0};
          deleted[i + 2] = 1;
        }
        changed = true;
        i += 3;
        continue;
      }
      // Pattern: ldc r, <const> ; cmp a, b, c with r as exactly one operand
      // and r dead afterwards  ->  cmpc against the constant pool directly
      // (mirrored predicate when the constant was the left operand).
      if (i + 1 < m && insns[i].op == Op::kLoadConst && IsPlainCmp(insns[i + 1].op) &&
          !is_target[i + 1]) {
        const uint8_t r = insns[i].a;
        Insn& cmp = insns[i + 1];
        const bool rhs_const = cmp.c == r;
        const bool lhs_const = cmp.b == r;
        if (rhs_const != lhs_const && ((live_out[i + 1] >> r) & 1) == 0) {
          const int kind = CmpOpToKind(cmp.op);
          if (rhs_const) {
            cmp = Insn{Op::kCmpConst, cmp.a, cmp.b, static_cast<uint8_t>(kind),
                       insns[i].imm, 0};
          } else {
            cmp = Insn{Op::kCmpConst, cmp.a, cmp.c,
                       static_cast<uint8_t>(MirrorCmpKind(kind)), insns[i].imm, 0};
          }
          deleted[i] = 1;
          changed = true;
          i += 2;
          continue;
        }
      }
      // Pattern: cmp/cmpc a, ... ; jz/jnz a  ->  fused compare-and-branch.
      // The fused form still writes a on both paths, so later readers of the
      // compare result are unaffected.
      if (i + 1 < m && !is_target[i + 1] &&
          (insns[i + 1].op == Op::kJumpIfFalse || insns[i + 1].op == Op::kJumpIfTrue) &&
          insns[i + 1].a == insns[i].a &&
          (IsPlainCmp(insns[i].op) || insns[i].op == Op::kCmpConst)) {
        const bool jf = insns[i + 1].op == Op::kJumpIfFalse;
        // Same absolute target, measured from pc i instead of pc i+1.
        const int32_t aux = insns[i + 1].imm + 1;
        if (insns[i].op == Op::kCmpConst) {
          insns[i] = Insn{jf ? Op::kCmpConstJf : Op::kCmpConstJt, insns[i].a, insns[i].b,
                          insns[i].c, insns[i].imm, aux};
        } else {
          insns[i] = Insn{jf ? Op::kCmpRegJf : Op::kCmpRegJt, insns[i].a, insns[i].b,
                          insns[i].c, CmpOpToKind(insns[i].op), aux};
        }
        deleted[i + 1] = 1;
        changed = true;
        i += 2;
        continue;
      }
      ++i;
    }

    if (!changed) {
      break;
    }

    // Deleting instructions can collapse a jump onto its own fall-through
    // (offset 0 after remap), which the verifier rejects. Drop such jumps —
    // plain ones disappear, fused ones revert to their branch-free compare.
    // Each conversion removes a jump, so this inner loop terminates.
    for (;;) {
      std::vector<size_t> new_index(m + 1, 0);
      for (size_t k = 0; k < m; ++k) {
        new_index[k + 1] = new_index[k] + (deleted[k] ? 0 : 1);
      }
      bool jump_removed = false;
      for (size_t k = 0; k < m; ++k) {
        if (deleted[k]) {
          continue;
        }
        const PeepEffects e = PeepEffectsOf(insns[k]);
        if (!e.is_jump) {
          continue;
        }
        const size_t t = k + 1 + static_cast<size_t>(PeepJumpOffset(insns[k], e));
        if (new_index[t] != new_index[k + 1]) {
          continue;  // still jumps over something
        }
        if (insns[k].op == Op::kJump || insns[k].op == Op::kJumpIfFalse ||
            insns[k].op == Op::kJumpIfTrue) {
          deleted[k] = 1;
        } else if (insns[k].op == Op::kCmpRegJf || insns[k].op == Op::kCmpRegJt) {
          insns[k] = Insn{CmpKindToOp(insns[k].imm), insns[k].a, insns[k].b, insns[k].c,
                          0, 0};
        } else {  // kCmpConstJf / kCmpConstJt
          insns[k] = Insn{Op::kCmpConst, insns[k].a, insns[k].b, insns[k].c,
                          insns[k].imm, 0};
        }
        jump_removed = true;
      }
      if (!jump_removed) {
        break;
      }
    }

    // Compact and remap every jump offset.
    std::vector<size_t> new_index(m + 1, 0);
    for (size_t k = 0; k < m; ++k) {
      new_index[k + 1] = new_index[k] + (deleted[k] ? 0 : 1);
    }
    std::vector<Insn> out;
    out.reserve(new_index[m]);
    for (size_t k = 0; k < m; ++k) {
      if (deleted[k]) {
        continue;
      }
      Insn insn = insns[k];
      const PeepEffects e = PeepEffectsOf(insn);
      if (e.is_jump) {
        const size_t t = k + 1 + static_cast<size_t>(PeepJumpOffset(insn, e));
        const int32_t off =
            static_cast<int32_t>(new_index[t]) - static_cast<int32_t>(new_index[k]) - 1;
        if (e.jump_in_aux) {
          insn.aux = off;
        } else {
          insn.imm = off;
        }
      }
      out.push_back(insn);
    }
    program.insns = std::move(out);
  }
  return program;
}

Result<Program> CompileExpr(const Expr& expr, const std::string& name) {
  ExprCompiler compiler(name);
  OSGUARD_ASSIGN_OR_RETURN(int result_reg, compiler.Compile(expr));
  Program program = PeepholeOptimize(compiler.Finish(result_reg));
  OSGUARD_RETURN_IF_ERROR(Verify(program, VerifyOptions{.allow_actions = false}));
  return program;
}

Result<CompiledGuardrail> CompileGuardrail(const AnalyzedGuardrail& guardrail) {
  CompiledGuardrail out;
  out.name = guardrail.decl.name;
  out.meta = guardrail.meta;
  for (const TriggerDecl& trigger : guardrail.decl.triggers) {
    CompiledTrigger compiled;
    compiled.kind = trigger.kind;
    compiled.start = trigger.start;
    compiled.interval = trigger.interval;
    compiled.stop = trigger.stop;
    compiled.function_name = trigger.function_name;
    compiled.watch_key = trigger.watch_key;
    out.triggers.push_back(std::move(compiled));
  }
  OSGUARD_ASSIGN_OR_RETURN(out.rule,
                           CompileRuleProgram(guardrail.decl.rules, out.name + ".rule"));
  OSGUARD_ASSIGN_OR_RETURN(
      out.action, CompileActionProgram(guardrail.decl.actions, out.name + ".action"));
  if (!guardrail.decl.satisfy_actions.empty()) {
    OSGUARD_ASSIGN_OR_RETURN(
        out.on_satisfy,
        CompileActionProgram(guardrail.decl.satisfy_actions, out.name + ".on_satisfy"));
  }
  return out;
}

Result<std::vector<CompiledGuardrail>> CompileSpec(const AnalyzedSpec& spec) {
  std::vector<CompiledGuardrail> out;
  out.reserve(spec.guardrails.size());
  for (const AnalyzedGuardrail& guardrail : spec.guardrails) {
    OSGUARD_ASSIGN_OR_RETURN(CompiledGuardrail compiled, CompileGuardrail(guardrail));
    out.push_back(std::move(compiled));
  }
  return out;
}

Result<std::vector<CompiledGuardrail>> CompileSource(const std::string& source) {
  OSGUARD_ASSIGN_OR_RETURN(SpecFile spec, ParseSpecSource(source));
  OSGUARD_ASSIGN_OR_RETURN(AnalyzedSpec analyzed, Analyze(std::move(spec)));
  return CompileSpec(analyzed);
}

}  // namespace osguard
