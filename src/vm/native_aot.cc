#include "src/vm/native_aot.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/vm/c_backend.h"
#include "src/vm/native_prelude.h"

#if defined(OSGUARD_NATIVE_TIER)
#include <dlfcn.h>
#include <unistd.h>
#endif

namespace osguard {
namespace {

namespace fs = std::filesystem;

// FNV-1a 64 over the emitted translation unit. Content addressing is what
// makes reload/rollback reuse exact: identical bytecode emits identical C,
// which hashes to the same object file.
std::string ContentHash(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string DefaultCompiler() {
  if (const char* env = std::getenv("OSGUARD_CC"); env != nullptr && env[0] != '\0') {
    return env;
  }
#if defined(OSGUARD_HOST_CC)
  return OSGUARD_HOST_CC;
#else
  return "cc";
#endif
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("OSGUARD_NATIVE_CACHE"); env != nullptr && env[0] != '\0') {
    return env;
  }
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) {
    tmp = "/tmp";
  }
#if defined(OSGUARD_NATIVE_TIER)
  return (tmp / ("osguard-native-" + std::to_string(static_cast<long>(getuid())))).string();
#else
  return (tmp / "osguard-native").string();
#endif
}

bool WriteFileAtomic(const fs::path& path, const std::string& text) {
  const fs::path tmp = path.string() + ".tmp." +
                       std::to_string(static_cast<unsigned long>(
#if defined(OSGUARD_NATIVE_TIER)
                           getpid()
#else
                           0
#endif
                           ));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << text;
    if (!out.flush()) {
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

}  // namespace

NativeObject::~NativeObject() {
#if defined(OSGUARD_NATIVE_TIER)
  if (handle != nullptr) {
    dlclose(handle);
  }
#endif
}

NativeAot::NativeAot(NativeAotOptions options)
    : compiler_(options.compiler.empty() ? DefaultCompiler() : std::move(options.compiler)),
      cache_dir_(options.cache_dir.empty() ? DefaultCacheDir() : std::move(options.cache_dir)) {}

bool NativeAot::CompiledIn() {
#if defined(OSGUARD_NATIVE_TIER)
  return true;
#else
  return false;
#endif
}

bool NativeAot::Available() {
  if (available_ >= 0) {
    return available_ == 1;
  }
  if (!CompiledIn()) {
    available_ = 0;
    return false;
  }
  // Probe: compile and load a trivial rule. Runs the full pipeline once, so
  // a broken compiler, unwritable cache dir, or failing dlopen all demote the
  // tier to "unavailable" up front — the engine then logs and stays on the
  // interpreter rather than failing per-monitor.
  Program probe;
  probe.name = "osguard.native.probe";
  probe.register_count = 1;
  probe.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0, 0});
  probe.insns.push_back(Insn{Op::kRet, 0, 0, 0, 0, 0});
  probe.consts.push_back(Value(int64_t{42}));
  auto result = CompileProgram(probe);
  available_ = result.ok() ? 1 : 0;
  if (available_ == 0) {
    std::fprintf(stderr,
                 "osguard: native tier unavailable (%s); monitors stay interpreted\n",
                 result.status().ToString().c_str());
  }
  return available_ == 1;
}

Result<std::shared_ptr<NativeObject>> NativeAot::Compile(const CompiledGuardrail& guardrail) {
  std::string tu = NativeAbiText();
  tu += "\n";
  tu += EmitNativeSource(guardrail);
  return CompileText(tu, /*expect_action=*/true);
}

Result<std::shared_ptr<NativeObject>> NativeAot::CompileProgram(const Program& program) {
  std::string tu = NativeAbiText();
  tu += "\n";
  tu += EmitNativeFunction(program, "osg_rule");
  return CompileText(tu, /*expect_action=*/false);
}

Result<std::shared_ptr<NativeObject>> NativeAot::CompileText(const std::string& tu_text,
                                                             bool expect_action) {
#if !defined(OSGUARD_NATIVE_TIER)
  (void)tu_text;
  (void)expect_action;
  return FailedPreconditionError("native tier not compiled into this binary");
#else
  const std::string hash = ContentHash(tu_text);
  if (auto it = cache_.find(hash); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  std::error_code ec;
  fs::create_directories(cache_dir_, ec);
  if (ec) {
    ++stats_.failures;
    return InternalError("native cache dir '" + cache_dir_ + "': " + ec.message());
  }
  const fs::path base = fs::path(cache_dir_) / ("osg_" + hash);
  const std::string c_path = base.string() + ".c";
  const std::string so_path = base.string() + ".so";
  const std::string log_path = base.string() + ".log";

  if (fs::exists(so_path, ec) && !ec) {
    // Disk cache: a previous process (or run) built this exact TU.
    auto loaded = LoadObject(so_path, hash, expect_action);
    if (loaded.ok()) {
      ++stats_.cache_hits;
      return loaded;
    }
    fs::remove(so_path, ec);  // stale/corrupt object: rebuild below
  }

  if (!WriteFileAtomic(c_path, tu_text)) {
    ++stats_.failures;
    return InternalError("cannot write native TU to '" + c_path + "'");
  }
  const std::string so_tmp = so_path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  const std::string command = compiler_ + " -O2 -fPIC -shared -o '" + so_tmp + "' '" +
                              c_path + "' > '" + log_path + "' 2>&1";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    ++stats_.failures;
    fs::remove(so_tmp, ec);
    return InternalError("native compile failed (exit " + std::to_string(rc) + "): " +
                         command);
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    ++stats_.failures;
    return InternalError("cannot install native object '" + so_path + "': " + ec.message());
  }
  auto loaded = LoadObject(so_path, hash, expect_action);
  if (loaded.ok()) {
    ++stats_.compiles;
  }
  return loaded;
#endif
}

Result<std::shared_ptr<NativeObject>> NativeAot::LoadObject(const std::string& so_path,
                                                            const std::string& hash,
                                                            bool expect_action) {
#if !defined(OSGUARD_NATIVE_TIER)
  (void)so_path;
  (void)hash;
  (void)expect_action;
  return FailedPreconditionError("native tier not compiled into this binary");
#else
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    ++stats_.failures;
    const char* err = dlerror();
    return InternalError("dlopen('" + so_path + "') failed: " +
                         (err != nullptr ? err : "unknown error"));
  }
  auto object = std::make_shared<NativeObject>();
  object->handle = handle;
  object->content_hash = hash;
  object->rule = reinterpret_cast<NativeObject::EntryFn>(dlsym(handle, "osg_rule"));
  object->action = reinterpret_cast<NativeObject::EntryFn>(dlsym(handle, "osg_action"));
  object->on_satisfy =
      reinterpret_cast<NativeObject::EntryFn>(dlsym(handle, "osg_on_satisfy"));
  if (object->rule == nullptr || (expect_action && object->action == nullptr)) {
    ++stats_.failures;
    return InternalError("native object '" + so_path + "' is missing entry points");
  }
  cache_.emplace(hash, object);
  return object;
#endif
}

}  // namespace osguard
