// Static verifier for monitor bytecode.
//
// Mirrors the role of the eBPF verifier: a monitor is only loaded into the
// (simulated) kernel if it provably terminates and cannot fault on register
// or constant accesses. The invariants checked here:
//
//   1. Size limits: instruction count, constant-pool size, register count.
//   2. Every register / constant / helper reference is in range.
//   3. Jumps are strictly forward and land inside the program, so the CFG is
//      a DAG and termination is structural.
//   4. Every reachable path ends in kRet (no fall-through off the end).
//   5. Registers are defined before use along every path (dataflow over the
//      DAG with intersection-merge at joins).
//   6. Helper calls match the builtin's arity; action helpers are rejected
//      unless the caller says the program is an action program.
//
// A program that passes Verify() can only fail at run time through a helper
// error or division by zero, both of which the VM turns into a clean
// kExecutionError — never a crash. This is the "crash-free semantics" the
// paper's §4.2 asks of compiled guardrails.

#ifndef SRC_VM_VERIFIER_H_
#define SRC_VM_VERIFIER_H_

#include "src/support/status.h"
#include "src/vm/bytecode.h"

namespace osguard {

struct VerifyOptions {
  // Permit REPORT / REPLACE / RETRAIN / DEPRIORITIZE and the store-mutating
  // helpers (SAVE / INCR / OBSERVE). Rule programs are verified with this
  // off, action programs with it on.
  bool allow_actions = false;
};

Status Verify(const Program& program, const VerifyOptions& options = {});

}  // namespace osguard

#endif  // SRC_VM_VERIFIER_H_
