// AST -> bytecode compiler for guardrail monitors.
//
// Each analyzed guardrail compiles into:
//   * a rule program     — conjunction of the rule expressions, returns bool
//                          (true = property holds, false = violation)
//   * an action program  — the action statements, run on violation
//   * an optional on_satisfy program — run on the violated->satisfied edge
//
// plus the constant-folded trigger list. All three programs are verified
// before being returned; a CompiledGuardrail is therefore loadable as-is.
//
// Expression compilation uses stack-discipline register allocation (registers
// are reclaimed when a subexpression's value dies), short-circuits && and ||
// with forward jumps, and normalizes truth values with double-negation so
// every logical result is a canonical bool.

#ifndef SRC_VM_COMPILER_H_
#define SRC_VM_COMPILER_H_

#include <string>
#include <vector>

#include "src/dsl/ast.h"
#include "src/dsl/sema.h"
#include "src/support/status.h"
#include "src/vm/bytecode.h"

namespace osguard {

// Trigger with expressions folded away — what the runtime actually consumes.
struct CompiledTrigger {
  TriggerKind kind = TriggerKind::kTimer;
  SimTime start = 0;
  Duration interval = 0;
  SimTime stop = 0;  // 0 = run forever
  std::string function_name;
  std::string watch_key;  // kOnChange
};

struct CompiledGuardrail {
  std::string name;
  GuardrailMeta meta;
  std::vector<CompiledTrigger> triggers;
  Program rule;
  Program action;
  Program on_satisfy;  // empty() if the guardrail has no on_satisfy block
};

// Compiles one analyzed guardrail; all emitted programs pass Verify().
Result<CompiledGuardrail> CompileGuardrail(const AnalyzedGuardrail& guardrail);

// Compiles every guardrail in an analyzed spec.
Result<std::vector<CompiledGuardrail>> CompileSpec(const AnalyzedSpec& spec);

// Full pipeline: lex -> parse -> analyze -> compile -> verify.
Result<std::vector<CompiledGuardrail>> CompileSource(const std::string& source);

// Compiles a standalone side-effect-free expression into a rule-style
// program returning its value (used by tests and programmatic properties).
Result<Program> CompileExpr(const Expr& expr, const std::string& name);

// Peephole pass run on every compiled program before verification. Fuses
// LoadConst+compare into kCmpConst, compare+branch into the fused
// compare-and-branch superinstructions, and collapses the canonicalizing
// not;not pairs the expression compiler emits after bool-producing ops.
// Jump offsets are remapped and jumps that collapse to fall-through are
// dropped. Semantics are preserved exactly; if `program` looks structurally
// unsound (out-of-range registers or jumps) it is returned unchanged.
// Exposed for differential testing of fused vs. unfused execution.
Program PeepholeOptimize(Program program);

}  // namespace osguard

#endif  // SRC_VM_COMPILER_H_
