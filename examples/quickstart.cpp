// Quickstart: declare a guardrail, load it into a running kernel, watch it
// detect a violation and recover.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole pipeline: DSL source -> compiled+verified monitor
// (with disassembly and the generated kernel-module C) -> runtime detection
// -> corrective action -> recovery via on_satisfy.

#include <cstdio>

#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/vm/c_backend.h"
#include "src/vm/compiler.h"

using namespace osguard;

int main() {
  Logger::Global().set_level(LogLevel::kOff);

  // 1. A guardrail, declared the way the paper's Listing 1/2 writes them:
  //    property (trigger + rule) plus corrective actions. This one watches a
  //    latency metric, reports and flips a kill switch when it degrades, and
  //    re-enables the learned policy when the system recovers.
  const char* spec = R"(
    guardrail io-latency-bound {
      trigger: { TIMER(1s, 1s) },
      rule: { COUNT(io_latency_us, 5s) == 0 || MEAN(io_latency_us, 5s) <= 200 },
      action: {
        SAVE(ml_enabled, false);
        REPORT("latency bound violated", MEAN(io_latency_us, 5s));
      },
      on_satisfy: { SAVE(ml_enabled, true) },
      meta: { severity = warning, hysteresis = 2, cooldown = 3s }
    }
  )";

  // 2. Inspect what the compiler produces (this is what would be loaded
  //    into the kernel as an eBPF-style program or a kernel module).
  auto compiled = CompileSource(spec);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("=== compiled rule program ===\n%s\n",
              compiled.value()[0].rule.Disassemble().c_str());
  std::printf("=== generated kernel-module C (excerpt) ===\n%.600s...\n\n",
              EmitKernelModuleSource(compiled.value()[0]).c_str());

  // 3. Load it into a simulated kernel and drive a workload.
  Kernel kernel;
  if (Status status = kernel.LoadGuardrails(spec); !status.ok()) {
    std::fprintf(stderr, "load error: %s\n", status.ToString().c_str());
    return 1;
  }

  // Healthy phase: ~120us I/Os. Degraded phase: ~900us. Recovery.
  auto feed = [&](SimTime from, SimTime to, double latency_us) {
    for (SimTime t = from; t < to; t += Milliseconds(50)) {
      kernel.queue().ScheduleAt(t, [&kernel, latency_us](SimTime now) {
        kernel.store().Observe("io_latency_us", now, latency_us);
      });
    }
  };
  feed(0, Seconds(5), 120.0);
  feed(Seconds(5), Seconds(10), 900.0);
  feed(Seconds(10), Seconds(15), 110.0);

  kernel.Run(Seconds(15));

  // 4. What happened?
  const auto stats = kernel.engine().StatsFor("io-latency-bound").value();
  std::printf("=== run summary ===\n");
  std::printf("evaluations: %llu, violations: %llu, actions fired: %llu, recoveries: %llu\n",
              static_cast<unsigned long long>(stats.evaluations),
              static_cast<unsigned long long>(stats.violations),
              static_cast<unsigned long long>(stats.action_firings),
              static_cast<unsigned long long>(stats.satisfy_firings));
  std::printf("ml_enabled at end: %s (re-enabled by on_satisfy)\n",
              kernel.store().LoadOr("ml_enabled", Value(true)).AsBool().value_or(true)
                  ? "true"
                  : "false");
  std::printf("\n=== report log ===\n");
  for (const ReportRecord& record : kernel.engine().reporter().Records()) {
    std::printf("%s\n", record.ToString().c_str());
  }
  return 0;
}
