// Readahead bounds example (property P3 + actions A2/A3).
//
//   $ ./build/examples/readahead_bounds
//
// A learned readahead policy serves a sequential scan well, then starts
// emitting out-of-bounds prefetch decisions after its input distribution
// shifts to random access. A P3 guardrail catches the illegal outputs,
// swaps in the heuristic window, and queues the model for retraining.

#include <cstdio>

#include "src/properties/specs.h"
#include "src/sim/kernel.h"
#include "src/sim/readahead.h"
#include "src/support/logging.h"
#include "src/wl/accessgen.h"

using namespace osguard;

namespace {

// Learned policy that extrapolates badly out of distribution: on random
// access it "predicts" absurd prefetch windows.
class ExtrapolatingReadahead : public ReadaheadPolicy {
 public:
  std::string name() const override { return "learned_readahead"; }
  bool is_learned() const override { return true; }
  int64_t PrefetchChunks(const ReadaheadContext& context) override {
    const double sequentiality = context.features[1];
    if (sequentiality > 0.6) {
      return 8;  // in distribution: sane
    }
    // Out of distribution: garbage scales with how far out it is.
    return static_cast<int64_t>(1000000.0 * (1.0 - sequentiality));
  }
};

}  // namespace

int main() {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ReadaheadConfig config;
  config.cache_capacity_chunks = 1024;
  ReadaheadManager manager(kernel, config);

  (void)kernel.registry().Register(std::make_shared<ExtrapolatingReadahead>());
  (void)kernel.registry().Register(std::make_shared<FixedWindowReadahead>(8));
  (void)kernel.registry().BindSlot("mem.readahead", "learned_readahead");
  kernel.store().Save("ra.zero", Value(0));

  // P3 guardrail: the raw decision must stay within the legal range; on
  // violation fall back to the heuristic AND queue retraining.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(50);
  options.check_start = Milliseconds(50);
  const std::string spec = OutputBoundsSpec(
      "ra-bounds", "ra.last_decision", "ra.zero", "ra.max_legal",
      "REPLACE(learned_readahead, heuristic_fixed_window); "
      "RETRAIN(learned_readahead, ra.recent_accesses); "
      "REPORT(\"illegal readahead\", ra.last_decision)",
      options);
  std::printf("generated guardrail:\n%s\n", spec.c_str());
  if (Status status = kernel.LoadGuardrails(spec); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Phase 1: sequential scan (in distribution).
  AccessPhase sequential;
  sequential.duration = Seconds(2);
  sequential.sequential_prob = 0.95;
  sequential.reads_per_sec = 2000;
  // Phase 2: random access (out of distribution).
  AccessPhase random_access = sequential;
  random_access.sequential_prob = 0.05;

  FileAccessGenerator generator({sequential, random_access}, 7);
  for (const FileAccess& access : generator.Generate()) {
    kernel.Run(access.at);
    manager.Read(access.chunk);
  }
  kernel.Run(Seconds(4));

  std::printf("reads: %llu, hit rate: %.2f, illegal decisions clamped by the kernel: %llu\n",
              static_cast<unsigned long long>(manager.stats().reads),
              manager.stats().hit_rate(),
              static_cast<unsigned long long>(manager.stats().illegal_decisions));
  std::printf("active readahead policy now: %s\n",
              kernel.registry().Active("mem.readahead").value()->name().c_str());
  auto retrain = kernel.engine().retrain_queue().Pop();
  if (retrain.has_value()) {
    std::printf("retrain queued for model '%s' at t=%s\n", retrain->model.c_str(),
                FormatDuration(retrain->requested_at).c_str());
  }
  std::printf("\nfirst reports:\n");
  int shown = 0;
  for (const ReportRecord& record : kernel.engine().reporter().RecordsFor("ra-bounds")) {
    std::printf("  %s\n", record.ToString().c_str());
    if (++shown >= 4) {
      break;
    }
  }
  return 0;
}
