// Huge-page stall example (the paper's §1 motivation + §2 property).
//
//   $ ./build/examples/hugepage_stalls
//
// An always-promote huge-page policy is great on a fresh system; as
// fragmentation builds, allocations start stalling on compaction — the
// paper's "up to 500 ms allocating a huge page". The §2 property, written
// in the DSL exactly as the paper phrases it ("Page fault latencies must
// not exceed 50ms"), catches the stall regime and flips promotion off.

#include <cstdio>

#include "src/sim/hugepage.h"
#include "src/support/logging.h"

using namespace osguard;

int main() {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  MemoryManager mm(kernel);
  (void)kernel.registry().Register(std::make_shared<AlwaysPromotePolicy>());
  (void)kernel.registry().BindSlot("mem.hugepage", "mm_always_promote");

  const char* spec = R"(
    guardrail page-fault-bound {
      trigger: { TIMER(100ms, 100ms) },
      rule: { COUNT(mm.fault_lat_ms, 500ms) == 0 || MAX(mm.fault_lat_ms, 500ms) <= 50 },
      action: { SAVE(mm.huge_enabled, false); REPORT("page fault latency bound violated") }
    }
  )";
  std::printf("guardrail (the paper's section-2 property, verbatim semantics):\n%s\n", spec);
  if (Status status = kernel.LoadGuardrails(spec); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Allocation churn: batches of processes touching regions, half exiting.
  std::printf("%-8s %-8s %-12s %-12s %-10s %s\n", "batch", "frag", "worst_ms",
              "stalls", "promos", "huge_enabled");
  uint64_t process = 0;
  for (int batch = 0; batch < 12; ++batch) {
    for (int p = 0; p < 8; ++p, ++process) {
      for (uint64_t r = 0; r < 80; ++r) {
        kernel.Run(kernel.now() + Microseconds(60));
        mm.Touch(process, r);
      }
      if (p % 2 == 1) {
        mm.ReleaseProcess(process);
      }
    }
    const bool enabled =
        kernel.store().LoadOr("mm.huge_enabled", Value(true)).AsBool().value_or(true);
    std::printf("%-8d %-8.2f %-12.1f %-12llu %-10llu %s\n", batch, mm.fragmentation(),
                static_cast<double>(mm.stats().worst_fault_ns) / 1e6,
                static_cast<unsigned long long>(mm.stats().stalls),
                static_cast<unsigned long long>(mm.stats().promotions),
                enabled ? "true" : "false  <- guardrail cut promotion off");
  }

  std::printf("\nreports:\n");
  for (const ReportRecord& record :
       kernel.engine().reporter().RecordsFor("page-fault-bound")) {
    std::printf("  %s\n", record.ToString().c_str());
    if (record.kind == ReportKind::kActionPayload) {
      break;
    }
  }
  std::printf("\nmean fault latency overall: %.2fms across %llu faults\n",
              static_cast<double>(mm.stats().total_fault_ns) /
                  static_cast<double>(mm.stats().faults) / 1e6,
              static_cast<unsigned long long>(mm.stats().faults));
  return 0;
}
