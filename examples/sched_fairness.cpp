// Scheduler fairness example (property P6 + actions A2/A4).
//
//   $ ./build/examples/sched_fairness
//
// A "learned" pick-next policy with a bias bug starves a task. A liveness
// guardrail generated from the property library detects the starvation and
// swaps the fair scheduler back in; a second guardrail demotes a noisy
// neighbor under pressure.

#include <cstdio>

#include "src/properties/specs.h"
#include "src/sim/kernel.h"
#include "src/sim/scheduler.h"
#include "src/support/logging.h"
#include "src/wl/taskgen.h"

using namespace osguard;

namespace {

// The buggy learned policy: always favors the task it was overfit to.
class OverfitPicker : public SchedPickPolicy {
 public:
  std::string name() const override { return "learned_picker"; }
  bool is_learned() const override { return true; }
  size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime) override {
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (runnable[i]->name == "web_server") {
        return i;
      }
    }
    return 0;
  }
};

void PrintTasks(const Scheduler& scheduler) {
  for (const SchedTask& task : scheduler.Tasks()) {
    std::printf("  %-12s cpu=%-8s max_wait=%-8s state=%s\n", task.name.c_str(),
                FormatDuration(task.total_cpu).c_str(),
                FormatDuration(task.max_wait).c_str(),
                task.state == TaskState::kDead ? "DEAD" : "alive");
  }
}

}  // namespace

int main() {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  Scheduler scheduler(kernel);

  (void)kernel.registry().Register(std::make_shared<OverfitPicker>());
  (void)kernel.registry().Register(std::make_shared<FairPickPolicy>());
  (void)kernel.registry().BindSlot("sched.pick_next", "learned_picker");

  const TaskId web = scheduler.AddTask("web_server", 2.0);
  const TaskId batch = scheduler.AddTask("batch_job", 1.0);
  const TaskId cron = scheduler.AddTask("cron", 1.0);
  (void)scheduler.SubmitBurst(web, Seconds(30));
  (void)scheduler.SubmitBurst(batch, Seconds(30));
  (void)scheduler.SubmitBurst(cron, Seconds(30));

  // P6 guardrail from the property library: no ready task starved > 100ms;
  // corrective action: fall back to the fair picker and log.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(100);
  options.check_start = Milliseconds(100);
  options.window = Milliseconds(500);
  const std::string spec = LivenessSpec(
      "no-starvation", "sched.starved_ms", 100.0,
      "REPLACE(learned_picker, sched_fair); REPORT(\"starvation detected\")", options);
  std::printf("generated guardrail:\n%s\n", spec.c_str());
  if (Status status = kernel.LoadGuardrails(spec); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  scheduler.PumpFor(Seconds(4));
  kernel.Run(Seconds(1));
  std::printf("after 1s under the biased learned picker:\n");
  PrintTasks(scheduler);

  kernel.Run(Seconds(4));
  std::printf("\nafter 4s (guardrail %s):\n",
              kernel.registry().Active("sched.pick_next").value()->name() == "sched_fair"
                  ? "fired -> fair picker restored"
                  : "never fired");
  PrintTasks(scheduler);

  std::printf("\nviolation reports:\n");
  for (const ReportRecord& record : kernel.engine().reporter().RecordsFor("no-starvation")) {
    std::printf("  %s\n", record.ToString().c_str());
  }
  return 0;
}
