// LinnOS failover example (the paper's §5 case study, condensed).
//
//   $ ./build/examples/linnos_failover
//
// Trains a LinnOS-style latency classifier offline, deploys it behind the
// Listing-2 guardrail, injects device-side drift mid-run, and prints an
// ASCII sketch of the latency series with and without the guardrail.

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/linnos/harness.h"
#include "src/support/logging.h"

using namespace osguard;

int main() {
  Logger::Global().set_level(LogLevel::kOff);

  Figure2Options options;
  options.before_drift = Seconds(8);
  options.after_drift = Seconds(8);
  options.arrivals_per_sec = 1500;

  std::printf("training the LinnOS classifier offline and running three configurations\n");
  std::printf("(this takes a few seconds of wall time)...\n\n");
  auto result = RunFigure2Experiment(options);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const Figure2Result& r = result.value();

  std::printf("classifier quality on held-out pre-drift traffic: %s\n\n",
              r.model_quality_before.ToString().c_str());

  // ASCII sketch: one row per bucket, bars scaled to the max mean latency.
  double max_latency = 1.0;
  for (const auto& point : r.without_guardrail.series) {
    max_latency = std::max(max_latency, point.mean_latency_us);
  }
  auto bar = [max_latency](double value) {
    const int width = static_cast<int>(40.0 * value / max_latency);
    return std::string(static_cast<size_t>(std::max(width, 0)), '#');
  };
  std::printf("%-7s %-9s %-42s %-9s %s\n", "time", "linnos", "", "guarded", "");
  for (size_t i = 0; i < r.without_guardrail.series.size(); i += 2) {
    const auto& plain = r.without_guardrail.series[i];
    const auto& guarded = r.with_guardrail.series[i];
    const char* marker = "";
    if (plain.time_s >= r.drift_time_s && plain.time_s < r.drift_time_s + 0.5) {
      marker = "  <- drift";
    }
    if (r.with_guardrail.guardrail_fired &&
        plain.time_s >= r.with_guardrail.trigger_time_s &&
        plain.time_s < r.with_guardrail.trigger_time_s + 0.5) {
      marker = "  <- guardrail fires";
    }
    std::printf("%5.1fs %7.0fus %-42s %7.0fus %s%s\n", plain.time_s, plain.mean_latency_us,
                bar(plain.mean_latency_us).c_str(), guarded.mean_latency_us,
                bar(guarded.mean_latency_us).c_str(), marker);
  }

  std::printf("\npost-drift mean latency: linnos %.0fus, linnos+guardrail %.0fus, "
              "reactive baseline %.0fus\n",
              r.without_guardrail.mean_latency_us_after,
              r.with_guardrail.mean_latency_us_after, r.baseline.mean_latency_us_after);
  if (r.with_guardrail.guardrail_fired) {
    std::printf("the Listing-2 guardrail tripped at t=%.1fs and disabled the model; "
                "reactive revocation took over.\n",
                r.with_guardrail.trigger_time_s);
  }
  return 0;
}
