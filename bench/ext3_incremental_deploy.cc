// Extension E3: incremental deployment and runtime updates (paper §3.3, §6).
//
// Measures (a) the cost of hot-loading guardrails into a running engine —
// compile + verify + install, with the engine continuing to evaluate — and
// (b) that replacing a guardrail at run time takes effect at the next check
// with no missed evaluations ("update guardrails at runtime without
// requiring a kernel reboot").

#include <chrono>
#include <cstdio>
#include <string>

#include "src/runtime/engine.h"
#include "src/support/logging.h"
#include "src/vm/compiler.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string MakeGuardrail(const std::string& name, double threshold) {
  return "guardrail " + name +
         " {\n"
         "  trigger: { TIMER(100ms, 100ms) },\n"
         "  rule: { LOAD_OR(shared_metric, 0) <= " +
         std::to_string(threshold) +
         " },\n"
         "  action: { INCR(" +
         name + ".fires) }\n}\n";
}

void HotLoadCost() {
  std::printf("# (a) hot-load cost: compile+verify+install while the engine runs\n");
  std::printf("%-12s %18s %16s\n", "batch_size", "wall_us_per_load", "total_monitors");
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  int next = 0;
  for (int batch : {1, 10, 100}) {
    engine.AdvanceTo(Seconds(next + 1));  // engine is mid-run
    const int64_t start = WallNs();
    for (int i = 0; i < batch; ++i) {
      (void)engine.LoadSource(MakeGuardrail("g" + std::to_string(next++), 10.0));
    }
    const int64_t elapsed = WallNs() - start;
    std::printf("%-12d %18.1f %16zu\n", batch,
                static_cast<double>(elapsed) / 1000.0 / batch,
                engine.MonitorNames().size());
  }
}

void RuntimeUpdateTakesEffectNextCheck() {
  std::printf("\n# (b) runtime update: threshold change visible at the next check\n");
  Logger::Global().set_level(LogLevel::kOff);
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  (void)engine.LoadSource(MakeGuardrail("g", 10.0));
  store.Save("shared_metric", Value(50.0));
  engine.AdvanceTo(Seconds(10));  // 100 checks, all violating
  const double fires_strict = store.LoadOr("g.fires", Value(0)).NumericOr(0);

  const int64_t start = WallNs();
  (void)engine.LoadSource(MakeGuardrail("g", 100.0));  // loosen at t=10s
  const int64_t swap_ns = WallNs() - start;
  engine.AdvanceTo(Seconds(20));
  const double fires_after = store.LoadOr("g.fires", Value(0)).NumericOr(0);
  std::printf("fires_with_strict_rule=%.0f fires_after_update=%.0f (delta %.0f) "
              "swap_cost_us=%.1f\n",
              fires_strict, fires_after, fires_after - fires_strict,
              static_cast<double>(swap_ns) / 1000.0);
  std::printf("evaluations_total=%llu errors=%llu (no checks lost across the update)\n",
              static_cast<unsigned long long>(engine.stats().evaluations),
              static_cast<unsigned long long>(engine.stats().errors));
}

void CoverageVsCost() {
  std::printf("\n# (c) incremental coverage: each added guardrail's marginal cost\n");
  std::printf("%-12s %20s\n", "monitors", "wall_ns_per_simsec");
  for (int count : {1, 2, 4, 8, 16, 32}) {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    for (int i = 0; i < count; ++i) {
      (void)engine.LoadSource(MakeGuardrail("g" + std::to_string(i), 10.0));
    }
    store.Save("shared_metric", Value(5.0));
    const int64_t start = WallNs();
    engine.AdvanceTo(Seconds(30));
    const int64_t elapsed = WallNs() - start;
    std::printf("%-12d %20lld\n", count, static_cast<long long>(elapsed / 30));
  }
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E3: incremental deployment and runtime guardrail updates\n");
  HotLoadCost();
  RuntimeUpdateTakesEffectNextCheck();
  CoverageVsCost();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
