// Extension 6: fault storms vs. the Listing-2 guardrail.
//
// The Figure-2 drift experiment, re-run under deterministic fault injection
// (osguard::chaos): a steady background of device latency spikes and I/O
// errors on the primary plus periodic misprediction storms against the
// learned policy. Spikes are device-internal — the host features cannot see
// them — so every spike that lands on a predicted-fast I/O is a false
// submit the model could never have avoided.
//
// Expected shape (not absolute numbers): as storm severity rises, the
// guardrail trips earlier (the trigger latency from fault onset shrinks to
// ~1 check interval) and the guarded run's false-submit count stays bounded
// at roughly (trigger time x arrival rate x spike probability), while the
// unguarded run keeps vouching for the primary and its count grows with the
// full run length. The reactive baseline pays revocation costs but never
// false-submits.
//
// Usage: ext6_fault_storms [--long]

#include <cstdio>
#include <string>
#include <vector>

#include "src/linnos/harness.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

struct StormLevel {
  const char* name;
  double spike_p;       // <= 0 means no chaos attached at all
  double mispredict_p;
};

int Main(int argc, char** argv) {
  Logger::Global().set_level(LogLevel::kOff);
  Figure2Options options;
  if (argc > 1 && std::string(argv[1]) == "--long") {
    options.before_drift = Seconds(20);
    options.after_drift = Seconds(20);
  } else {
    options.before_drift = Seconds(10);
    options.after_drift = Seconds(10);
  }

  // "mild" stays below the 5% rule threshold: the guardrail must tolerate
  // sub-threshold noise, not just survive the big storm.
  const std::vector<StormLevel> levels = {
      {"idle", 0.0, 0.0},
      {"mild", 0.02, 0.2},
      {"storm", 0.08, 0.6},
      {"severe", 0.25, 0.9},
  };

  std::printf("# Extension 6: LinnOS drift run under injected fault storms\n");
  std::printf("# spikes = bernoulli(p) 4ms device stalls; storms = 400ms/2s "
              "misprediction bursts\n");
  std::printf("%-8s %-8s %-9s %-12s %-12s %-10s %-11s %-11s %-8s\n", "level", "spike_p",
              "injected", "fsub_guard", "fsub_noguard", "trigger_s", "guard_us", "noguard_us",
              "ml_end");
  for (const StormLevel& level : levels) {
    if (level.spike_p > 0.0) {
      options.chaos_source = MakeFaultStormChaosSpec(1729, level.spike_p, level.mispredict_p);
    } else {
      options.chaos_source.clear();
    }
    auto result = RunFigure2Experiment(options);
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed at level %s: %s\n", level.name,
                   result.status().ToString().c_str());
      return 1;
    }
    const Figure2Result& r = result.value();
    char trigger[32];
    if (r.with_guardrail.guardrail_fired) {
      std::snprintf(trigger, sizeof(trigger), "%.2f", r.with_guardrail.trigger_time_s);
    } else {
      std::snprintf(trigger, sizeof(trigger), "never");
    }
    std::printf("%-8s %-8.2f %-9llu %-12llu %-12llu %-10s %-11.1f %-11.1f %-8s\n", level.name,
                level.spike_p,
                static_cast<unsigned long long>(r.with_guardrail.injected_faults),
                static_cast<unsigned long long>(r.with_guardrail.blk.false_submits),
                static_cast<unsigned long long>(r.without_guardrail.blk.false_submits), trigger,
                r.with_guardrail.mean_latency_us_after,
                r.without_guardrail.mean_latency_us_after,
                r.with_guardrail.ml_enabled_at_end ? "on" : "off");
  }
  std::printf("\n# fsub_* = false submits over the whole run; guard stops accruing when\n"
              "# the Listing-2 rule trips and disables the model, noguard never stops.\n");
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
