// Ablation A2: which corrective action, for the same violated property?
//
// Runs the Figure-2 scenario four ways — no guardrail, A2-style disable
// (Listing 2's SAVE(ml_enabled,false)), A3 retrain-in-place, and disable
// with on_satisfy re-enable — and compares post-drift latency, false
// submits, and whether the model is still in use at the end. This is the
// design-space question Figure 1's right table raises: REPORT < REPLACE <
// RETRAIN < DEPRIORITIZE escalate in invasiveness; here we measure the
// middle two against each other.

#include <cstdio>
#include <string>

#include "src/linnos/harness.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

constexpr char kDisableWithReenable[] = R"(
guardrail low-false-submit {
  trigger: { TIMER(1s, 1s) },
  rule: { LOAD_OR(false_submit_rate, 0) <= 0.05 },
  action: { SAVE(blk.ml_enabled, false); REPORT("disabled") },
  on_satisfy: { SAVE(blk.ml_enabled, true); REPORT("re-enabled") },
  meta: { cooldown = 2s }
}
)";

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  Figure2Options options;
  options.before_drift = Seconds(10);
  options.after_drift = Seconds(15);  // extra room to see recovery dynamics

  TrainingRunOptions training;
  training.device = options.device;
  training.blk = options.blk;
  training.trace_seed = options.trace_seed + 1000;
  training.duration = Seconds(10);
  training.arrivals_per_sec = options.arrivals_per_sec;
  IoPhase phase;
  phase.write_fraction = 0.05;
  phase.zipf_skew = 0.6;

  std::printf("# A2: corrective-action comparison on the Figure-2 drift\n");
  std::printf("%-22s %-13s %-13s %-14s %-10s %-9s\n", "action", "post_mean_us",
              "false_submits", "model_at_end", "retrains", "trigger_s");

  struct Config {
    const char* label;
    const char* source;  // nullptr = no guardrail
    bool retrain_loop;
  };
  for (const Config& config :
       {Config{"none", nullptr, false},
        Config{"disable (Listing 2)", kListing2Guardrail, false},
        Config{"retrain in place", kRetrainGuardrail, true},
        Config{"disable + re-enable", kDisableWithReenable, false}}) {
    // Fresh model per configuration: retraining mutates it.
    auto model = TrainLinnosModel(phase, training, options.model);
    if (!model.ok()) {
      std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
      return 1;
    }
    Figure2Options run_options = options;
    run_options.enable_retrain_loop = config.retrain_loop;
    auto run = RunLinnosConfiguration(run_options, model.value(),
                                      config.source == nullptr ? "" : config.source);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %-13.1f %-13llu %-14s %-10llu %-9.1f\n", config.label,
                run->mean_latency_us_after,
                static_cast<unsigned long long>(run->blk.false_submits),
                run->ml_enabled_at_end ? "enabled" : "disabled",
                static_cast<unsigned long long>(run->retrains_serviced),
                run->trigger_time_s);
  }
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int, char**) { return osguard::Main(); }
