// Figure 1 (left table) reproduction: the property taxonomy P1-P6.
//
// For each property class, runs its motivating scenario on the matching
// substrate with an injected violation, and reports whether the generated
// guardrail detected it and how quickly. This regenerates the table's rows
// as measured behavior rather than prose.

#include <cstdio>
#include <memory>

#include "src/properties/drift.h"
#include "src/properties/specs.h"
#include "src/sim/kernel.h"
#include "src/sim/cache.h"
#include "src/sim/congestion.h"
#include "src/sim/readahead.h"
#include "src/sim/scheduler.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace osguard {
namespace {

struct Row {
  const char* id;
  const char* description;
  uint64_t evaluations = 0;
  uint64_t violations = 0;
  double detect_latency_s = -1;  // injection -> first violation report
  bool detected = false;
};

void PrintRow(const Row& row) {
  std::printf("%-4s %-44s %8llu %8llu %10.2f %s\n", row.id, row.description,
              static_cast<unsigned long long>(row.evaluations),
              static_cast<unsigned long long>(row.violations),
              row.detect_latency_s, row.detected ? "DETECTED" : "MISSED");
}

double FirstViolationTime(Kernel& kernel, const std::string& guardrail) {
  for (const ReportRecord& record : kernel.engine().reporter().Records()) {
    if (record.guardrail == guardrail && record.kind == ReportKind::kViolation) {
      return ToSeconds(record.time);
    }
  }
  return -1;
}

Row FillRow(Kernel& kernel, const char* id, const char* description,
            const std::string& name, double injected_at_s) {
  Row row{id, description};
  const MonitorStats stats = kernel.engine().StatsFor(name).value();
  row.evaluations = stats.evaluations;
  row.violations = stats.violations;
  const double first = FirstViolationTime(kernel, name);
  row.detected = first >= 0;
  row.detect_latency_s = row.detected ? first - injected_at_s : -1;
  return row;
}

PropertySpecOptions FastCheck() {
  PropertySpecOptions options;
  options.check_interval = Milliseconds(200);
  options.check_start = Milliseconds(200);
  options.window = Seconds(2);
  return options;
}

// P1: input drift on a model's feature stream.
Row RunP1() {
  Kernel kernel;
  kernel.LoadGuardrails(
      InDistributionSpec("p1", "model.drift", 0.3, "RETRAIN(model, recent)", FastCheck()));
  Rng rng(1);
  std::vector<std::vector<double>> training;
  for (int i = 0; i < 2000; ++i) {
    training.push_back({rng.Normal(0, 1)});
  }
  MultiDriftDetector detector(1);
  (void)detector.Fit(training);
  const double inject_at = 5.0;
  for (int step = 0; step < 100; ++step) {
    const SimTime t = Milliseconds(100) * (step + 1);
    const double mean = ToSeconds(t) < inject_at ? 0.0 : 6.0;  // shift at 5s
    for (int i = 0; i < 16; ++i) {
      detector.Observe({rng.Normal(mean, 1)});
    }
    detector.Publish(kernel.store(), "model.drift");
    kernel.Run(t);
  }
  return FillRow(kernel, "P1", "in-distribution inputs (feature drift)", "p1", inject_at);
}

// P2: output robustness — a learned rate controller that overreacts to RTT
// measurement noise takes over the congestion-control slot mid-run.
Row RunP2() {
  Kernel kernel;
  CongestionConfig config;
  config.rtt_noise_ms = 2.0;
  CongestionSim sim(kernel, config);
  struct Fragile : RatePolicy {
    std::string name() const override { return "cc_fragile"; }
    bool is_learned() const override { return true; }
    double last_rtt = 20.0;
    double NextRate(const CcSignals& signals) override {
      const double delta = signals.rtt_ms - last_rtt;
      last_rtt = signals.rtt_ms;
      return std::max(1.0, signals.current_rate_mbps - delta * 40.0);
    }
  };
  (void)kernel.registry().Register(std::make_shared<AimdPolicy>());
  (void)kernel.registry().Register(std::make_shared<Fragile>());
  (void)kernel.registry().BindSlot("net.cc", "cc_aimd");
  PropertySpecOptions p2_options = FastCheck();
  p2_options.check_start = Seconds(3);  // let AIMD finish its ramp-up
  kernel.LoadGuardrails(
      RobustnessSpec("p2", "net.rtt_ms", "net.rate_mbps", 4.0, "REPORT()", p2_options));
  const double inject_at = 5.0;
  kernel.queue().ScheduleAt(Seconds(5), [&kernel](SimTime) {
    (void)kernel.registry().BindSlot("net.cc", "cc_fragile");  // deploy the fragile model
  });
  sim.PumpFor(Seconds(10));
  kernel.Run(Seconds(10));
  return FillRow(kernel, "P2", "robust decisions (congestion control)", "p2", inject_at);
}

// P3: out-of-bounds outputs from a readahead model.
Row RunP3() {
  Kernel kernel;
  ReadaheadManager manager(kernel, {});
  struct Breakable : ReadaheadPolicy {
    bool broken = false;
    std::string name() const override { return "learned_ra"; }
    bool is_learned() const override { return true; }
    int64_t PrefetchChunks(const ReadaheadContext&) override {
      return broken ? (1 << 26) : 4;
    }
  };
  auto policy = std::make_shared<Breakable>();
  (void)kernel.registry().Register(policy);
  (void)kernel.registry().BindSlot("mem.readahead", "learned_ra");
  kernel.store().Save("ra.zero", Value(0));
  kernel.LoadGuardrails(OutputBoundsSpec("p3", "ra.last_decision", "ra.zero", "ra.max_legal",
                                         "REPORT(\"illegal prefetch\", ra.last_decision)",
                                         FastCheck()));
  const double inject_at = 5.0;
  uint64_t chunk = 0;
  for (int step = 0; step < 100; ++step) {
    const SimTime t = Milliseconds(100) * (step + 1);
    policy->broken = ToSeconds(t) >= inject_at;
    kernel.Run(t);
    manager.Read(chunk++);
  }
  return FillRow(kernel, "P3", "out-of-bounds outputs (readahead)", "p3", inject_at);
}

// P4: decision quality — a learned eviction policy's hit rate collapses
// below the shadow-LRU baseline when the workload shifts against it.
Row RunP4() {
  Kernel kernel;
  CacheSim cache(kernel, CacheConfig{.capacity = 128});
  (void)kernel.registry().Register(std::make_shared<LruEvictionPolicy>());
  (void)kernel.registry().Register(std::make_shared<MruEvictionPolicy>());
  (void)kernel.registry().BindSlot("cache.evict", "cache_lru");
  kernel.LoadGuardrails(DecisionQualitySpec("p4", "cache.hit", "cache.shadow_hit", 0.8,
                                            "REPLACE(cache_mru, cache_lru)", FastCheck()));
  const double inject_at = 5.0;
  kernel.queue().ScheduleAt(Seconds(5), [&kernel](SimTime) {
    (void)kernel.registry().BindSlot("cache.evict", "cache_mru");  // broken model deploys
  });
  Rng rng(4);
  for (int step = 0; step < 10000; ++step) {
    kernel.Run(Milliseconds(step + 1));
    cache.Access(rng.Zipf(4096, 1.0));
  }
  return FillRow(kernel, "P4", "decision quality (cache replacement)", "p4", inject_at);
}

// P5: decision overhead — inference cost stops being paid back.
Row RunP5() {
  Kernel kernel;
  kernel.LoadGuardrails(DecisionOverheadSpec("p5", "blk.infer_us", "blk.latency_us", 0.10,
                                             "SAVE(blk.ml_enabled, false)", FastCheck()));
  const double inject_at = 5.0;
  for (int step = 0; step < 100; ++step) {
    const SimTime t = Milliseconds(100) * (step + 1);
    const bool slow_model = ToSeconds(t) >= inject_at;  // model got bigger
    for (int i = 0; i < 8; ++i) {
      kernel.store().Observe("blk.infer_us", t, slow_model ? 40.0 : 4.0);
      kernel.store().Observe("blk.latency_us", t, 120.0);
    }
    kernel.Run(t);
  }
  return FillRow(kernel, "P5", "decision overhead (inference cost)", "p5", inject_at);
}

// P6: liveness — a biased learned picker starves a task.
Row RunP6() {
  Kernel kernel;
  Scheduler scheduler(kernel);
  struct Biased : SchedPickPolicy {
    std::string name() const override { return "biased"; }
    bool is_learned() const override { return true; }
    size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime) override {
      for (size_t i = 0; i < runnable.size(); ++i) {
        if (runnable[i]->name == "favored") {
          return i;
        }
      }
      return 0;
    }
  };
  (void)kernel.registry().Register(std::make_shared<Biased>());
  (void)kernel.registry().BindSlot("sched.pick_next", "biased");
  kernel.LoadGuardrails(LivenessSpec("p6", "sched.starved_ms", 100.0,
                                     "REPLACE(biased, sched_fair)", FastCheck()));
  (void)kernel.registry().Register(std::make_shared<FairPickPolicy>());
  const TaskId favored = scheduler.AddTask("favored");
  const TaskId victim = scheduler.AddTask("victim");
  (void)scheduler.SubmitBurst(favored, Seconds(30));
  (void)scheduler.SubmitBurst(victim, Seconds(30));
  scheduler.PumpFor(Seconds(10));
  kernel.Run(Seconds(10));
  // Starvation builds from t=0; "injection" is effectively at the start.
  return FillRow(kernel, "P6", "fairness/liveness (CPU scheduling)", "p6", 0.0);
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# Figure 1 (left): property taxonomy, measured\n");
  std::printf("%-4s %-44s %8s %8s %10s %s\n", "id", "property (scenario)", "checks",
              "violas", "det_lat_s", "verdict");
  PrintRow(RunP1());
  PrintRow(RunP2());
  PrintRow(RunP3());
  PrintRow(RunP4());
  PrintRow(RunP5());
  PrintRow(RunP6());
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
