// Extension E2: guardrail feedback loops (paper §6).
//
// "Deploying multiple guardrails in the kernel — each monitoring a
// different property — can create feedback loops, where preventing one
// violation triggers another, causing the system to oscillate between
// violation states."
//
// Scenario: a memory-pressure guardrail shrinks the page cache when
// pressure is high; a latency guardrail grows the cache when I/O latency is
// high. Around the crossover point each action violates the other property.
// The bench sweeps the damping knobs (cooldown, hysteresis) and reports the
// oscillation rate (action firings per simulated minute).

#include <cstdio>
#include <string>

#include "src/runtime/engine.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

// System model evaluated each tick from the cache size the guardrails set:
// a bigger cache lowers latency but raises memory pressure.
void UpdateSystem(FeatureStore& store, SimTime now) {
  const double cache_gb = store.LoadOr("cache_gb", Value(4.0)).NumericOr(4.0);
  const double pressure = 0.10 * cache_gb;          // 10 GB -> 1.0 pressure
  const double latency_ms = 12.0 / (cache_gb + 1.0); // bigger cache, lower latency
  store.Save("mem_pressure", Value(pressure));
  store.Save("io_latency_ms", Value(latency_ms));
  store.Observe("cache_gb_series", now, cache_gb);
}

struct RunResult {
  double firings_per_min = 0;
  double cache_min = 0;
  double cache_max = 0;
};

RunResult Run(Duration cooldown, int hysteresis) {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  const std::string meta = "meta: { cooldown = " + std::to_string(cooldown) +
                           ", hysteresis = " + std::to_string(hysteresis) + " }";
  // Thresholds chosen so that satisfying one rule violates the other:
  // pressure <= 0.55 wants cache <= 5.5GB; latency <= 1.7ms wants cache >= ~6GB.
  (void)engine.LoadSource(
      "guardrail shrink-on-pressure {\n"
      "  trigger: { TIMER(1s, 1s) },\n"
      "  rule: { LOAD_OR(mem_pressure, 0) <= 0.55 },\n"
      "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) - 2); INCR(shrinks) },\n" +
      meta +
      "\n}\n"
      "guardrail grow-on-latency {\n"
      "  trigger: { TIMER(1s, 1s) },\n"
      "  rule: { LOAD_OR(io_latency_ms, 0) <= 1.7 },\n"
      "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) + 2); INCR(grows) },\n" +
      meta + "\n}\n");

  const Duration total = Seconds(120);
  double cache_min = 1e9;
  double cache_max = -1e9;
  for (SimTime t = 0; t <= total; t += Milliseconds(500)) {
    UpdateSystem(store, t);
    engine.AdvanceTo(t);
    const double cache_gb = store.LoadOr("cache_gb", Value(4.0)).NumericOr(4.0);
    cache_min = std::min(cache_min, cache_gb);
    cache_max = std::max(cache_max, cache_gb);
  }
  RunResult result;
  const double firings = store.LoadOr("shrinks", Value(0)).NumericOr(0) +
                         store.LoadOr("grows", Value(0)).NumericOr(0);
  result.firings_per_min = firings / (ToSeconds(total) / 60.0);
  result.cache_min = cache_min;
  result.cache_max = cache_max;
  return result;
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E2: feedback loops between interacting guardrails (paper section-6)\n");
  std::printf("%-12s %-12s %16s %12s %12s\n", "cooldown", "hysteresis", "firings_per_min",
              "cache_min", "cache_max");
  struct Config {
    Duration cooldown;
    int hysteresis;
  };
  for (const Config& config :
       {Config{0, 1}, Config{0, 3}, Config{Seconds(5), 1}, Config{Seconds(15), 1},
        Config{Seconds(15), 3}}) {
    const RunResult result = Run(config.cooldown, config.hysteresis);
    std::printf("%-12s %-12d %16.1f %12.1f %12.1f\n",
                FormatDuration(config.cooldown).c_str(), config.hysteresis,
                result.firings_per_min, result.cache_min, result.cache_max);
  }
  std::printf(
      "\n# undamped guardrails oscillate continuously; cooldown + hysteresis cut the\n"
      "# firing rate by an order of magnitude and bound the oscillation amplitude.\n");
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
