// Figure 2 reproduction (paper §5).
//
// Moving average of I/O latencies under LinnOS with and without the
// Listing-2 false-submit guardrail, plus the reactive-failover baseline.
// The workload drifts at t = before_drift (write-heavy, hot-spotted,
// bursty); the guardrail checks every second and disables the model when
// the false-submit rate exceeds 5%.
//
// Expected shape (not absolute numbers): before the drift all three track
// each other closely, with LinnOS at or below baseline; after the drift
// LinnOS-without-guardrails degrades and stays degraded, while
// LinnOS-with-guardrails recovers to the baseline within ~1 check interval
// of the trigger.

#include <cstdio>
#include <string>

#include "src/linnos/harness.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

int Main(int argc, char** argv) {
  Logger::Global().set_level(LogLevel::kOff);
  Figure2Options options;
  // Keep the default run laptop-fast; pass --long for a 40s trace.
  if (argc > 1 && std::string(argv[1]) == "--long") {
    options.before_drift = Seconds(20);
    options.after_drift = Seconds(20);
  } else {
    options.before_drift = Seconds(10);
    options.after_drift = Seconds(10);
  }

  auto result = RunFigure2Experiment(options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const Figure2Result& r = result.value();

  std::printf("# Figure 2: moving average of I/O latencies (us)\n");
  std::printf("# drift at t=%.1fs; classifier on pre-drift holdout: %s\n", r.drift_time_s,
              r.model_quality_before.ToString().c_str());
  std::printf("%-8s %-14s %-14s %-14s\n", "time_s", "linnos", "linnos+guard", "baseline");
  for (size_t i = 0; i < r.without_guardrail.series.size(); ++i) {
    std::printf("%-8.2f %-14.1f %-14.1f %-14.1f\n", r.without_guardrail.series[i].time_s,
                r.without_guardrail.series[i].mean_latency_us,
                r.with_guardrail.series[i].mean_latency_us,
                r.baseline.series[i].mean_latency_us);
  }

  std::printf("\n# summary\n");
  auto summarize = [](const char* name, const LinnosRunResult& run) {
    std::printf(
        "%-14s mean_before=%.1fus mean_after=%.1fus ios=%llu false_submits=%llu "
        "redirects=%llu revokes=%llu\n",
        name, run.mean_latency_us_before, run.mean_latency_us_after,
        static_cast<unsigned long long>(run.blk.total_ios),
        static_cast<unsigned long long>(run.blk.false_submits),
        static_cast<unsigned long long>(run.blk.redirects),
        static_cast<unsigned long long>(run.blk.revokes));
  };
  summarize("linnos", r.without_guardrail);
  summarize("linnos+guard", r.with_guardrail);
  summarize("baseline", r.baseline);
  if (r.with_guardrail.guardrail_fired) {
    std::printf("guardrail 'low-false-submit' tripped at t=%.2fs (ml_enabled_at_end=%s)\n",
                r.with_guardrail.trigger_time_s,
                r.with_guardrail.ml_enabled_at_end ? "true" : "false");
  } else {
    std::printf("guardrail never fired\n");
  }
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
