// Extension 10: multi-core scaling of the sharded guardrail engine.
//
// Three studies over a hot FUNCTION callout, always validated against the
// serial engine's bytes (store slots + report ring + engine image):
//   1. Shard-width sweep at 64 monitors: throughput and speedup vs the
//      serial oracle for 1..8 worker threads (capped by the host), plus the
//      scheduling telemetry (batches, merge cost, ring high-water marks).
//   2. Monitor-count sweep (16 / 64 / 256) at the host's natural width: how
//      the per-callout batch size moves the parallel payoff.
//   3. Eligibility mix: a spec where a quarter of the monitors are
//      serial-classified (their rules read keys the batch's actions write),
//      showing the coordinator interleaving inline evals with batches while
//      still reproducing the serial bytes.
//
// On a single-core host the sweep still runs (the layer is a scheduling
// shim, not a correctness switch); speedups simply hover around 1x.
//
// Usage: ext10_sharded_scaling [--long]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/sharded_engine.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr char kHook[] = "blk_mq_submit_bio_hotpath";

// A dependent integer chain over one loaded key: the program-dominated rule
// shape (all dispatch, no memory traffic) that parallelizes best.
std::string DenseRule(int stages) {
  std::string expr = "LOAD_OR(lat_score, 1)";
  for (int i = 0; i < stages; ++i) {
    expr = "(" + expr + " * 3 + 7)";
  }
  return expr + " != 123456789";
}

// `serial_fraction` of the monitors read a key (lat.trips) that the
// aggregate monitors' actions write, which classifies them serial: they
// evaluate inline on the coordinator at their exact position.
std::string MakeSpec(int monitors, bool with_serial_readers) {
  std::string spec;
  for (int i = 0; i < monitors; ++i) {
    std::string rule;
    std::string action = "REPORT()";
    if (i % 8 == 0) {
      rule = "COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 4000000";
      action = "INCR(lat.trips); REPORT()";
    } else if (with_serial_readers && i % 4 == 1) {
      rule = "LOAD_OR(lat.trips, 0) <= 1000000";
    } else if (i % 8 == 1) {
      rule = "LOAD_OR(trip_level, 0) <= 90";
    } else {
      rule = DenseRule(24);
    }
    spec += "guardrail s" + std::to_string(i) + " { trigger: { FUNCTION(" +
            std::string(kHook) + ") }, rule: { " + rule + " }, action: { " + action +
            " }, meta: { cooldown = 10ms } }\n";
  }
  return spec;
}

struct RunResult {
  double ns = 0.0;
  uint64_t evals = 0;
  std::string state;
  ShardedStats sharded;
  size_t hwm_max = 0;
};

RunResult Drive(const std::string& spec, size_t shards, int calls) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  options.measure_wall_time = false;
  Engine engine(&store, &registry, nullptr, options);
  std::unique_ptr<ShardedEngine> sharded;
  if (shards > 0) {
    ShardingOptions sharding;
    sharding.enabled = true;
    sharding.shards = shards;
    sharding.telemetry = false;  // identity check: no engine.shard.* keys
    sharded = std::make_unique<ShardedEngine>(&engine, sharding);
  }
  RunResult result;
  if (!engine.LoadSource(spec).ok()) {
    return result;
  }
  store.Save("lat_score", Value(static_cast<int64_t>(3)));
  auto callout = [&](int i) {
    const SimTime t = static_cast<SimTime>(i) * Microseconds(25);
    if (i % 16 == 0) {
      store.Observe("io.lat", t, 1.0e6 * static_cast<double>(i % 7 + 1));
    }
    if (i % 64 == 0) {
      store.Save("trip_level", Value(static_cast<int64_t>(i / 64 % 128)));
    }
    if (sharded != nullptr) {
      sharded->OnFunctionCall(kHook, t);
    } else {
      engine.OnFunctionCall(kHook, t);
    }
  };
  constexpr int kWarmup = 256;
  for (int i = 0; i < kWarmup; ++i) {
    callout(i);
  }
  const uint64_t evals_before = engine.stats().evaluations;
  const int64_t start = WallNs();
  for (int i = kWarmup; i < kWarmup + calls; ++i) {
    callout(i);
  }
  result.ns = static_cast<double>(WallNs() - start);
  result.evals = engine.stats().evaluations - evals_before;
  Snapshot snapshot;
  snapshot.store = store.DumpSlots();
  snapshot.report_ring = engine.EncodeReportRing();
  snapshot.image = engine.EncodeImage();
  result.state = EncodeSnapshot(snapshot);
  if (sharded != nullptr) {
    result.sharded = sharded->stats();
    for (size_t i = 0; i < sharded->shard_count(); ++i) {
      result.hwm_max = std::max(result.hwm_max, sharded->RingHighWater(i));
    }
  }
  return result;
}

void PrintRow(const char* label, const RunResult& run, const RunResult& serial,
              int calls) {
  const double secs = run.ns / 1e9;
  std::printf("%-12s %14.0f %14.0f %9.2fx %10llu %10.0f %8llu\n", label,
              calls / secs, static_cast<double>(run.evals) / secs,
              serial.ns / run.ns,
              static_cast<unsigned long long>(run.sharded.batches),
              run.sharded.batches > 0
                  ? static_cast<double>(run.sharded.merge_ns) /
                        static_cast<double>(run.sharded.batches)
                  : 0.0,
              static_cast<unsigned long long>(run.hwm_max));
}

int Main(int argc, char** argv) {
  Logger::Global().set_level(LogLevel::kOff);
  const bool long_run = argc > 1 && std::string(argv[1]) == "--long";
  const int calls = long_run ? 100000 : 10000;
  const unsigned host = std::max(1u, std::thread::hardware_concurrency());

  std::printf("# Extension 10: sharded multi-core guardrail engine (host threads: %u)\n\n",
              host);

  std::printf("## shard-width sweep, 64 monitors, %d callouts\n", calls);
  std::printf("%-12s %14s %14s %10s %10s %10s %8s\n", "engine", "callouts/s", "evals/s",
              "speedup", "batches", "merge_ns", "ring_hwm");
  const std::string spec64 = MakeSpec(64, /*with_serial_readers=*/false);
  const RunResult serial64 = Drive(spec64, 0, calls);
  std::printf("%-12s %14.0f %14.0f %9.2fx %10s %10s %8s\n", "serial",
              calls / (serial64.ns / 1e9),
              static_cast<double>(serial64.evals) / (serial64.ns / 1e9), 1.0, "-", "-",
              "-");
  bool all_identical = true;
  for (size_t width : {1u, 2u, 4u, 8u}) {
    if (width > host * 2 && width > 2) {
      break;  // oversubscribing a small host past 2x tells us nothing
    }
    const RunResult run = Drive(spec64, width, calls);
    const std::string label = "sharded-" + std::to_string(width);
    PrintRow(label.c_str(), run, serial64, calls);
    all_identical = all_identical && run.state == serial64.state;
  }

  std::printf("\n## monitor-count sweep, natural width, %d callouts\n", calls);
  std::printf("%-12s %14s %14s %10s\n", "monitors", "serial ev/s", "sharded ev/s",
              "speedup");
  for (int monitors : {16, 64, 256}) {
    const std::string spec = MakeSpec(monitors, /*with_serial_readers=*/false);
    const int scaled = std::max(1000, calls * 64 / monitors);
    const RunResult serial = Drive(spec, 0, scaled);
    const RunResult shard_run = Drive(spec, host > 1 ? host - 1 : 1, scaled);
    std::printf("%-12d %14.0f %14.0f %9.2fx\n", monitors,
                static_cast<double>(serial.evals) / (serial.ns / 1e9),
                static_cast<double>(shard_run.evals) / (shard_run.ns / 1e9),
                serial.ns / shard_run.ns);
    all_identical = all_identical && shard_run.state == serial.state;
  }

  std::printf("\n## eligibility mix: 1/4 of monitors serial-classified (read action keys)\n");
  const std::string mixed = MakeSpec(64, /*with_serial_readers=*/true);
  const RunResult serial_mixed = Drive(mixed, 0, calls);
  const RunResult shard_mixed = Drive(mixed, host > 1 ? host - 1 : 2, calls);
  std::printf("parallel_evals=%llu serial_evals=%llu serial_callouts=%llu speedup=%.2fx\n",
              static_cast<unsigned long long>(shard_mixed.sharded.parallel_evals),
              static_cast<unsigned long long>(shard_mixed.sharded.serial_evals),
              static_cast<unsigned long long>(shard_mixed.sharded.serial_callouts),
              serial_mixed.ns / shard_mixed.ns);
  all_identical = all_identical && shard_mixed.state == serial_mixed.state;

  std::printf("\n# every sharded configuration %s the serial oracle's bytes\n",
              all_identical ? "reproduced" : "DIVERGED FROM");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
