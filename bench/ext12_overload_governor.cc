// Extension E12: overload governor + self-healing shard workers.
//
// The paper's pitch is guardrails cheap enough to leave always-on; this
// extension measures what happens when the *guardrail plane itself* is the
// thing under attack — a callout storm that would otherwise scale monitor
// cost without bound, and shard workers that stall or die mid-batch:
//
//   (a) storm shedding: evaluation counts and per-callout wall latency
//       (p50/p99) through a calm -> storm -> tail cycle, governed vs
//       ungoverned, plus the ladder depth reached and the shed breakdown;
//   (b) recovery latency: callouts from the end of the storm until the
//       ladder is back at full service, across de-escalation dwell settings;
//   (c) watchdog containment: sharded wall time and healing counters
//       (timeouts, steals, respawns, re-admissions) with worker-death and
//       worker-stall chaos armed, against the same run with the sites off.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/runtime/governor/governor.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/wl/stormgen.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A monitor population wide enough that shedding is visible: one critical
// gate, three standard watches, four best-effort probes.
constexpr char kBenchSpec[] = R"(
  guardrail crit-gate {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.pressure, 0) <= 90 },
    action: { SAVE(ctl.safe_mode, true); REPORT("pressure gate") },
    meta: { severity = critical, criticality = critical }
  }
  guardrail std-a { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.pressure, 0) <= 95 },
                    action: { REPORT("std-a") } }
  guardrail std-b { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.load, 0) <= 900000 },
                    action: { REPORT("std-b") } }
  guardrail std-c { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.load, 0) >= 0 },
                    action: { REPORT("std-c") } }
  guardrail be-a { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.load, 0) <= 1000000 },
                   action: { REPORT("be-a") },
                   meta: { criticality = besteffort } }
  guardrail be-b { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.pressure, 0) <= 99 },
                   action: { REPORT("be-b") },
                   meta: { criticality = besteffort } }
  guardrail be-c { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.load, 0) >= -1 },
                   action: { REPORT("be-c") },
                   meta: { criticality = besteffort } }
  guardrail be-d { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.pressure, 0) >= -1 },
                   action: { REPORT("be-d") },
                   meta: { criticality = besteffort } }
)";

EngineOptions GovernedOptions(bool governed, int dwell_down = 8) {
  EngineOptions options;
  options.measure_wall_time = false;
  options.governor.enabled = governed;
  options.governor.pressure_up = 20000.0;
  options.governor.pressure_down = 2000.0;
  options.governor.dwell_up = 4;
  options.governor.dwell_down = dwell_down;
  options.governor.sample_every = 4;
  options.governor.alpha = 0.3;
  return options;
}

std::vector<StormEvent> BenchStorm(uint64_t seed) {
  StormWorkloadOptions options;
  options.calm = Milliseconds(100);
  options.storm = Milliseconds(50);
  options.tail = Milliseconds(200);
  options.calm_rate = 200.0;
  options.storm_rate = 80000.0;
  return StormGenerator(options, seed).Generate(Milliseconds(1));
}

struct StormRun {
  uint64_t evals = 0;
  uint64_t callouts = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  GovernorStats gov;
  GovernorMode deepest = GovernorMode::kFull;
  GovernorMode final_mode = GovernorMode::kFull;
};

StormRun DriveStorm(bool governed, uint64_t seed) {
  Kernel kernel(GovernedOptions(governed));
  (void)kernel.LoadGuardrails(kBenchSpec);
  std::vector<double> samples;
  StormRun run;
  for (const StormEvent& event : BenchStorm(seed)) {
    kernel.Run(event.at);
    kernel.store().Save("sys.pressure",
                        Value(static_cast<int64_t>(event.storm ? 80 : 10)));
    const int64_t start = WallNs();
    kernel.Callout("hot_path");
    samples.push_back(static_cast<double>(WallNs() - start));
    run.deepest = std::max(run.deepest, kernel.engine().governor().mode());
    ++run.callouts;
  }
  std::sort(samples.begin(), samples.end());
  const size_t last = samples.size() - 1;
  run.p50_ns = samples[last / 2];
  run.p99_ns = samples[static_cast<size_t>(static_cast<double>(last) * 0.99)];
  run.evals = kernel.engine().stats().evaluations;
  run.gov = kernel.engine().governor().stats();
  run.final_mode = kernel.engine().governor().mode();
  return run;
}

// (a) governed vs ungoverned through the same storm.
void StormShedding() {
  std::printf("# (a) storm shedding: calm -> 80k/s storm -> tail, 8 monitors\n");
  std::printf("%-12s %10s %10s %10s %10s %12s %12s\n", "regime", "callouts",
              "evals", "p50_ns", "p99_ns", "sheds", "deepest");
  for (const bool governed : {false, true}) {
    const StormRun run = DriveStorm(governed, 42);
    const uint64_t sheds =
        run.gov.sheds_besteffort + run.gov.sheds_standard + run.gov.static_suppressed;
    std::printf("%-12s %10llu %10llu %10.0f %10.0f %12llu %12s\n",
                governed ? "governed" : "ungoverned",
                static_cast<unsigned long long>(run.callouts),
                static_cast<unsigned long long>(run.evals),
                run.p50_ns, run.p99_ns,
                static_cast<unsigned long long>(sheds),
                std::string(GovernorModeName(run.deepest)).c_str());
  }
  const StormRun governed = DriveStorm(true, 42);
  std::printf(
      "# critical_sheds = %llu (invariant: 0 — the critical gate is never\n"
      "# dropped; in fail-static its corrective default was pinned %llu time(s))\n",
      static_cast<unsigned long long>(governed.gov.critical_sheds),
      static_cast<unsigned long long>(governed.gov.static_applies));
}

// (b) callouts from storm end until the ladder is back at kFull.
void RecoveryLatency() {
  std::printf("\n# (b) recovery: calm callouts to return to full service\n");
  std::printf("%-12s %16s %12s\n", "dwell_down", "recovery_callouts", "final");
  for (const int dwell : {4, 8, 16}) {
    Kernel kernel(GovernedOptions(true, dwell));
    (void)kernel.LoadGuardrails(kBenchSpec);
    // Drive the ladder down with a dense storm burst.
    SimTime t = Milliseconds(1);
    for (int i = 0; i < 200; ++i) {
      kernel.Run(t);
      kernel.Callout("hot_path");
      t += Microseconds(20);
    }
    uint64_t recovery = 0;
    while (kernel.engine().governor().mode() != GovernorMode::kFull &&
           recovery < 1000) {
      t += Milliseconds(10);
      kernel.Run(t);
      kernel.Callout("hot_path");
      ++recovery;
    }
    std::printf("%-12d %16llu %12s\n", dwell,
                static_cast<unsigned long long>(recovery),
                std::string(GovernorModeName(kernel.engine().governor().mode()))
                    .c_str());
  }
}

// Parallel-eligible spec so the sharded engine batches onto workers.
constexpr char kParallelSpec[] = R"(
  guardrail w0 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(a.v, 0) <= 50 },
                 action: { REPORT("w0") } }
  guardrail w1 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(b.v, 0) <= 50 },
                 action: { REPORT("w1") } }
  guardrail w2 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(c.v, 0) <= 50 },
                 action: { REPORT("w2") } }
  guardrail w3 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(d.v, 0) <= 50 },
                 action: { REPORT("w3") } }
)";

// (c) watchdog containment under worker faults.
void WatchdogContainment() {
  std::printf("\n# (c) watchdog: worker faults contained, wall cost of healing\n");
  std::printf("%-22s %10s %9s %8s %9s %9s %10s\n", "regime", "wall_ms",
              "timeouts", "stolen", "respawns", "readmits", "quarantine");
  struct Regime {
    const char* label;
    const char* chaos;
  };
  const Regime regimes[] = {
      {"no faults", nullptr},
      {"worker death p=0.2",
       "chaos { site shard.worker_die { mode = bernoulli, p = 0.2 } }"},
      {"worker stall p=0.2",
       "chaos { site shard.worker_stall { mode = bernoulli, p = 0.2, value = 1.0 } }"},
  };
  for (const Regime& regime : regimes) {
    EngineOptions options;
    options.measure_wall_time = false;
    ShardingOptions sharding;
    sharding.enabled = true;
    sharding.shards = 2;
    sharding.telemetry = false;
    sharding.watchdog_ns = Milliseconds(2);
    sharding.probe_batches = 2;
    sharding.probe_every = 2;
    Kernel kernel(options, sharding);
    ChaosEngine chaos(4242);
    if (regime.chaos != nullptr) {
      kernel.AttachChaos(&chaos);
    }
    (void)kernel.LoadGuardrails(kParallelSpec);
    if (regime.chaos != nullptr) {
      (void)kernel.LoadGuardrails(regime.chaos);
    }
    const int64_t start = WallNs();
    SimTime t = Milliseconds(1);
    for (int i = 0; i < 60; ++i) {
      kernel.Run(t);
      kernel.store().Save("a.v", Value(int64_t{i % 80}));
      kernel.Callout("f");
      t += Milliseconds(1);
    }
    const double wall_ms = static_cast<double>(WallNs() - start) / 1e6;
    const ShardedStats stats = kernel.sharded_engine()->stats();
    std::printf("%-22s %10.1f %9llu %8llu %9llu %9llu %10llu\n", regime.label,
                wall_ms,
                static_cast<unsigned long long>(stats.watchdog_timeouts),
                static_cast<unsigned long long>(stats.stolen_evals),
                static_cast<unsigned long long>(stats.worker_respawns),
                static_cast<unsigned long long>(stats.readmissions),
                static_cast<unsigned long long>(stats.quarantine_evals));
  }
  std::printf(
      "# every regime's snapshot stays byte-identical to the serial oracle —\n"
      "# pinned by tests/governor_test.cc and the governor_diff_test campaign.\n");
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E12: overload governor + self-healing shard workers\n");
  StormShedding();
  RecoveryLatency();
  WatchdogContainment();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
