// Extension E4: feature-store microbenchmarks (google-benchmark).
//
// The store (§4.3) is on every monitor's path and on every instrumented
// kernel site's path; these benches bound its costs: scalar SAVE/LOAD,
// counter increments, time-series Observe, and windowed aggregation as a
// function of window population.

#include <benchmark/benchmark.h>

#include "src/store/feature_store.h"

namespace osguard {
namespace {

void BM_SaveScalar(benchmark::State& state) {
  FeatureStore store;
  int64_t i = 0;
  for (auto _ : state) {
    store.Save("key", Value(i++));
  }
}
BENCHMARK(BM_SaveScalar);

void BM_LoadScalar(benchmark::State& state) {
  FeatureStore store;
  store.Save("key", Value(42));
  for (auto _ : state) {
    auto value = store.Load("key");
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_LoadScalar);

void BM_LoadScalarAmongMany(benchmark::State& state) {
  FeatureStore store;
  const int64_t keys = state.range(0);
  for (int64_t i = 0; i < keys; ++i) {
    store.Save("key" + std::to_string(i), Value(i));
  }
  for (auto _ : state) {
    auto value = store.Load("key" + std::to_string(keys / 2));
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel(std::to_string(keys) + " keys");
}
BENCHMARK(BM_LoadScalarAmongMany)->Arg(16)->Arg(256)->Arg(4096);

void BM_Increment(benchmark::State& state) {
  FeatureStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Increment("counter"));
  }
}
BENCHMARK(BM_Increment);

void BM_Observe(benchmark::State& state) {
  FeatureStore store;
  // Bounded retention so the series doesn't grow during the run.
  store.SetSeriesOptions("series", SeriesOptions{.max_samples = 4096, .max_age = Seconds(10)});
  SimTime t = 0;
  for (auto _ : state) {
    store.Observe("series", t, 1.0);
    t += Microseconds(10);
  }
}
BENCHMARK(BM_Observe);

void BM_AggregateMean(benchmark::State& state) {
  FeatureStore store;
  const int64_t samples = state.range(0);
  store.SetSeriesOptions("series",
                         SeriesOptions{.max_samples = 1 << 20, .max_age = Seconds(3600)});
  for (int64_t i = 0; i < samples; ++i) {
    store.Observe("series", Milliseconds(i), 42.0);
  }
  const SimTime now = Milliseconds(samples);
  for (auto _ : state) {
    auto value = store.Aggregate("series", AggKind::kMean, Seconds(3600), now);
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel(std::to_string(samples) + " samples");
}
BENCHMARK(BM_AggregateMean)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AggregateQuantile(benchmark::State& state) {
  FeatureStore store;
  const int64_t samples = state.range(0);
  store.SetSeriesOptions("series",
                         SeriesOptions{.max_samples = 1 << 20, .max_age = Seconds(3600)});
  for (int64_t i = 0; i < samples; ++i) {
    store.Observe("series", Milliseconds(i), static_cast<double>(i % 997));
  }
  const SimTime now = Milliseconds(samples);
  for (auto _ : state) {
    auto value = store.AggregateQuantile("series", 0.99, Seconds(3600), now);
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel(std::to_string(samples) + " samples");
}
BENCHMARK(BM_AggregateQuantile)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WindowNarrowerThanSeries(benchmark::State& state) {
  // Aggregating a 1s window over a series retaining 5 minutes: cost is
  // proportional to retained samples scanned, the honest worst case.
  FeatureStore store;
  for (int64_t i = 0; i < 100000; ++i) {
    store.Observe("series", Milliseconds(i * 3), 1.0);
  }
  const SimTime now = Milliseconds(300000);
  for (auto _ : state) {
    auto value = store.Aggregate("series", AggKind::kMean, Seconds(1), now);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_WindowNarrowerThanSeries);

}  // namespace
}  // namespace osguard

BENCHMARK_MAIN();
