// Extension E14: bounded-memory store under million-session churn.
//
// The agent domain mints a key family per session (agent.s<id>.*), so a
// steady arrival of short-lived sessions is the cardinality workload that
// made the intern-only store unbounded. These benches drive that churn
// through a retention-governed kernel and measure the three quantities the
// docs/STORE.md design cares about:
//
//   BM_SessionChurn        — end-to-end cost per tool call with session-end
//                            eager reclamation on, with live-key count and
//                            approx store bytes reported as counters (the
//                            boundedness signal; compare against the
//                            retention-off label to see the leak).
//   BM_ReclaimThroughput   — raw reclaim+re-intern cycle cost on a bare
//                            store (the mechanism's ceiling).
//   BM_GovernorBytesGate   — the governor's store-bytes pressure input:
//                            callout cost while bytes are above the ladder's
//                            escalation threshold vs. comfortably below.
//
// The aggregate-gated version of this experiment (bounded steady state,
// zero stale-generation misreads, p99-vs-baseline) lives in
// `benchjson --store` and emits BENCH_store.json in release CI.

#include <benchmark/benchmark.h>

#include <string>

#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"
#include "src/wl/sessiongen.h"

namespace osguard {
namespace {

constexpr char kRetentionSpec[] = R"(
  retention {
    scan_chunk = 256
    namespace "agent.s" { max_keys = 50000, idle_ttl = 5s }
  }
)";

SessionWorkloadOptions ChurnOptions() {
  SessionWorkloadOptions options;
  options.duration = Seconds(2);
  options.sessions_per_sec = 2000.0;
  options.mean_bursts = 1.0;
  options.burst_scale = 1.0;
  options.burst_shape = 3.0;  // light tail: ~1-2 calls per session
  options.max_burst_calls = 8;
  return options;
}

// Delivers one churn wave (calls + session-end markers merged by time) with
// session ids offset so successive waves model *new* sessions, not repeats.
void DriveWave(Kernel& kernel, const SessionChurnTrace& trace, uint64_t id_offset,
               SimTime time_offset) {
  size_t end_cursor = 0;
  for (const agent::ToolCallEvent& call : trace.calls) {
    while (end_cursor < trace.ends.size() &&
           trace.ends[end_cursor].at <= call.at) {
      kernel.OnSessionEnd(trace.ends[end_cursor].session + id_offset);
      ++end_cursor;
    }
    agent::ToolCallEvent ev = call;
    ev.at += time_offset;
    ev.session += id_offset;
    kernel.Run(ev.at);
    kernel.OnToolCall(ev);
  }
  for (; end_cursor < trace.ends.size(); ++end_cursor) {
    kernel.OnSessionEnd(trace.ends[end_cursor].session + id_offset);
  }
}

void BM_SessionChurn(benchmark::State& state) {
  const bool retention = state.range(0) != 0;
  Kernel kernel;
  if (retention) {
    (void)kernel.LoadGuardrails(kRetentionSpec);
  }
  const SessionChurnTrace trace =
      SessionCallGenerator(ChurnOptions(), 0xE14).GenerateChurn();
  uint64_t wave = 0;
  uint64_t calls = 0;
  for (auto _ : state) {
    DriveWave(kernel, trace, wave * 10'000'000ull,
              static_cast<SimTime>(wave) * Seconds(3));
    ++wave;
    calls += trace.calls.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(calls));
  state.counters["live_keys"] =
      static_cast<double>(kernel.store().live_key_count());
  state.counters["store_bytes"] =
      static_cast<double>(kernel.store().approx_bytes());
  state.counters["stale_hits"] = static_cast<double>(kernel.store().stale_hits());
  state.SetLabel(retention ? "retention-on" : "retention-off");
}
BENCHMARK(BM_SessionChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ReclaimThroughput(benchmark::State& state) {
  FeatureStore store;
  uint64_t n = 0;
  for (auto _ : state) {
    const std::string key = "churn.k" + std::to_string(n % 1024);
    store.Save(key, Value(static_cast<int64_t>(n)));
    benchmark::DoNotOptimize(store.ReclaimKey(key));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  state.counters["slots"] = static_cast<double>(store.key_count());
}
BENCHMARK(BM_ReclaimThroughput);

void BM_GovernorBytesGate(benchmark::State& state) {
  const bool pressured = state.range(0) != 0;
  EngineOptions options;
  options.measure_wall_time = false;
  options.governor.enabled = true;
  // Bytes-only ladder: the cost/queue signals are left effectively infinite
  // so any escalation observed here is driven by the store-bytes input.
  options.governor.pressure_up = 1e18;
  options.governor.pressure_down = 1e17;
  options.governor.store_bytes_up = 64 * 1024.0;
  options.governor.store_bytes_down = 32 * 1024.0;
  options.governor.dwell_up = 2;
  options.governor.dwell_down = 4;
  Kernel kernel(options);
  (void)kernel.LoadGuardrails(R"(
    guardrail be { trigger: { FUNCTION(f) },
                   rule: { LOAD_OR(x.v, 0) >= 0 },
                   action: { REPORT("be") },
                   meta: { criticality = besteffort } }
  )");
  if (pressured) {
    // Park ~1MiB of string payload in the store so bytes_ewma settles far
    // above the escalation threshold.
    for (int i = 0; i < 1024; ++i) {
      kernel.store().Save("ballast.k" + std::to_string(i),
                          Value(std::string(1024, 'x')));
    }
  }
  SimTime t = Milliseconds(1);
  for (auto _ : state) {
    kernel.Run(t);
    kernel.Callout("f");
    t += Microseconds(100);
  }
  state.counters["mode"] =
      static_cast<double>(kernel.engine().governor().mode());
  state.counters["bytes_ewma"] = kernel.engine().governor().bytes_ewma();
  state.SetLabel(pressured ? "bytes-pressured" : "bytes-idle");
}
BENCHMARK(BM_GovernorBytesGate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace osguard

BENCHMARK_MAIN();
