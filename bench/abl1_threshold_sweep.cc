// Ablation A1: how tight should the Listing-2 rule be?
//
// Sweeps the false-submit-rate threshold of the Figure-2 guardrail.
// A threshold that is too tight fires on pre-drift noise (disabling a model
// that is behaving — the "held to stricter standards" trap of §2); too loose
// and the system eats degraded latency for longer or forever. The sweep
// reports, per threshold: whether the guardrail ever fired pre-drift
// (false alarm), the trigger delay after the drift, and the post-drift mean
// latency.

#include <cstdio>
#include <string>

#include "src/linnos/harness.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

std::string GuardrailWithThreshold(double threshold) {
  return "guardrail low-false-submit {\n"
         "  trigger: { TIMER(1s, 1s) },\n"
         "  rule: { LOAD_OR(false_submit_rate, 0) <= " +
         std::to_string(threshold) +
         " },\n"
         "  action: { SAVE(blk.ml_enabled, false); REPORT(\"tripped\") }\n}\n";
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  Figure2Options options;
  options.before_drift = Seconds(10);
  options.after_drift = Seconds(10);

  // Train once; reuse the model across thresholds (same trace, same model,
  // only the guardrail differs).
  TrainingRunOptions training;
  training.device = options.device;
  training.blk = options.blk;
  training.trace_seed = options.trace_seed + 1000;
  training.duration = Seconds(10);
  training.arrivals_per_sec = options.arrivals_per_sec;
  IoPhase phase;
  phase.write_fraction = 0.05;
  phase.zipf_skew = 0.6;
  auto model = TrainLinnosModel(phase, training, options.model);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  std::printf("# A1: Listing-2 threshold sweep (drift at t=%.0fs)\n",
              ToSeconds(options.before_drift));
  std::printf("%-10s %-12s %-14s %-16s %-16s\n", "threshold", "fired", "trigger_t_s",
              "pre_alarm", "post_mean_us");
  for (double threshold : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    auto run =
        RunLinnosConfiguration(options, model.value(), GuardrailWithThreshold(threshold));
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const bool pre_alarm =
        run->guardrail_fired && run->trigger_time_s < ToSeconds(options.before_drift);
    std::printf("%-10.3f %-12s %-14.1f %-16s %-16.1f\n", threshold,
                run->guardrail_fired ? "yes" : "no", run->trigger_time_s,
                pre_alarm ? "FALSE-ALARM" : "-", run->mean_latency_us_after);
  }
  std::printf(
      "\n# tight thresholds fire on pre-drift noise (disabling a healthy model);\n"
      "# loose ones never fire and leave the post-drift degradation in place.\n");
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int, char**) { return osguard::Main(); }
