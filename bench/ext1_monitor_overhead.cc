// Extension E1: monitor overhead vs. trigger frequency and guardrail count.
//
// The paper's third adoption concern (§1) is that running monitors costs
// real cycles. This bench sweeps (a) TIMER interval at fixed guardrail
// count, and (b) guardrail count at fixed interval, and reports host-CPU
// nanoseconds consumed by monitor evaluation per simulated second — the
// budget a kernel deployment would pay. It also measures the per-call cost
// of FUNCTION triggers on a hot path.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/runtime/engine.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string MakeGuardrail(int index, Duration interval) {
  return "guardrail g" + std::to_string(index) +
         " {\n"
         "  trigger: { TIMER(" +
         std::to_string(interval) + ", " + std::to_string(interval) +
         ") },\n"
         "  rule: { COUNT(metric" +
         std::to_string(index) + ", 10s) == 0 || MEAN(metric" + std::to_string(index) +
         ", 10s) <= 100 },\n"
         "  action: { REPORT() }\n"
         "}\n";
}

void SweepInterval() {
  std::printf("# (a) one guardrail, TIMER interval sweep, 60 simulated seconds\n");
  std::printf("%-12s %12s %16s %18s\n", "interval", "evals", "wall_ns_total",
              "wall_ns_per_simsec");
  for (Duration interval : {Seconds(1), Milliseconds(100), Milliseconds(10),
                            Milliseconds(1)}) {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    (void)engine.LoadSource(MakeGuardrail(0, interval));
    for (int i = 0; i < 1000; ++i) {
      store.Observe("metric0", Milliseconds(i * 60), 50.0);
    }
    const int64_t start = WallNs();
    engine.AdvanceTo(Seconds(60));
    const int64_t elapsed = WallNs() - start;
    std::printf("%-12s %12llu %16lld %18lld\n", FormatDuration(interval).c_str(),
                static_cast<unsigned long long>(engine.stats().evaluations),
                static_cast<long long>(elapsed), static_cast<long long>(elapsed / 60));
  }
}

void SweepCount() {
  std::printf("\n# (b) guardrail count sweep at 100ms interval, 60 simulated seconds\n");
  std::printf("%-10s %12s %16s %18s %14s\n", "guardrails", "evals", "wall_ns_total",
              "wall_ns_per_simsec", "ns_per_eval");
  for (int count : {1, 4, 16, 64, 256}) {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    std::string spec;
    for (int i = 0; i < count; ++i) {
      spec += MakeGuardrail(i, Milliseconds(100));
    }
    (void)engine.LoadSource(spec);
    for (int i = 0; i < count; ++i) {
      store.Observe("metric" + std::to_string(i), 0, 50.0);
    }
    const int64_t start = WallNs();
    engine.AdvanceTo(Seconds(60));
    const int64_t elapsed = WallNs() - start;
    const uint64_t evals = engine.stats().evaluations;
    std::printf("%-10d %12llu %16lld %18lld %14lld\n", count,
                static_cast<unsigned long long>(evals), static_cast<long long>(elapsed),
                static_cast<long long>(elapsed / 60),
                static_cast<long long>(evals ? elapsed / static_cast<int64_t>(evals) : 0));
  }
}

void FunctionTriggerCost() {
  std::printf("\n# (c) FUNCTION trigger on a hot path (1M callouts)\n");
  for (int hooked : {0, 1, 4}) {
    FeatureStore store;
    PolicyRegistry registry;
    EngineOptions options;
    options.measure_wall_time = false;  // measure end to end, not per eval
    Engine engine(&store, &registry, nullptr, options);
    std::string spec;
    for (int i = 0; i < hooked; ++i) {
      spec += "guardrail f" + std::to_string(i) +
              " { trigger: { FUNCTION(hot_fn) }, rule: { LOAD_OR(x, 0) <= 1 }, "
              "action: { REPORT() } }\n";
    }
    if (!spec.empty()) {
      (void)engine.LoadSource(spec);
    }
    constexpr int kCalls = 1000000;
    const int64_t start = WallNs();
    for (int i = 0; i < kCalls; ++i) {
      engine.OnFunctionCall("hot_fn", i);
    }
    const int64_t elapsed = WallNs() - start;
    std::printf("hooked_monitors=%d ns_per_callout=%lld\n", hooked,
                static_cast<long long>(elapsed / kCalls));
  }
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E1: monitor overhead (P5's concern, measured)\n");
  SweepInterval();
  SweepCount();
  FunctionTriggerCost();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
