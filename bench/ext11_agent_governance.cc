// Extension E11: tool-call governance for simulated AI-agent sessions.
//
// The paper's guardrail machinery was built for OS policies (I/O, paging,
// scheduling); this extension points the same engine at a different kind of
// learned component — an agent emitting tool calls — and measures what
// governance costs and how fast it contains misbehavior:
//
//   (a) per-tool-call admission overhead: OnToolCall with no guardrails,
//       with the shipped governance specs, and on a rejected (killed)
//       session where admission short-circuits before publication;
//   (b) calls-to-containment on the scripted incident trace: how many calls
//       each misbehaving session gets before its family's corrective action
//       latches (throttle / deny / kill);
//   (c) sustained governed throughput under a bursty multi-session storm
//       (thousands of concurrent sessions, heavy-tailed burst lengths).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <memory>
#include <string>
#include <vector>

#include "src/actions/agent_control.h"
#include "src/agent/harness.h"
#include "src/sim/agent_callout.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/wl/sessiongen.h"

#ifndef OSGUARD_SPECS_DIR
#define OSGUARD_SPECS_DIR "specs"
#endif

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string GovernanceSpec() {
  std::ifstream in(std::string(OSGUARD_SPECS_DIR) + "/agent_governance.osg");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::unique_ptr<Kernel> MakeKernel(const std::string& spec) {
  EngineOptions options;
  options.measure_wall_time = false;
  auto kernel = std::make_unique<Kernel>(options);
  if (!spec.empty()) {
    (void)kernel->LoadGuardrails(spec);
  }
  return kernel;
}

// (a) ns per OnToolCall across admission regimes.
void AdmissionOverhead() {
  std::printf("# (a) admission overhead per tool call (steady state)\n");
  std::printf("%-26s %10s %10s %10s\n", "regime", "p50_ns", "p99_ns", "calls");

  SessionWorkloadOptions options;
  options.duration = Seconds(2);
  options.sessions_per_sec = 120.0;
  const agent::Harness harness(options, 11);

  struct Regime {
    const char* label;
    bool governed;
    bool killed;  // pre-latch a kill so every call takes the reject path
  };
  for (const Regime& regime : {Regime{"ungoverned", false, false},
                               Regime{"governed", true, false},
                               Regime{"governed, killed session", true, true}}) {
    auto kernel = MakeKernel(regime.governed ? GovernanceSpec() : std::string());
    std::vector<double> samples;
    samples.reserve(harness.events().size());
    for (agent::ToolCallEvent ev : harness.events()) {
      if (regime.killed) {
        // Collapse every event onto one pre-killed session: measures the
        // admission short-circuit, not publication.
        ev.session = 7;
      }
      kernel->Run(ev.at);
      if (regime.killed && !kernel->store().Contains(AgentSessionKey(7, "killed"))) {
        kernel->store().Save(AgentSessionKey(7, "killed"), Value(true));
      }
      const int64_t start = WallNs();
      (void)kernel->OnToolCall(ev);
      samples.push_back(static_cast<double>(WallNs() - start));
    }
    std::sort(samples.begin(), samples.end());
    const size_t last = samples.size() - 1;
    std::printf("%-26s %10.0f %10.0f %10zu\n", regime.label, samples[last / 2],
                samples[static_cast<size_t>(static_cast<double>(last) * 0.99)],
                samples.size());
  }
}

// (b) calls-to-containment on the scripted incident.
void CallsToContainment() {
  std::printf("\n# (b) calls-to-containment on the scripted incident trace\n");
  std::printf("%-22s %-10s %22s\n", "family", "action", "offender_calls_admitted");

  auto kernel = MakeKernel(GovernanceSpec());
  uint64_t admitted[5] = {0, 0, 0, 0, 0};  // sessions 1..4 (index 0 unused)
  for (const agent::ToolCallEvent& ev : agent::MakeIncidentTrace()) {
    kernel->Run(ev.at);
    const AgentAdmitVerdict verdict = kernel->OnToolCall(ev);
    if (verdict == AgentAdmitVerdict::kAllow && ev.session <= 4) {
      ++admitted[ev.session];
    }
  }
  std::printf("%-22s %-10s %22llu\n", "session-rate (flood)", "throttle",
              static_cast<unsigned long long>(admitted[2]));
  std::printf("%-22s %-10s %22llu\n", "exec-allowlist", "deny",
              static_cast<unsigned long long>(admitted[3]));
  std::printf("%-22s %-10s %22llu\n", "secret-flow (seq)", "kill",
              static_cast<unsigned long long>(admitted[4]));
  std::printf(
      "# the exfiltrating session gets exactly 2 admitted calls: the secret\n"
      "# read and the first send — the ONCHANGE kill lands inside that send's\n"
      "# callout, so no second send ever reaches the network.\n");
}

// (c) governed throughput under a multi-thousand-session storm.
void StormThroughput() {
  std::printf("\n# (c) sustained governed throughput, bursty session storm\n");
  std::printf("%-14s %10s %12s %14s %12s\n", "sessions/s", "sessions", "events",
              "events_per_s", "rejected");
  for (const double rate : {500.0, 2000.0, 4000.0}) {
    SessionWorkloadOptions options;
    options.duration = Seconds(2);
    options.sessions_per_sec = rate;
    options.mean_bursts = 2.0;
    const agent::Harness harness(options, 23);
    uint64_t max_session = 0;
    for (const agent::ToolCallEvent& ev : harness.events()) {
      max_session = std::max(max_session, ev.session);
    }
    auto kernel = MakeKernel(GovernanceSpec());
    const int64_t start = WallNs();
    const agent::DriveResult result = harness.Drive(*kernel);
    const double elapsed_s =
        std::max(static_cast<double>(WallNs() - start) / 1e9, 1e-9);
    std::printf("%-14.0f %10llu %12llu %14.0f %12llu\n", rate,
                static_cast<unsigned long long>(max_session),
                static_cast<unsigned long long>(result.delivered),
                static_cast<double>(result.delivered) / elapsed_s,
                static_cast<unsigned long long>(result.delivered - result.allowed));
  }
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E11: tool-call governance (osguard::agent)\n");
  AdmissionOverhead();
  CallsToContainment();
  StormThroughput();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
