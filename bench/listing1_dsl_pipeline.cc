// Listing 1/2 pipeline microbenchmarks (google-benchmark).
//
// Measures each stage of the guardrail compilation pipeline — lex, parse,
// analyze, compile+verify — plus the runtime cost of one compiled rule
// evaluation. This is the "synthesize efficient guardrail monitors" cost
// model: compilation is control-plane (once per load), evaluation is
// data-plane (every trigger firing).

#include <benchmark/benchmark.h>

#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/helper_env.h"
#include "src/vm/compiler.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

const char* kListing2 = R"(
  guardrail low-false-submit {
    trigger: { TIMER(1s, 1e9) },
    rule: { LOAD_OR(false_submit_rate, 0) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
  }
)";

const char* kComplexSpec = R"(
  guardrail complex {
    trigger: { TIMER(500ms, 250ms, 60s), FUNCTION(blk_submit_io) },
    rule: {
      COUNT(io_lat, 10s) == 0 || MEAN(io_lat, 10s) <= 2ms && P99(io_lat, 10s) <= 20ms,
      STDDEV(rate_out, 5s) <= 3 * STDDEV(rtt_in, 5s) + 0.000001,
      LOAD_OR(err_rate, 0) <= 0.1
    },
    action: {
      REPORT("complex violated", err_rate, NOW());
      REPLACE(learned_policy, fallback_policy);
      RETRAIN(learned_policy, recent_window);
      DEPRIORITIZE({batch, scan, backup}, {0.5, 0.2, 0.1});
    },
    on_satisfy: { SAVE(ml_enabled, true) },
    meta: { severity = critical, cooldown = 5s, hysteresis = 2 }
  }
)";

void BM_Lex(benchmark::State& state) {
  const std::string source = state.range(0) == 0 ? kListing2 : kComplexSpec;
  for (auto _ : state) {
    Lexer lexer(source);
    auto tokens = lexer.Tokenize();
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex)->Arg(0)->Arg(1);

void BM_Parse(benchmark::State& state) {
  const std::string source = state.range(0) == 0 ? kListing2 : kComplexSpec;
  for (auto _ : state) {
    auto spec = ParseSpecSource(source);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1);

void BM_Analyze(benchmark::State& state) {
  const std::string source = state.range(0) == 0 ? kListing2 : kComplexSpec;
  for (auto _ : state) {
    state.PauseTiming();
    auto spec = ParseSpecSource(source);
    state.ResumeTiming();
    auto analyzed = Analyze(std::move(spec).value());
    benchmark::DoNotOptimize(analyzed);
  }
}
BENCHMARK(BM_Analyze)->Arg(0)->Arg(1);

void BM_CompileAndVerify(benchmark::State& state) {
  const std::string source = state.range(0) == 0 ? kListing2 : kComplexSpec;
  auto analyzed = Analyze(std::move(ParseSpecSource(source)).value());
  for (auto _ : state) {
    auto compiled = CompileSpec(analyzed.value());
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileAndVerify)->Arg(0)->Arg(1);

void BM_FullPipeline(benchmark::State& state) {
  const std::string source = state.range(0) == 0 ? kListing2 : kComplexSpec;
  for (auto _ : state) {
    auto compiled = CompileSource(source);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

// Data-plane: executing the compiled Listing-2 rule program once.
void BM_RuleEvaluation(benchmark::State& state) {
  auto compiled = CompileSource(kListing2);
  FeatureStore store;
  store.Save("false_submit_rate", Value(0.01));
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"bench", Severity::kInfo, 0});
  Vm vm;
  for (auto _ : state) {
    auto result = vm.Execute(compiled.value()[0].rule, env);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RuleEvaluation);

// Data-plane with a windowed aggregate over a populated series (the common
// shape for behavioral properties).
void BM_AggregateRuleEvaluation(benchmark::State& state) {
  auto expr = ParseExprSource("MEAN(io_lat, 10s) <= 2000");
  auto program = CompileExpr(*expr.value(), "agg");
  FeatureStore store;
  const int64_t samples = state.range(0);
  for (int64_t i = 0; i < samples; ++i) {
    store.Observe("io_lat", Milliseconds(i), 120.0);
  }
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"bench", Severity::kInfo, Milliseconds(samples)});
  Vm vm;
  for (auto _ : state) {
    auto result = vm.Execute(program.value(), env);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(samples) + " samples in window");
}
BENCHMARK(BM_AggregateRuleEvaluation)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace osguard

BENCHMARK_MAIN();
