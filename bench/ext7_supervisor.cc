// Extension 7: the guardrail supervisor under oscillation, fault storms,
// and staged deployment.
//
// Four scenarios:
//   1. The E2 oscillating guardrail pair (shrink-on-pressure vs.
//      grow-on-latency), undamped, with and without supervision: the flap
//      detector quarantines the oscillators and the trip rate collapses,
//      without touching the cooldown/hysteresis knobs E2 sweeps.
//   2. An ext6-style storm: a chaos burst plan on vm.budget_exhaust (8% duty
//      cycle) aborts every supervised eval inside the storm windows. The
//      breaker quarantines during each burst and probes its way back to
//      closed between bursts.
//   3. A probation deploy whose new version blows its step budget: the
//      supervisor quarantines it inside the probation window and the engine
//      rolls back to the bit-identical pre-deploy program.
//   4. Supervision overhead: per-eval cost of a supervised-but-untripped
//      monitor vs. the identical unsupervised monitor (batched samples,
//      mean + p99). Target: p99 within 5% of the unsupervised hot path.
//
// Usage: ext7_supervisor [--long]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/runtime/engine.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Scenario 1: the E2 oscillating pair ---

// System model from bench/ext2_feedback_loops.cc: a bigger page cache lowers
// I/O latency but raises memory pressure; the two guardrails fight around
// the crossover point.
void UpdateSystem(FeatureStore& store) {
  const double cache_gb = store.LoadOr("cache_gb", Value(4.0)).NumericOr(4.0);
  store.Save("mem_pressure", Value(0.10 * cache_gb));
  store.Save("io_latency_ms", Value(12.0 / (cache_gb + 1.0)));
}

struct OscillationResult {
  double trips_per_min = 0;
  uint64_t quarantines = 0;
  uint64_t flap_events = 0;
};

OscillationResult RunOscillation(bool supervised, Duration total) {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  // Undamped on purpose: no cooldown, hysteresis 1. E2 shows the damping
  // knobs; the supervisor contains the same loop without them.
  const std::string health =
      supervised ? ",\n  health: { flap_window = 60s, flap_threshold = 4, "
                   "quarantine = 1, probe_every = 10, reinstate = 4 }\n"
                 : "\n";
  (void)engine.LoadSource(
      "guardrail shrink-on-pressure {\n"
      "  trigger: { TIMER(1s, 1s) },\n"
      "  rule: { LOAD_OR(mem_pressure, 0) <= 0.55 },\n"
      "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) - 2); INCR(trips) }" +
      health +
      "}\n"
      "guardrail grow-on-latency {\n"
      "  trigger: { TIMER(1s, 1s) },\n"
      "  rule: { LOAD_OR(io_latency_ms, 0) <= 1.8 },\n"
      "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) + 2); INCR(trips) }" +
      health + "}\n");
  for (SimTime t = 0; t <= total; t += Milliseconds(500)) {
    UpdateSystem(store);
    engine.AdvanceTo(t);
  }
  OscillationResult result;
  result.trips_per_min =
      store.LoadOr("trips", Value(0)).NumericOr(0) / (ToSeconds(total) / 60.0);
  result.quarantines = engine.supervisor().stats().quarantines;
  result.flap_events = engine.supervisor().stats().flap_events;
  return result;
}

// --- Scenario 2: budget-exhaust storm, 8% duty cycle ---

struct StormResult {
  uint64_t budget_aborts = 0;
  uint64_t quarantines = 0;
  uint64_t reinstatements = 0;
  uint64_t skipped = 0;
  uint64_t evaluations = 0;
  bool closed_at_end = false;
};

StormResult RunStorm(Duration total) {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  ChaosEngine chaos(1729);
  engine.SetChaos(&chaos);
  // Inside each 2s burst (every 25s: an 8% duty cycle, like ext6's 8%
  // spike rate) every supervised eval is forced into a budget abort.
  (void)engine.LoadSource(R"(
    guardrail storm-watch {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { REPORT("storm-watch") },
      health: { quarantine = 1, probe_every = 4, reinstate = 1 }
    }
    chaos { site vm.budget_exhaust { mode = burst, period = 25s, burst = 2s } }
  )");
  engine.AdvanceTo(total);
  StormResult result;
  const SupervisorStats& stats = engine.supervisor().stats();
  result.budget_aborts = stats.budget_aborts;
  result.quarantines = stats.quarantines;
  result.reinstatements = stats.reinstatements;
  result.skipped = stats.skipped_evals;
  result.evaluations = engine.stats().evaluations;
  const GuardHealth* guard = engine.supervisor().Find("storm-watch");
  result.closed_at_end = guard != nullptr && guard->state == BreakerState::kClosed;
  return result;
}

// --- Scenario 3: probation deploy + rollback ---

struct ProbationResult {
  uint64_t rollbacks = 0;
  bool restored_bit_identical = false;
  uint64_t evals_after_rollback = 0;
};

ProbationResult RunProbation() {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  (void)engine.LoadSource(R"(
    guardrail deploy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { REPORT("v1") },
      health: { quarantine = 3 }
    }
  )");
  engine.AdvanceTo(Seconds(5));
  const std::string v1 = engine.FindGuardrail("deploy")->rule.Disassemble();
  // v2 cannot finish an eval inside one step: it quarantines in probation
  // and the supervisor rolls the deploy back.
  (void)engine.LoadSource(R"(
    guardrail deploy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 99 },
      action: { REPORT("v2") },
      health: { budget_steps = 1, quarantine = 2, probation = 60s }
    }
  )");
  engine.AdvanceTo(Seconds(10));
  ProbationResult result;
  result.rollbacks = engine.supervisor().stats().rollbacks;
  const CompiledGuardrail* live = engine.FindGuardrail("deploy");
  result.restored_bit_identical = live != nullptr && live->rule.Disassemble() == v1;
  const uint64_t evals_at_rollback = engine.stats().evaluations;
  engine.AdvanceTo(Seconds(20));
  result.evals_after_rollback = engine.stats().evaluations - evals_at_rollback;
  return result;
}

// --- Scenario 4: supervision overhead ---

struct OverheadResult {
  double mean_ns = 0;
  double p99_ns = 0;
};

OverheadResult RunOverhead(bool supervised, int batches) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  options.measure_wall_time = false;
  Engine engine(&store, &registry, nullptr, options);
  const std::string health =
      supervised ? ",\n  health: { budget_steps = 1000000, quarantine = 1000000, "
                   "flap_threshold = 1000000 }\n"
                 : "\n";
  (void)engine.LoadSource(
      "guardrail hot {\n"
      "  trigger: { TIMER(1ms, 1ms) },\n"
      "  rule: { LOAD_OR(x, 0) <= 100 },\n"
      "  action: { REPORT() }" +
      health + "}\n");
  // Warm-up second, then `batches` batches of 1000 evals (1 simulated second
  // at the 1ms timer), each timed on the host clock.
  engine.AdvanceTo(Seconds(1));
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(batches));
  for (int b = 0; b < batches; ++b) {
    const int64_t start = WallNs();
    engine.AdvanceTo(Seconds(2 + b));
    samples.push_back(static_cast<double>(WallNs() - start) / 1000.0);
  }
  OverheadResult result;
  for (const double s : samples) {
    result.mean_ns += s;
  }
  result.mean_ns /= static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  result.p99_ns = samples[static_cast<size_t>(static_cast<double>(samples.size() - 1) * 0.99)];
  return result;
}

int Main(int argc, char** argv) {
  Logger::Global().set_level(LogLevel::kOff);
  const bool long_run = argc > 1 && std::string(argv[1]) == "--long";
  const Duration total = long_run ? Seconds(600) : Seconds(120);
  const int batches = long_run ? 500 : 100;

  std::printf("# Extension 7: guardrail supervisor (budgets, breaker, rollback)\n\n");

  std::printf("## E2 oscillating pair, undamped (cooldown = 0, hysteresis = 1)\n");
  std::printf("%-14s %16s %12s %12s\n", "supervisor", "trips_per_min", "quarantines",
              "flap_events");
  const OscillationResult bare = RunOscillation(false, total);
  const OscillationResult guarded = RunOscillation(true, total);
  std::printf("%-14s %16.1f %12llu %12llu\n", "off", bare.trips_per_min,
              static_cast<unsigned long long>(bare.quarantines),
              static_cast<unsigned long long>(bare.flap_events));
  std::printf("%-14s %16.1f %12llu %12llu\n", "on", guarded.trips_per_min,
              static_cast<unsigned long long>(guarded.quarantines),
              static_cast<unsigned long long>(guarded.flap_events));

  std::printf("\n## vm.budget_exhaust storm (2s bursts every 25s, 8%% duty)\n");
  const StormResult storm = RunStorm(total);
  std::printf("budget_aborts=%llu quarantines=%llu reinstatements=%llu skipped=%llu "
              "evals=%llu breaker_closed_at_end=%s\n",
              static_cast<unsigned long long>(storm.budget_aborts),
              static_cast<unsigned long long>(storm.quarantines),
              static_cast<unsigned long long>(storm.reinstatements),
              static_cast<unsigned long long>(storm.skipped),
              static_cast<unsigned long long>(storm.evaluations),
              storm.closed_at_end ? "yes" : "no");

  std::printf("\n## probation deploy of a budget-blowing v2\n");
  const ProbationResult probation = RunProbation();
  std::printf("rollbacks=%llu restored_bit_identical=%s evals_after_rollback=%llu\n",
              static_cast<unsigned long long>(probation.rollbacks),
              probation.restored_bit_identical ? "yes" : "no",
              static_cast<unsigned long long>(probation.evals_after_rollback));

  std::printf("\n## supervision overhead (untripped health block vs. none)\n");
  const OverheadResult off = RunOverhead(false, batches);
  const OverheadResult on = RunOverhead(true, batches);
  std::printf("%-14s %12s %12s\n", "supervisor", "mean_ns", "p99_ns");
  std::printf("%-14s %12.1f %12.1f\n", "off", off.mean_ns, off.p99_ns);
  std::printf("%-14s %12.1f %12.1f\n", "on", on.mean_ns, on.p99_ns);
  std::printf("overhead: mean %+.1f%%, p99 %+.1f%% (target: p99 within 5%%)\n",
              100.0 * (on.mean_ns - off.mean_ns) / off.mean_ns,
              100.0 * (on.p99_ns - off.p99_ns) / off.p99_ns);

  std::printf("\n# The flap detector contains the E2 loop without retuning damping knobs;\n"
              "# the breaker rides out storms and reinstates itself; a bad deploy rolls\n"
              "# back to the bit-identical pre-deploy program.\n");
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
