// Figure 1 (right table) reproduction: the action API A1-A4, measured.
//
// For each action, demonstrates its semantics end to end through compiled
// guardrails and reports its cost (host wall time per invocation) and its
// protective properties (idempotence for REPLACE, abuse throttling for
// RETRAIN, bounded log volume for REPORT).

#include <chrono>
#include <cstdio>
#include <memory>

#include "src/sim/kernel.h"
#include "src/sim/scheduler.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct NamedPolicy : Policy {
  std::string policy_name;
  bool learned;
  NamedPolicy(std::string n, bool l) : policy_name(std::move(n)), learned(l) {}
  std::string name() const override { return policy_name; }
  bool is_learned() const override { return learned; }
};

void RunReport() {
  Kernel kernel;
  kernel.LoadGuardrails(R"(
    guardrail reporter {
      trigger: { TIMER(100ms, 100ms) },
      rule: { false },
      action: { REPORT("violation context", NOW(), LOAD_OR(some_metric, 0)) }
    }
  )");
  kernel.store().Save("some_metric", Value(0.42));
  const int64_t start = WallNs();
  kernel.Run(Seconds(100));  // 1000 firings
  const int64_t elapsed = WallNs() - start;
  const uint64_t reports = kernel.engine().reporter().CountOfKind(ReportKind::kActionPayload);
  std::printf("A1 REPORT        firings=%llu wall_ns_per_firing=%lld ring_retained=%zu "
              "(bounded at capacity)\n",
              static_cast<unsigned long long>(reports),
              static_cast<long long>(elapsed / static_cast<int64_t>(reports ? reports : 1)),
              kernel.engine().reporter().Records().size());
}

void RunReplace() {
  Kernel kernel;
  (void)kernel.registry().Register(std::make_shared<NamedPolicy>("learned_policy", true));
  (void)kernel.registry().Register(std::make_shared<NamedPolicy>("fallback_policy", false));
  (void)kernel.registry().BindSlot("subsys.decision", "learned_policy");
  kernel.LoadGuardrails(R"(
    guardrail fallback {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(quality, 1) >= 0.5 },
      action: { REPLACE(learned_policy, fallback_policy) }
    }
  )");
  kernel.store().Save("quality", Value(0.1));
  const int64_t start = WallNs();
  kernel.Run(Seconds(10));  // fires 10x; 9 are idempotent no-ops
  const int64_t elapsed = WallNs() - start;
  std::printf(
      "A2 REPLACE       swaps=%llu idempotent_refires=%llu active_now=%s "
      "wall_ns_per_firing=%lld\n",
      static_cast<unsigned long long>(kernel.engine().dispatcher().stats().replaces),
      static_cast<unsigned long long>(kernel.engine().dispatcher().stats().replace_noops),
      kernel.registry().Active("subsys.decision").value()->name().c_str(),
      static_cast<long long>(elapsed / 10));
}

void RunRetrain() {
  EngineOptions options;
  options.retrain.min_interval = Seconds(30);
  Kernel kernel(options);
  kernel.LoadGuardrails(R"(
    guardrail drift {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(drift_score, 0) <= 0.2 },
      action: { RETRAIN(io_model, recent_window) }
    }
  )");
  // A malicious workload keeps the drift score pinned high: the guardrail
  // fires every second for 120s, but the queue throttles to one accepted
  // request per 30s per model.
  kernel.store().Save("drift_score", Value(0.9));
  kernel.Run(Seconds(120));
  const RetrainQueueStats stats = kernel.engine().retrain_queue().stats();
  std::printf(
      "A3 RETRAIN       requests=%llu accepted=%llu throttled=%llu coalesced=%llu "
      "(abuse protection per paper3.2)\n",
      static_cast<unsigned long long>(stats.accepted + stats.throttled + stats.coalesced +
                                      stats.overflowed),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.throttled),
      static_cast<unsigned long long>(stats.coalesced));
}

void RunDeprioritize() {
  Kernel kernel;
  Scheduler scheduler(kernel);
  const TaskId hog = scheduler.AddTask("batch_hog", 8.0);
  const TaskId victim = scheduler.AddTask("interactive", 1.0);
  (void)kernel.registry().Register(std::make_shared<FairPickPolicy>());
  (void)kernel.registry().BindSlot("sched.pick_next", "sched_fair");
  (void)scheduler.SubmitBurst(hog, Seconds(60));
  (void)scheduler.SubmitBurst(victim, Seconds(60));
  kernel.LoadGuardrails(R"(
    guardrail squeeze {
      trigger: { TIMER(2s, 10s) },
      rule: { LOAD_OR(mem_pressure, 0) <= 0.9 },
      action: { DEPRIORITIZE({batch_hog}, {0.1}) }
    }
  )");

  scheduler.PumpFor(Seconds(4));
  kernel.Run(Seconds(2) - Milliseconds(1));
  const Duration hog_cpu_before = scheduler.GetTask(hog).value().total_cpu;
  const Duration victim_cpu_before = scheduler.GetTask(victim).value().total_cpu;
  kernel.store().Save("mem_pressure", Value(0.95));  // pressure spike
  kernel.Run(Seconds(4));
  const Duration hog_delta = scheduler.GetTask(hog).value().total_cpu - hog_cpu_before;
  const Duration victim_delta =
      scheduler.GetTask(victim).value().total_cpu - victim_cpu_before;
  std::printf(
      "A4 DEPRIORITIZE  before: hog/victim cpu share %.0f%%/%.0f%%; after demotion "
      "%.0f%%/%.0f%%\n",
      100.0 * static_cast<double>(hog_cpu_before) /
          static_cast<double>(hog_cpu_before + victim_cpu_before),
      100.0 * static_cast<double>(victim_cpu_before) /
          static_cast<double>(hog_cpu_before + victim_cpu_before),
      100.0 * static_cast<double>(hog_delta) / static_cast<double>(hog_delta + victim_delta),
      100.0 * static_cast<double>(victim_delta) /
          static_cast<double>(hog_delta + victim_delta));
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# Figure 1 (right): action API, measured\n");
  RunReport();
  RunReplace();
  RunRetrain();
  RunDeprioritize();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
