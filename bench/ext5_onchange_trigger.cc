// Extension E5: dependency-driven checking vs. periodic polling (paper §6).
//
// The paper closes by asking whether "trigger-based periodic checking" can
// be improved by "tracking a minimal set of data dependencies, enabling such
// properties to be automatically checked only when relevant system state
// changes". osguard implements that as the ONCHANGE trigger; this bench
// quantifies the trade:
//
//   (a) detection latency: TIMER detects at the next tick (uniform
//       ~interval/2 delay), ONCHANGE detects at the violating write;
//   (b) overhead: TIMER burns checks while the key is quiet, ONCHANGE costs
//       only on writes — but pays on *every* write of a hot key.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/runtime/engine.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/stats.h"

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string TimerSpec(Duration interval) {
  return "guardrail timer-watch {\n"
         "  trigger: { TIMER(" +
         std::to_string(interval) + ", " + std::to_string(interval) +
         ") },\n"
         "  rule: { LOAD_OR(metric, 0) <= 10 },\n"
         "  action: { SAVE(detected_at, LOAD_OR(detected_at, NOW())) }\n}\n";
}

constexpr char kChangeSpec[] = R"(
  guardrail change-watch {
    trigger: { ONCHANGE(metric) },
    rule: { LOAD_OR(metric, 0) <= 10 },
    action: { SAVE(detected_at, LOAD_OR(detected_at, NOW())) }
  }
)";

// Mean detection latency over many runs with violations at random offsets.
void DetectionLatency() {
  std::printf("# (a) detection latency of a violation injected at a random time\n");
  std::printf("%-22s %18s\n", "trigger", "mean_latency_ms");
  Rng rng(1);
  for (const char* mode : {"TIMER(1s)", "TIMER(100ms)", "ONCHANGE"}) {
    StreamingStats latency_ms;
    Rng local = rng;  // same injection times for every mode
    for (int run = 0; run < 200; ++run) {
      FeatureStore store;
      PolicyRegistry registry;
      Engine engine(&store, &registry);
      store.SetWriteObserver(
          [&engine](const StoreWriteInfo& info, const std::string& key) {
        engine.OnStoreWrite(info, key);
      });
      std::string spec;
      if (std::string(mode) == "TIMER(1s)") {
        spec = TimerSpec(Seconds(1));
      } else if (std::string(mode) == "TIMER(100ms)") {
        spec = TimerSpec(Milliseconds(100));
      } else {
        spec = kChangeSpec;
      }
      (void)engine.LoadSource(spec);
      const SimTime inject = Milliseconds(local.UniformInt(0, 10000));
      engine.AdvanceTo(inject);
      store.Save("metric", Value(50));
      engine.AdvanceTo(inject + Seconds(2));
      const double detected = store.LoadOr("detected_at", Value(-1)).NumericOr(-1);
      if (detected >= 0) {
        latency_ms.Add((detected - static_cast<double>(inject)) / kMillisecond);
      }
    }
    std::printf("%-22s %18.2f\n", mode, latency_ms.mean());
  }
}

// Host overhead for quiet vs. hot keys.
void Overhead() {
  std::printf("\n# (b) host overhead, 60 simulated seconds\n");
  std::printf("%-22s %-14s %12s %16s\n", "trigger", "key_writes", "evals",
              "wall_ns_total");
  struct Case {
    const char* label;
    bool onchange;
    Duration interval;
    int writes_per_sec;
  };
  for (const Case& c : {Case{"TIMER(100ms), quiet", false, Milliseconds(100), 0},
                        Case{"ONCHANGE, quiet", true, 0, 0},
                        Case{"TIMER(100ms), hot", false, Milliseconds(100), 10000},
                        Case{"ONCHANGE, hot", true, 0, 10000}}) {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    store.SetWriteObserver(
        [&engine](const StoreWriteInfo& info, const std::string& key) {
        engine.OnStoreWrite(info, key);
      });
    (void)engine.LoadSource(c.onchange ? kChangeSpec : TimerSpec(c.interval));
    store.Save("metric", Value(1));

    const int64_t start = WallNs();
    const int total_writes = c.writes_per_sec * 60;
    SimTime t = 0;
    if (total_writes > 0) {
      const Duration gap = Seconds(60) / total_writes;
      for (int i = 0; i < total_writes; ++i) {
        t += gap;
        engine.AdvanceTo(t);
        store.Save("metric", Value(1));
      }
    }
    engine.AdvanceTo(Seconds(60));
    const int64_t elapsed = WallNs() - start;
    std::printf("%-22s %-14d %12llu %16lld\n", c.label, total_writes,
                static_cast<unsigned long long>(engine.stats().evaluations),
                static_cast<long long>(elapsed));
  }
  std::printf(
      "\n# ONCHANGE wins on both axes for sparse keys (instant detection, zero idle\n"
      "# cost) and loses on evaluation count for hot keys — sample those with TIMER.\n");
}

int Main() {
  Logger::Global().set_level(LogLevel::kOff);
  std::printf("# E5: ONCHANGE (dependency-driven) vs TIMER (periodic) checking\n");
  DetectionLatency();
  Overhead();
  return 0;
}

}  // namespace
}  // namespace osguard

int main() { return osguard::Main(); }
