# Empty dependencies file for substrate2_test.
# This may be replaced when dependencies are built.
