file(REMOVE_RECURSE
  "CMakeFiles/substrate2_test.dir/substrate2_test.cc.o"
  "CMakeFiles/substrate2_test.dir/substrate2_test.cc.o.d"
  "substrate2_test"
  "substrate2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
