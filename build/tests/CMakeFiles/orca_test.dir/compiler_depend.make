# Empty compiler generated dependencies file for orca_test.
# This may be replaced when dependencies are built.
