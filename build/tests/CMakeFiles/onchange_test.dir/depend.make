# Empty dependencies file for onchange_test.
# This may be replaced when dependencies are built.
