file(REMOVE_RECURSE
  "CMakeFiles/onchange_test.dir/onchange_test.cc.o"
  "CMakeFiles/onchange_test.dir/onchange_test.cc.o.d"
  "onchange_test"
  "onchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
