# Empty compiler generated dependencies file for c_backend_test.
# This may be replaced when dependencies are built.
