file(REMOVE_RECURSE
  "CMakeFiles/c_backend_test.dir/c_backend_test.cc.o"
  "CMakeFiles/c_backend_test.dir/c_backend_test.cc.o.d"
  "c_backend_test"
  "c_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
