# Empty compiler generated dependencies file for hugepage_test.
# This may be replaced when dependencies are built.
