# Empty dependencies file for linnos_test.
# This may be replaced when dependencies are built.
