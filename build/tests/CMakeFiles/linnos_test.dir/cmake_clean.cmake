file(REMOVE_RECURSE
  "CMakeFiles/linnos_test.dir/linnos_test.cc.o"
  "CMakeFiles/linnos_test.dir/linnos_test.cc.o.d"
  "linnos_test"
  "linnos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linnos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
