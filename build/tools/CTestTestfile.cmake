# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(osguardc_check_corpus "/root/repo/build/tools/osguardc" "-q" "/root/repo/specs/listing2.osg" "/root/repo/specs/page_fault_latency.osg" "/root/repo/specs/scheduler_liveness.osg")
set_tests_properties(osguardc_check_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(osguardc_rejects_bad_spec "sh" "-c" "echo 'guardrail broken {' | /root/repo/build/tools/osguardc - ; test \$? -eq 1")
set_tests_properties(osguardc_rejects_bad_spec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
