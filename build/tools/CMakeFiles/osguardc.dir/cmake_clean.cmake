file(REMOVE_RECURSE
  "CMakeFiles/osguardc.dir/osguardc.cc.o"
  "CMakeFiles/osguardc.dir/osguardc.cc.o.d"
  "osguardc"
  "osguardc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguardc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
