# Empty compiler generated dependencies file for osguardc.
# This may be replaced when dependencies are built.
