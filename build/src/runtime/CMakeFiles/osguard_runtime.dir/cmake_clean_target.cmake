file(REMOVE_RECURSE
  "libosguard_runtime.a"
)
