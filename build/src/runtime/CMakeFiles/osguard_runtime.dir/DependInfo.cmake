
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/engine.cc" "src/runtime/CMakeFiles/osguard_runtime.dir/engine.cc.o" "gcc" "src/runtime/CMakeFiles/osguard_runtime.dir/engine.cc.o.d"
  "/root/repo/src/runtime/helper_env.cc" "src/runtime/CMakeFiles/osguard_runtime.dir/helper_env.cc.o" "gcc" "src/runtime/CMakeFiles/osguard_runtime.dir/helper_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/actions/CMakeFiles/osguard_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/osguard_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/osguard_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
