# Empty compiler generated dependencies file for osguard_runtime.
# This may be replaced when dependencies are built.
