file(REMOVE_RECURSE
  "CMakeFiles/osguard_runtime.dir/engine.cc.o"
  "CMakeFiles/osguard_runtime.dir/engine.cc.o.d"
  "CMakeFiles/osguard_runtime.dir/helper_env.cc.o"
  "CMakeFiles/osguard_runtime.dir/helper_env.cc.o.d"
  "libosguard_runtime.a"
  "libosguard_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
