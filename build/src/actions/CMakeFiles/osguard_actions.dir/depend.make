# Empty dependencies file for osguard_actions.
# This may be replaced when dependencies are built.
