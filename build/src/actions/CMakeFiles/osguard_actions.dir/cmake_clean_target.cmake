file(REMOVE_RECURSE
  "libosguard_actions.a"
)
