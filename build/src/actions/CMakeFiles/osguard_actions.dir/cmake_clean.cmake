file(REMOVE_RECURSE
  "CMakeFiles/osguard_actions.dir/dispatcher.cc.o"
  "CMakeFiles/osguard_actions.dir/dispatcher.cc.o.d"
  "CMakeFiles/osguard_actions.dir/policy_registry.cc.o"
  "CMakeFiles/osguard_actions.dir/policy_registry.cc.o.d"
  "CMakeFiles/osguard_actions.dir/report.cc.o"
  "CMakeFiles/osguard_actions.dir/report.cc.o.d"
  "CMakeFiles/osguard_actions.dir/retrain.cc.o"
  "CMakeFiles/osguard_actions.dir/retrain.cc.o.d"
  "libosguard_actions.a"
  "libosguard_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
