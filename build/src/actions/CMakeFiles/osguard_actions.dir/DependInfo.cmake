
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actions/dispatcher.cc" "src/actions/CMakeFiles/osguard_actions.dir/dispatcher.cc.o" "gcc" "src/actions/CMakeFiles/osguard_actions.dir/dispatcher.cc.o.d"
  "/root/repo/src/actions/policy_registry.cc" "src/actions/CMakeFiles/osguard_actions.dir/policy_registry.cc.o" "gcc" "src/actions/CMakeFiles/osguard_actions.dir/policy_registry.cc.o.d"
  "/root/repo/src/actions/report.cc" "src/actions/CMakeFiles/osguard_actions.dir/report.cc.o" "gcc" "src/actions/CMakeFiles/osguard_actions.dir/report.cc.o.d"
  "/root/repo/src/actions/retrain.cc" "src/actions/CMakeFiles/osguard_actions.dir/retrain.cc.o" "gcc" "src/actions/CMakeFiles/osguard_actions.dir/retrain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/osguard_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
