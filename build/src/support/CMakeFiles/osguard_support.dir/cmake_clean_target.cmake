file(REMOVE_RECURSE
  "libosguard_support.a"
)
