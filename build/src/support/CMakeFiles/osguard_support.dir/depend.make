# Empty dependencies file for osguard_support.
# This may be replaced when dependencies are built.
