file(REMOVE_RECURSE
  "CMakeFiles/osguard_support.dir/histogram.cc.o"
  "CMakeFiles/osguard_support.dir/histogram.cc.o.d"
  "CMakeFiles/osguard_support.dir/logging.cc.o"
  "CMakeFiles/osguard_support.dir/logging.cc.o.d"
  "CMakeFiles/osguard_support.dir/rng.cc.o"
  "CMakeFiles/osguard_support.dir/rng.cc.o.d"
  "CMakeFiles/osguard_support.dir/stats.cc.o"
  "CMakeFiles/osguard_support.dir/stats.cc.o.d"
  "CMakeFiles/osguard_support.dir/status.cc.o"
  "CMakeFiles/osguard_support.dir/status.cc.o.d"
  "CMakeFiles/osguard_support.dir/time.cc.o"
  "CMakeFiles/osguard_support.dir/time.cc.o.d"
  "libosguard_support.a"
  "libosguard_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
