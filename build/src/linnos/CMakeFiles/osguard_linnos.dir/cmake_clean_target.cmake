file(REMOVE_RECURSE
  "libosguard_linnos.a"
)
