# Empty dependencies file for osguard_linnos.
# This may be replaced when dependencies are built.
