file(REMOVE_RECURSE
  "CMakeFiles/osguard_linnos.dir/harness.cc.o"
  "CMakeFiles/osguard_linnos.dir/harness.cc.o.d"
  "CMakeFiles/osguard_linnos.dir/model.cc.o"
  "CMakeFiles/osguard_linnos.dir/model.cc.o.d"
  "CMakeFiles/osguard_linnos.dir/policy.cc.o"
  "CMakeFiles/osguard_linnos.dir/policy.cc.o.d"
  "libosguard_linnos.a"
  "libosguard_linnos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_linnos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
