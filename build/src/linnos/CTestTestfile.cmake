# CMake generated Testfile for 
# Source directory: /root/repo/src/linnos
# Build directory: /root/repo/build/src/linnos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
