
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/bytecode.cc" "src/vm/CMakeFiles/osguard_vm.dir/bytecode.cc.o" "gcc" "src/vm/CMakeFiles/osguard_vm.dir/bytecode.cc.o.d"
  "/root/repo/src/vm/c_backend.cc" "src/vm/CMakeFiles/osguard_vm.dir/c_backend.cc.o" "gcc" "src/vm/CMakeFiles/osguard_vm.dir/c_backend.cc.o.d"
  "/root/repo/src/vm/compiler.cc" "src/vm/CMakeFiles/osguard_vm.dir/compiler.cc.o" "gcc" "src/vm/CMakeFiles/osguard_vm.dir/compiler.cc.o.d"
  "/root/repo/src/vm/verifier.cc" "src/vm/CMakeFiles/osguard_vm.dir/verifier.cc.o" "gcc" "src/vm/CMakeFiles/osguard_vm.dir/verifier.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/vm/CMakeFiles/osguard_vm.dir/vm.cc.o" "gcc" "src/vm/CMakeFiles/osguard_vm.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/osguard_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
