file(REMOVE_RECURSE
  "CMakeFiles/osguard_vm.dir/bytecode.cc.o"
  "CMakeFiles/osguard_vm.dir/bytecode.cc.o.d"
  "CMakeFiles/osguard_vm.dir/c_backend.cc.o"
  "CMakeFiles/osguard_vm.dir/c_backend.cc.o.d"
  "CMakeFiles/osguard_vm.dir/compiler.cc.o"
  "CMakeFiles/osguard_vm.dir/compiler.cc.o.d"
  "CMakeFiles/osguard_vm.dir/verifier.cc.o"
  "CMakeFiles/osguard_vm.dir/verifier.cc.o.d"
  "CMakeFiles/osguard_vm.dir/vm.cc.o"
  "CMakeFiles/osguard_vm.dir/vm.cc.o.d"
  "libosguard_vm.a"
  "libosguard_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
