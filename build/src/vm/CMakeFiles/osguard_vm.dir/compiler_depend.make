# Empty compiler generated dependencies file for osguard_vm.
# This may be replaced when dependencies are built.
