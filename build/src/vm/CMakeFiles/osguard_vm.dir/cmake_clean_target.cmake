file(REMOVE_RECURSE
  "libosguard_vm.a"
)
