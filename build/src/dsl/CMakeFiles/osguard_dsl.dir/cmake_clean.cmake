file(REMOVE_RECURSE
  "CMakeFiles/osguard_dsl.dir/ast.cc.o"
  "CMakeFiles/osguard_dsl.dir/ast.cc.o.d"
  "CMakeFiles/osguard_dsl.dir/builtins.cc.o"
  "CMakeFiles/osguard_dsl.dir/builtins.cc.o.d"
  "CMakeFiles/osguard_dsl.dir/lexer.cc.o"
  "CMakeFiles/osguard_dsl.dir/lexer.cc.o.d"
  "CMakeFiles/osguard_dsl.dir/parser.cc.o"
  "CMakeFiles/osguard_dsl.dir/parser.cc.o.d"
  "CMakeFiles/osguard_dsl.dir/sema.cc.o"
  "CMakeFiles/osguard_dsl.dir/sema.cc.o.d"
  "CMakeFiles/osguard_dsl.dir/token.cc.o"
  "CMakeFiles/osguard_dsl.dir/token.cc.o.d"
  "libosguard_dsl.a"
  "libosguard_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
