# Empty dependencies file for osguard_dsl.
# This may be replaced when dependencies are built.
