file(REMOVE_RECURSE
  "libosguard_dsl.a"
)
