file(REMOVE_RECURSE
  "libosguard_wl.a"
)
