# Empty compiler generated dependencies file for osguard_wl.
# This may be replaced when dependencies are built.
