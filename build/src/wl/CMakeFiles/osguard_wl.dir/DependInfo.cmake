
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/accessgen.cc" "src/wl/CMakeFiles/osguard_wl.dir/accessgen.cc.o" "gcc" "src/wl/CMakeFiles/osguard_wl.dir/accessgen.cc.o.d"
  "/root/repo/src/wl/iogen.cc" "src/wl/CMakeFiles/osguard_wl.dir/iogen.cc.o" "gcc" "src/wl/CMakeFiles/osguard_wl.dir/iogen.cc.o.d"
  "/root/repo/src/wl/taskgen.cc" "src/wl/CMakeFiles/osguard_wl.dir/taskgen.cc.o" "gcc" "src/wl/CMakeFiles/osguard_wl.dir/taskgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
