file(REMOVE_RECURSE
  "CMakeFiles/osguard_wl.dir/accessgen.cc.o"
  "CMakeFiles/osguard_wl.dir/accessgen.cc.o.d"
  "CMakeFiles/osguard_wl.dir/iogen.cc.o"
  "CMakeFiles/osguard_wl.dir/iogen.cc.o.d"
  "CMakeFiles/osguard_wl.dir/taskgen.cc.o"
  "CMakeFiles/osguard_wl.dir/taskgen.cc.o.d"
  "libosguard_wl.a"
  "libosguard_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
