file(REMOVE_RECURSE
  "CMakeFiles/osguard_store.dir/feature_store.cc.o"
  "CMakeFiles/osguard_store.dir/feature_store.cc.o.d"
  "CMakeFiles/osguard_store.dir/value.cc.o"
  "CMakeFiles/osguard_store.dir/value.cc.o.d"
  "libosguard_store.a"
  "libosguard_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
