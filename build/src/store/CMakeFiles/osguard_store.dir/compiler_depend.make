# Empty compiler generated dependencies file for osguard_store.
# This may be replaced when dependencies are built.
