file(REMOVE_RECURSE
  "libosguard_store.a"
)
