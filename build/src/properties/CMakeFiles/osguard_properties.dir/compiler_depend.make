# Empty compiler generated dependencies file for osguard_properties.
# This may be replaced when dependencies are built.
