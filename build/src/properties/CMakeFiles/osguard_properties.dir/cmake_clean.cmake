file(REMOVE_RECURSE
  "CMakeFiles/osguard_properties.dir/drift.cc.o"
  "CMakeFiles/osguard_properties.dir/drift.cc.o.d"
  "CMakeFiles/osguard_properties.dir/specs.cc.o"
  "CMakeFiles/osguard_properties.dir/specs.cc.o.d"
  "libosguard_properties.a"
  "libosguard_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
