
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/properties/drift.cc" "src/properties/CMakeFiles/osguard_properties.dir/drift.cc.o" "gcc" "src/properties/CMakeFiles/osguard_properties.dir/drift.cc.o.d"
  "/root/repo/src/properties/specs.cc" "src/properties/CMakeFiles/osguard_properties.dir/specs.cc.o" "gcc" "src/properties/CMakeFiles/osguard_properties.dir/specs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
