file(REMOVE_RECURSE
  "libosguard_properties.a"
)
