file(REMOVE_RECURSE
  "CMakeFiles/osguard_ml.dir/dataset.cc.o"
  "CMakeFiles/osguard_ml.dir/dataset.cc.o.d"
  "CMakeFiles/osguard_ml.dir/linear.cc.o"
  "CMakeFiles/osguard_ml.dir/linear.cc.o.d"
  "CMakeFiles/osguard_ml.dir/metrics.cc.o"
  "CMakeFiles/osguard_ml.dir/metrics.cc.o.d"
  "CMakeFiles/osguard_ml.dir/mlp.cc.o"
  "CMakeFiles/osguard_ml.dir/mlp.cc.o.d"
  "libosguard_ml.a"
  "libosguard_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
