file(REMOVE_RECURSE
  "libosguard_ml.a"
)
