# Empty compiler generated dependencies file for osguard_ml.
# This may be replaced when dependencies are built.
