# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("store")
subdirs("dsl")
subdirs("vm")
subdirs("actions")
subdirs("runtime")
subdirs("ml")
subdirs("properties")
subdirs("sim")
subdirs("wl")
subdirs("linnos")
