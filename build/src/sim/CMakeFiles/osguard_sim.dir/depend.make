# Empty dependencies file for osguard_sim.
# This may be replaced when dependencies are built.
