file(REMOVE_RECURSE
  "CMakeFiles/osguard_sim.dir/blk_layer.cc.o"
  "CMakeFiles/osguard_sim.dir/blk_layer.cc.o.d"
  "CMakeFiles/osguard_sim.dir/cache.cc.o"
  "CMakeFiles/osguard_sim.dir/cache.cc.o.d"
  "CMakeFiles/osguard_sim.dir/congestion.cc.o"
  "CMakeFiles/osguard_sim.dir/congestion.cc.o.d"
  "CMakeFiles/osguard_sim.dir/event_queue.cc.o"
  "CMakeFiles/osguard_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/osguard_sim.dir/hugepage.cc.o"
  "CMakeFiles/osguard_sim.dir/hugepage.cc.o.d"
  "CMakeFiles/osguard_sim.dir/kernel.cc.o"
  "CMakeFiles/osguard_sim.dir/kernel.cc.o.d"
  "CMakeFiles/osguard_sim.dir/orca.cc.o"
  "CMakeFiles/osguard_sim.dir/orca.cc.o.d"
  "CMakeFiles/osguard_sim.dir/readahead.cc.o"
  "CMakeFiles/osguard_sim.dir/readahead.cc.o.d"
  "CMakeFiles/osguard_sim.dir/scheduler.cc.o"
  "CMakeFiles/osguard_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/osguard_sim.dir/ssd_device.cc.o"
  "CMakeFiles/osguard_sim.dir/ssd_device.cc.o.d"
  "libosguard_sim.a"
  "libosguard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osguard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
