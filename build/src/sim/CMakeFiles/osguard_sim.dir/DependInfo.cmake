
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/blk_layer.cc" "src/sim/CMakeFiles/osguard_sim.dir/blk_layer.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/blk_layer.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/osguard_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/congestion.cc" "src/sim/CMakeFiles/osguard_sim.dir/congestion.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/congestion.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/osguard_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/hugepage.cc" "src/sim/CMakeFiles/osguard_sim.dir/hugepage.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/hugepage.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/osguard_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/orca.cc" "src/sim/CMakeFiles/osguard_sim.dir/orca.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/orca.cc.o.d"
  "/root/repo/src/sim/readahead.cc" "src/sim/CMakeFiles/osguard_sim.dir/readahead.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/readahead.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/osguard_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/ssd_device.cc" "src/sim/CMakeFiles/osguard_sim.dir/ssd_device.cc.o" "gcc" "src/sim/CMakeFiles/osguard_sim.dir/ssd_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/osguard_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/actions/CMakeFiles/osguard_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/osguard_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/osguard_dsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
