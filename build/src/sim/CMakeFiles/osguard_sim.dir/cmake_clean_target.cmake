file(REMOVE_RECURSE
  "libosguard_sim.a"
)
