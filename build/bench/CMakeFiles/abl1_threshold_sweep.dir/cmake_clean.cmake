file(REMOVE_RECURSE
  "CMakeFiles/abl1_threshold_sweep.dir/abl1_threshold_sweep.cc.o"
  "CMakeFiles/abl1_threshold_sweep.dir/abl1_threshold_sweep.cc.o.d"
  "abl1_threshold_sweep"
  "abl1_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
