# Empty compiler generated dependencies file for abl1_threshold_sweep.
# This may be replaced when dependencies are built.
