# Empty compiler generated dependencies file for listing1_dsl_pipeline.
# This may be replaced when dependencies are built.
