file(REMOVE_RECURSE
  "CMakeFiles/listing1_dsl_pipeline.dir/listing1_dsl_pipeline.cc.o"
  "CMakeFiles/listing1_dsl_pipeline.dir/listing1_dsl_pipeline.cc.o.d"
  "listing1_dsl_pipeline"
  "listing1_dsl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing1_dsl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
