# Empty dependencies file for ext4_feature_store.
# This may be replaced when dependencies are built.
