file(REMOVE_RECURSE
  "CMakeFiles/ext4_feature_store.dir/ext4_feature_store.cc.o"
  "CMakeFiles/ext4_feature_store.dir/ext4_feature_store.cc.o.d"
  "ext4_feature_store"
  "ext4_feature_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4_feature_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
