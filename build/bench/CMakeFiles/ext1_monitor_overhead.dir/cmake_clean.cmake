file(REMOVE_RECURSE
  "CMakeFiles/ext1_monitor_overhead.dir/ext1_monitor_overhead.cc.o"
  "CMakeFiles/ext1_monitor_overhead.dir/ext1_monitor_overhead.cc.o.d"
  "ext1_monitor_overhead"
  "ext1_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
