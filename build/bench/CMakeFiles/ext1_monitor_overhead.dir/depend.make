# Empty dependencies file for ext1_monitor_overhead.
# This may be replaced when dependencies are built.
