
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab1_properties.cc" "bench/CMakeFiles/tab1_properties.dir/tab1_properties.cc.o" "gcc" "bench/CMakeFiles/tab1_properties.dir/tab1_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linnos/CMakeFiles/osguard_linnos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osguard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/osguard_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/properties/CMakeFiles/osguard_properties.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/osguard_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/actions/CMakeFiles/osguard_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/osguard_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/osguard_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/osguard_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/osguard_store.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osguard_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
