# Empty compiler generated dependencies file for tab1_properties.
# This may be replaced when dependencies are built.
