file(REMOVE_RECURSE
  "CMakeFiles/tab1_properties.dir/tab1_properties.cc.o"
  "CMakeFiles/tab1_properties.dir/tab1_properties.cc.o.d"
  "tab1_properties"
  "tab1_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
