file(REMOVE_RECURSE
  "CMakeFiles/tab1_actions.dir/tab1_actions.cc.o"
  "CMakeFiles/tab1_actions.dir/tab1_actions.cc.o.d"
  "tab1_actions"
  "tab1_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
