# Empty dependencies file for tab1_actions.
# This may be replaced when dependencies are built.
