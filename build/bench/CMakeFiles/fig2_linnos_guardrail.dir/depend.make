# Empty dependencies file for fig2_linnos_guardrail.
# This may be replaced when dependencies are built.
