file(REMOVE_RECURSE
  "CMakeFiles/fig2_linnos_guardrail.dir/fig2_linnos_guardrail.cc.o"
  "CMakeFiles/fig2_linnos_guardrail.dir/fig2_linnos_guardrail.cc.o.d"
  "fig2_linnos_guardrail"
  "fig2_linnos_guardrail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_linnos_guardrail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
