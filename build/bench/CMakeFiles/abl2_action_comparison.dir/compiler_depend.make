# Empty compiler generated dependencies file for abl2_action_comparison.
# This may be replaced when dependencies are built.
