file(REMOVE_RECURSE
  "CMakeFiles/abl2_action_comparison.dir/abl2_action_comparison.cc.o"
  "CMakeFiles/abl2_action_comparison.dir/abl2_action_comparison.cc.o.d"
  "abl2_action_comparison"
  "abl2_action_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_action_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
