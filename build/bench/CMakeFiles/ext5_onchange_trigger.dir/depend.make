# Empty dependencies file for ext5_onchange_trigger.
# This may be replaced when dependencies are built.
