file(REMOVE_RECURSE
  "CMakeFiles/ext5_onchange_trigger.dir/ext5_onchange_trigger.cc.o"
  "CMakeFiles/ext5_onchange_trigger.dir/ext5_onchange_trigger.cc.o.d"
  "ext5_onchange_trigger"
  "ext5_onchange_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext5_onchange_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
