file(REMOVE_RECURSE
  "CMakeFiles/ext2_feedback_loops.dir/ext2_feedback_loops.cc.o"
  "CMakeFiles/ext2_feedback_loops.dir/ext2_feedback_loops.cc.o.d"
  "ext2_feedback_loops"
  "ext2_feedback_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_feedback_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
