# Empty dependencies file for ext2_feedback_loops.
# This may be replaced when dependencies are built.
