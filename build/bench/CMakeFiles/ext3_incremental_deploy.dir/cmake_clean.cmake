file(REMOVE_RECURSE
  "CMakeFiles/ext3_incremental_deploy.dir/ext3_incremental_deploy.cc.o"
  "CMakeFiles/ext3_incremental_deploy.dir/ext3_incremental_deploy.cc.o.d"
  "ext3_incremental_deploy"
  "ext3_incremental_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_incremental_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
