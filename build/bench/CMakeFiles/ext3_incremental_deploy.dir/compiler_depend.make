# Empty compiler generated dependencies file for ext3_incremental_deploy.
# This may be replaced when dependencies are built.
