# Empty dependencies file for hugepage_stalls.
# This may be replaced when dependencies are built.
