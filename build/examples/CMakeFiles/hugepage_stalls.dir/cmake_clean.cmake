file(REMOVE_RECURSE
  "CMakeFiles/hugepage_stalls.dir/hugepage_stalls.cpp.o"
  "CMakeFiles/hugepage_stalls.dir/hugepage_stalls.cpp.o.d"
  "hugepage_stalls"
  "hugepage_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hugepage_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
