file(REMOVE_RECURSE
  "CMakeFiles/linnos_failover.dir/linnos_failover.cpp.o"
  "CMakeFiles/linnos_failover.dir/linnos_failover.cpp.o.d"
  "linnos_failover"
  "linnos_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linnos_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
