# Empty dependencies file for linnos_failover.
# This may be replaced when dependencies are built.
