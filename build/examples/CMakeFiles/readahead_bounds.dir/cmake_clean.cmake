file(REMOVE_RECURSE
  "CMakeFiles/readahead_bounds.dir/readahead_bounds.cpp.o"
  "CMakeFiles/readahead_bounds.dir/readahead_bounds.cpp.o.d"
  "readahead_bounds"
  "readahead_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readahead_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
