# Empty compiler generated dependencies file for readahead_bounds.
# This may be replaced when dependencies are built.
