file(REMOVE_RECURSE
  "CMakeFiles/sched_fairness.dir/sched_fairness.cpp.o"
  "CMakeFiles/sched_fairness.dir/sched_fairness.cpp.o.d"
  "sched_fairness"
  "sched_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
