# Empty dependencies file for sched_fairness.
# This may be replaced when dependencies are built.
