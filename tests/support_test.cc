// Support-library tests: status/result, rng, stats, histogram, ring buffer,
// time formatting.

#include <gtest/gtest.h>

#include <cmath>

#include "src/support/histogram.h"
#include "src/support/ring_buffer.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = ParseError("bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kParseError);
  EXPECT_EQ(status.message(), "bad token");
  EXPECT_EQ(status.ToString(), "PARSE_ERROR: bad token");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(SemanticError("x").code(), ErrorCode::kSemanticError);
  EXPECT_EQ(VerifierError("x").code(), ErrorCode::kVerifierError);
  EXPECT_EQ(ExecutionError("x").code(), ErrorCode::kExecutionError);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = Half(10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
}

Result<int> Chain(int x) {
  OSGUARD_ASSIGN_OR_RETURN(int half, Half(x));
  OSGUARD_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Chain(20).value(), 5);
  EXPECT_FALSE(Chain(10).ok());  // 5 is odd at the second step
  EXPECT_FALSE(Chain(3).ok());
}

// --- Rng ---

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 1.1) < 10) {
      ++low;
    }
  }
  // With skew 1.1 the first 1% of ranks should draw far more than 1%.
  EXPECT_GT(low, 2000);
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(21);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.0) < 10) {
      ++low;
    }
  }
  EXPECT_NEAR(low, 100, 60);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// --- StreamingStats ---

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.sum(), 40.0);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3, 2);
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

// --- Ewma ---

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.Add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstantInput) {
  Ewma ewma(0.3);
  ewma.Add(0.0);
  for (int i = 0; i < 100; ++i) {
    ewma.Add(5.0);
  }
  EXPECT_NEAR(ewma.value(), 5.0, 1e-9);
}

// --- Quantiles ---

TEST(ExactQuantileTest, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.5), 5.5);
  EXPECT_TRUE(std::isfinite(ExactQuantile(v, 0.9)));
  EXPECT_EQ(ExactQuantile({}, 0.5), 0.0);
}

class P2QuantileParamTest : public ::testing::TestWithParam<double> {};

TEST_P(P2QuantileParamTest, TracksExactQuantileOnNormalData) {
  const double q = GetParam();
  P2Quantile estimator(q);
  std::vector<double> samples;
  Rng rng(37);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Normal(100.0, 15.0);
    estimator.Add(x);
    samples.push_back(x);
  }
  const double exact = ExactQuantile(samples, q);
  EXPECT_NEAR(estimator.value(), exact, 1.5) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileParamTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99));

TEST(P2QuantileTest, ExactForSmallCounts) {
  P2Quantile estimator(0.5);
  estimator.Add(3.0);
  estimator.Add(1.0);
  estimator.Add(2.0);
  EXPECT_DOUBLE_EQ(estimator.value(), 2.0);
}

// --- KS statistic ---

TEST(KsStatisticTest, IdenticalSamplesScoreZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsStatisticTest, DisjointSamplesScoreOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsStatisticTest, ShiftedDistributionsScoreHigh) {
  Rng rng(41);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.Normal(0, 1));
    b.push_back(rng.Normal(3, 1));
  }
  EXPECT_GT(KsStatistic(a, b), 0.8);
}

TEST(KsStatisticTest, SameDistributionScoresLow) {
  Rng rng(43);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.Normal(0, 1));
    b.push_back(rng.Normal(0, 1));
  }
  EXPECT_LT(KsStatistic(a, b), 0.08);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg{-2, -4, -6, -8, -10};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsGiveZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 2}, {2, 3, 4}), 0.0);
}

// --- Histogram ---

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 32; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(HistogramTest, PercentilesWithinRelativeError) {
  Histogram h;
  Rng rng(47);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Pareto(100.0, 1.2));
    h.Record(v);
    samples.push_back(static_cast<double>(v));
  }
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = ExactQuantile(samples, q);
    const double approx = static_cast<double>(h.ValueAtQuantile(q));
    EXPECT_NEAR(approx, exact, exact * 0.08 + 2) << "q=" << q;
  }
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(5);
  b.Record(500000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 500000);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, SummaryMentionsPercentiles) {
  Histogram h;
  h.Record(100);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
}

// --- RingBuffer ---

TEST(RingBufferTest, PushAndIndexOldestFirst) {
  RingBuffer<int> ring(3);
  ring.Push(1);
  ring.Push(2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0], 1);
  EXPECT_EQ(ring[1], 2);
  EXPECT_EQ(ring.oldest(), 1);
  EXPECT_EQ(ring.newest(), 2);
}

TEST(RingBufferTest, OverwritesOldestWhenFull) {
  RingBuffer<int> ring(3);
  for (int i = 1; i <= 5; ++i) {
    ring.Push(i);
  }
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.ToVector(), (std::vector<int>{3, 4, 5}));
}

TEST(RingBufferTest, ClearEmpties) {
  RingBuffer<int> ring(2);
  ring.Push(1);
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
}

// --- Time ---

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(Seconds(1), 1000000000);
  EXPECT_EQ(Milliseconds(1), 1000000);
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMicros(Milliseconds(2)), 2000.0);
}

TEST(TimeTest, FormatDurationAdaptsUnits) {
  EXPECT_EQ(FormatDuration(250), "250ns");
  EXPECT_EQ(FormatDuration(Microseconds(13) + 500), "13.5us");
  EXPECT_EQ(FormatDuration(Milliseconds(2)), "2.0ms");
  EXPECT_EQ(FormatDuration(Seconds(1) + Milliseconds(250)), "1.25s");
  EXPECT_EQ(FormatDuration(-Milliseconds(2)), "-2.0ms");
}

}  // namespace
}  // namespace osguard
