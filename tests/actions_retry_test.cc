// Corrective-action hardening tests (src/actions/dispatcher.cc):
//   * retries never exceed the configured bound,
//   * the recorded backoff schedule is monotone (geometric, multiplier
//     clamped >= 1),
//   * an exhausted REPLACE chain engages the fallback list exactly once,
//   * failure/retry/fallback counters surface through the feature store,
//   * the defaults (one attempt, no fallbacks) reproduce the pre-hardening
//     dispatcher exactly.
//
// Failures are driven deterministically through chaos site
// actions.dispatch_fail, so every scenario replays bit-identically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/actions/dispatcher.h"
#include "src/chaos/chaos.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class NamedPolicy : public Policy {
 public:
  explicit NamedPolicy(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }

 private:
  std::string name_;
};

struct Fixture {
  Fixture() {
    Logger::Global().set_level(LogLevel::kOff);
    dispatcher = std::make_unique<ActionDispatcher>(&reporter, &registry, &retrain_queue,
                                                    nullptr);
  }

  // Arms actions.dispatch_fail so the first `failures` attempts of the next
  // dispatch fail (schedule mode: exact, replayable).
  void FailFirstAttempts(std::vector<uint64_t> indices) {
    FaultPlanConfig plan;
    plan.mode = FaultMode::kSchedule;
    plan.nth = std::move(indices);
    ASSERT_TRUE(chaos.Arm(kChaosSiteDispatchFail, plan).ok());
    dispatcher->SetChaos(&chaos);
  }

  void FailAlways() {
    FaultPlanConfig plan;
    plan.mode = FaultMode::kBernoulli;
    plan.p = 1.0;
    ASSERT_TRUE(chaos.Arm(kChaosSiteDispatchFail, plan).ok());
    dispatcher->SetChaos(&chaos);
  }

  Result<Value> Report(const std::string& message) {
    const Value args[] = {Value(message)};
    return dispatcher->Dispatch(HelperId::kReport, args, envelope);
  }

  Result<Value> Replace(const std::string& old_policy, const std::string& new_policy) {
    const Value args[] = {Value(old_policy), Value(new_policy)};
    return dispatcher->Dispatch(HelperId::kReplace, args, envelope);
  }

  Reporter reporter;
  PolicyRegistry registry;
  RetrainQueue retrain_queue;
  ChaosEngine chaos{17};
  std::unique_ptr<ActionDispatcher> dispatcher;
  ActionEnvelope envelope{"test-guardrail", Severity::kWarning, Seconds(1)};
};

TEST(ActionsRetryTest, RetriesNeverExceedTheConfiguredBound) {
  Fixture f;
  f.FailAlways();
  RetryOptions options;
  options.max_attempts = 4;
  f.dispatcher->SetRetryOptions(options);

  EXPECT_FALSE(f.Report("doomed").ok());
  ActionStats stats = f.dispatcher->stats();
  // Exactly max_attempts attempts: 4 injected failures, 3 retries, 1
  // exhausted chain. Not one attempt more.
  EXPECT_EQ(stats.injected_failures, 4u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.reports, 0u);

  // Ten more doomed dispatches: the bound holds per chain.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(f.Report("doomed").ok());
  }
  stats = f.dispatcher->stats();
  EXPECT_EQ(stats.injected_failures, 44u);
  EXPECT_EQ(stats.retries, 33u);
  EXPECT_EQ(stats.failures, 11u);
}

TEST(ActionsRetryTest, RetrySucceedsAfterTransientFailures) {
  Fixture f;
  f.FailFirstAttempts({0, 1});  // first two attempts fail, third succeeds
  RetryOptions options;
  options.max_attempts = 4;
  f.dispatcher->SetRetryOptions(options);

  EXPECT_TRUE(f.Report("transient").ok());
  const ActionStats stats = f.dispatcher->stats();
  EXPECT_EQ(stats.injected_failures, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failures, 0u);   // the chain did not exhaust
  EXPECT_EQ(stats.reports, 1u);    // the action finally ran
  EXPECT_EQ(f.reporter.total_reports(), 1u);
}

TEST(ActionsRetryTest, BackoffScheduleIsMonotoneGeometric) {
  Fixture f;
  f.FailAlways();
  RetryOptions options;
  options.max_attempts = 6;
  options.backoff_base = Milliseconds(1);
  options.backoff_multiplier = 2.0;
  f.dispatcher->SetRetryOptions(options);

  EXPECT_FALSE(f.Report("doomed").ok());
  const std::vector<Duration> schedule = f.dispatcher->last_backoff_schedule();
  const std::vector<Duration> expected = {Milliseconds(1), Milliseconds(2), Milliseconds(4),
                                          Milliseconds(8), Milliseconds(16)};
  EXPECT_EQ(schedule, expected);
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i], schedule[i - 1]);
  }
}

TEST(ActionsRetryTest, SubUnityMultiplierIsClampedToMonotone) {
  Fixture f;
  f.FailAlways();
  RetryOptions options;
  options.max_attempts = 5;
  options.backoff_base = Milliseconds(3);
  options.backoff_multiplier = 0.25;  // clamped to 1.0: constant, never shrinking
  f.dispatcher->SetRetryOptions(options);

  EXPECT_FALSE(f.Report("doomed").ok());
  const std::vector<Duration> schedule = f.dispatcher->last_backoff_schedule();
  ASSERT_EQ(schedule.size(), 4u);
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i], Milliseconds(3));
  }
}

TEST(ActionsRetryTest, FallbackFiresExactlyOncePerExhaustedChain) {
  Fixture f;
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("learned")).ok());
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("target")).ok());
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("safe")).ok());
  ASSERT_TRUE(f.registry.BindSlot("slot", "learned").ok());

  f.FailAlways();
  RetryOptions options;
  options.max_attempts = 3;
  f.dispatcher->SetRetryOptions(options);
  // First candidate is unknown to the registry and must be skipped; the
  // second engages. "ghost" failing does NOT count as a fallback engagement.
  f.dispatcher->SetReplaceFallbacks({"ghost", "safe"});

  const Result<Value> first = f.Replace("learned", "target");
  ASSERT_TRUE(first.ok());  // the fallback rescued the chain
  EXPECT_EQ(first.value().AsInt().value(), 1);
  EXPECT_EQ(f.registry.Active("slot").value()->name(), "safe");

  ActionStats stats = f.dispatcher->stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);  // exactly once for this chain

  // Second exhausted chain: exactly one more engagement (idempotent rebind).
  ASSERT_TRUE(f.Replace("learned", "target").ok());
  stats = f.dispatcher->stats();
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.fallbacks, 2u);

  // The engagement is visible in the report stream, once per chain.
  EXPECT_EQ(f.reporter.CountFor("test-guardrail"), 2u);
}

TEST(ActionsRetryTest, FallbackDoesNotFireForNonReplaceActions) {
  Fixture f;
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("safe")).ok());
  f.FailAlways();
  f.dispatcher->SetReplaceFallbacks({"safe"});

  EXPECT_FALSE(f.Report("doomed").ok());
  EXPECT_EQ(f.dispatcher->stats().fallbacks, 0u);
}

TEST(ActionsRetryTest, ExhaustedFallbackChainReturnsTheOriginalError) {
  Fixture f;
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("learned")).ok());
  ASSERT_TRUE(f.registry.BindSlot("slot", "learned").ok());
  f.FailAlways();
  f.dispatcher->SetReplaceFallbacks({"ghost1", "ghost2"});

  const Result<Value> result = f.Replace("learned", "also-ghost");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("actions.dispatch_fail"), std::string::npos);
  EXPECT_EQ(f.dispatcher->stats().fallbacks, 0u);
}

TEST(ActionsRetryTest, CountersSurfaceThroughTheFeatureStore) {
  Fixture f;
  FeatureStore store;
  f.dispatcher->SetStore(&store);
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("learned")).ok());
  ASSERT_TRUE(f.registry.Register(std::make_shared<NamedPolicy>("safe")).ok());
  ASSERT_TRUE(f.registry.BindSlot("slot", "learned").ok());

  f.FailAlways();
  RetryOptions options;
  options.max_attempts = 3;
  f.dispatcher->SetRetryOptions(options);
  f.dispatcher->SetReplaceFallbacks({"safe"});

  ASSERT_TRUE(f.Replace("learned", "safe").ok());  // rescued by the fallback
  EXPECT_EQ(store.LoadOr(kActionRetriesKey, Value(0)).NumericOr(-1), 2.0);
  EXPECT_EQ(store.LoadOr(kActionFailuresKey, Value(0)).NumericOr(-1), 1.0);
  EXPECT_EQ(store.LoadOr(kActionFallbacksKey, Value(0)).NumericOr(-1), 1.0);
}

TEST(ActionsRetryTest, DefaultsReproducePreHardeningBehavior) {
  Fixture f;
  // No chaos, no retry config, no fallbacks: a failing REPLACE fails once,
  // immediately, with no retries and an empty backoff schedule.
  const Result<Value> result = f.Replace("nobody", "home");
  ASSERT_FALSE(result.ok());
  const ActionStats stats = f.dispatcher->stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.injected_failures, 0u);
  EXPECT_TRUE(f.dispatcher->last_backoff_schedule().empty());

  // And a healthy action succeeds on the first attempt.
  EXPECT_TRUE(f.Report("fine").ok());
  EXPECT_EQ(f.dispatcher->stats().reports, 1u);
}

}  // namespace
}  // namespace osguard
