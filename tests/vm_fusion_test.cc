// Differential tests for the peephole fusion pass: an optimized program must
// verify exactly like its unfused source and compute the same result — value
// for value, fault for fault — under both dispatch modes. The randomized
// section hammers the pass with generated straight-line/branchy programs and
// fails loudly on any divergence.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

class NullHelperContext : public HelperContext {
 public:
  Result<Value> CallHelper(HelperId, std::span<const Value>) override {
    return ExecutionError("no helpers in fusion tests");
  }
  SimTime now() const override { return 0; }
};

Program Make(std::vector<Insn> insns, std::vector<Value> consts, int regs = 8) {
  Program program;
  program.name = "fusion-test";
  program.insns = std::move(insns);
  program.consts = std::move(consts);
  program.register_count = regs;
  return program;
}

bool HasOp(const Program& program, Op op) {
  for (const Insn& insn : program.insns) {
    if (insn.op == op) {
      return true;
    }
  }
  return false;
}

// Runs both programs and demands identical outcomes: same ok-ness, same
// value when ok, same error code when not. (Error text may differ — the
// optimized program has different pcs — but the fault class must match.)
void ExpectSameResult(Vm& vm, HelperContext& ctx, const Program& unfused,
                      const Program& fused, const std::string& context) {
  const Result<Value> a = vm.Execute(unfused, ctx);
  const Result<Value> b = vm.Execute(fused, ctx);
  ASSERT_EQ(a.ok(), b.ok()) << context << "\nunfused:\n"
                            << unfused.Disassemble() << "fused:\n"
                            << fused.Disassemble();
  if (a.ok()) {
    EXPECT_EQ(a.value(), b.value()) << context << "\nunfused:\n"
                                    << unfused.Disassemble() << "fused:\n"
                                    << fused.Disassemble();
  } else {
    EXPECT_EQ(a.status().code(), b.status().code()) << context;
  }
}

TEST(VmFusionTest, ConstCompareBranchFusesAndAgrees) {
  // if (r0 < 10) return 111 else return 222 — the classic rule shape.
  for (int64_t input : {int64_t{5}, int64_t{10}, int64_t{50}}) {
    const Program unfused = Make({{Op::kLoadConst, 0, 0, 0, 0},   // r0 = input
                                  {Op::kLoadConst, 1, 0, 0, 1},   // r1 = 10
                                  {Op::kCmpLt, 2, 0, 1, 0},       // r2 = r0 < r1
                                  {Op::kJumpIfFalse, 2, 0, 0, 2}, // -> else
                                  {Op::kLoadConst, 3, 0, 0, 2},
                                  {Op::kRet, 3, 0, 0, 0},
                                  {Op::kLoadConst, 3, 0, 0, 3},
                                  {Op::kRet, 3, 0, 0, 0}},
                                 {Value(input), Value(int64_t{10}), Value(int64_t{111}),
                                  Value(int64_t{222})});
    ASSERT_TRUE(Verify(unfused).ok());
    const Program fused = PeepholeOptimize(unfused);
    // The ldc/cmp pair folds to kCmpConst and the compare/branch pair fuses.
    EXPECT_TRUE(HasOp(fused, Op::kCmpConstJf)) << fused.Disassemble();
    EXPECT_LT(fused.insns.size(), unfused.insns.size());
    ASSERT_TRUE(Verify(fused).ok()) << Verify(fused).ToString();
    Vm vm;
    NullHelperContext ctx;
    ExpectSameResult(vm, ctx, unfused, fused, "input=" + std::to_string(input));
  }
}

TEST(VmFusionTest, RegCompareBranchFusesAndAgrees) {
  const Program unfused = Make({{Op::kLoadConst, 0, 0, 0, 0},
                                {Op::kLoadConst, 1, 0, 0, 1},
                                {Op::kLoadConst, 2, 0, 0, 0},   // keep r1 live-ish
                                {Op::kCmpGe, 3, 0, 1, 0},       // r3 = r0 >= r1
                                {Op::kJumpIfTrue, 3, 0, 0, 1},
                                {Op::kRet, 2, 0, 0, 0},
                                {Op::kRet, 1, 0, 0, 0}},
                               {Value(3.5), Value(int64_t{2})});
  ASSERT_TRUE(Verify(unfused).ok());
  const Program fused = PeepholeOptimize(unfused);
  // r1 is still used after the compare, so the ldc can't fold away — but the
  // compare/branch pair must fuse into kCmpRegJt.
  EXPECT_TRUE(HasOp(fused, Op::kCmpRegJt)) << fused.Disassemble();
  ASSERT_TRUE(Verify(fused).ok()) << Verify(fused).ToString();
  Vm vm;
  NullHelperContext ctx;
  ExpectSameResult(vm, ctx, unfused, fused, "reg-compare");
}

TEST(VmFusionTest, MirroredConstLhsCompare) {
  // 10 < r0 must fold to r0 > 10, not r0 < 10.
  for (int64_t input : {int64_t{5}, int64_t{10}, int64_t{50}}) {
    const Program unfused = Make({{Op::kLoadConst, 0, 0, 0, 0},  // r0 = input
                                  {Op::kLoadConst, 1, 0, 0, 1},  // r1 = 10 (lhs!)
                                  {Op::kCmpLt, 2, 1, 0, 0},      // r2 = 10 < r0
                                  {Op::kRet, 2, 0, 0, 0}},
                                 {Value(input), Value(int64_t{10})});
    ASSERT_TRUE(Verify(unfused).ok());
    const Program fused = PeepholeOptimize(unfused);
    EXPECT_TRUE(HasOp(fused, Op::kCmpConst)) << fused.Disassemble();
    ASSERT_TRUE(Verify(fused).ok()) << Verify(fused).ToString();
    Vm vm;
    NullHelperContext ctx;
    ExpectSameResult(vm, ctx, unfused, fused, "const-lhs input=" + std::to_string(input));
  }
}

TEST(VmFusionTest, InvalidProgramStaysInvalid) {
  // Uses r5 without defining it; fusion must not launder the program into
  // something the verifier accepts.
  const Program unfused = Make({{Op::kLoadConst, 0, 0, 0, 0},
                                {Op::kCmpEq, 1, 0, 5, 0},
                                {Op::kJumpIfFalse, 1, 0, 0, 1},
                                {Op::kRet, 0, 0, 0, 0}},
                               {Value(int64_t{1})});
  ASSERT_FALSE(Verify(unfused).ok());
  const Program fused = PeepholeOptimize(unfused);
  EXPECT_FALSE(Verify(fused).ok());
}

// --- Randomized differential fuzzing of the pass ---

struct RandomProgramGen {
  std::mt19937 rng;
  std::uniform_real_distribution<double> dval{-100.0, 100.0};

  explicit RandomProgramGen(uint32_t seed) : rng(seed) {}

  int Pick(int lo, int hi) {  // inclusive
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  Value RandomConst() {
    switch (Pick(0, 3)) {
      case 0:
        return Value(static_cast<int64_t>(Pick(-50, 50)));
      case 1:
        return Value(dval(rng));
      case 2:
        return Value(Pick(0, 1) == 1);
      default:
        return Value(static_cast<int64_t>(Pick(0, 5)));
    }
  }

  Program Generate() {
    std::vector<Insn> insns;
    std::vector<Value> consts;
    auto add_const = [&](Value v) {
      consts.push_back(std::move(v));
      return static_cast<int32_t>(consts.size() - 1);
    };
    // Define r0..r7 up front so register use is valid on every path no
    // matter how the random jumps land.
    for (uint8_t r = 0; r < 8; ++r) {
      insns.push_back({Op::kLoadConst, r, 0, 0, add_const(RandomConst()), 0});
    }
    const int body = Pick(4, 24);
    std::vector<size_t> branch_fixups;  // jump offsets patched once length is known
    for (int i = 0; i < body; ++i) {
      const uint8_t d = static_cast<uint8_t>(Pick(0, 7));
      const uint8_t s1 = static_cast<uint8_t>(Pick(0, 7));
      const uint8_t s2 = static_cast<uint8_t>(Pick(0, 7));
      switch (Pick(0, 9)) {
        case 0:
          insns.push_back({Op::kLoadConst, d, 0, 0, add_const(RandomConst()), 0});
          break;
        case 1:
          insns.push_back({Op::kMov, d, s1, 0, 0, 0});
          break;
        case 2:
          insns.push_back(
              {static_cast<Op>(Pick(static_cast<int>(Op::kAdd), static_cast<int>(Op::kMul))),
               d, s1, s2, 0, 0});
          break;
        case 3:
          insns.push_back({Op::kNot, d, s1, 0, 0, 0});
          break;
        case 4:
        case 5:
          insns.push_back(
              {static_cast<Op>(Pick(static_cast<int>(Op::kCmpLt), static_cast<int>(Op::kCmpNe))),
               d, s1, s2, 0, 0});
          break;
        case 6: {  // fusable ldc/cmp pair
          insns.push_back({Op::kLoadConst, 7, 0, 0, add_const(RandomConst()), 0});
          const bool const_lhs = Pick(0, 1) == 1;
          insns.push_back(
              {static_cast<Op>(Pick(static_cast<int>(Op::kCmpLt), static_cast<int>(Op::kCmpNe))),
               d, const_lhs ? uint8_t{7} : s1, const_lhs ? s1 : uint8_t{7}, 0, 0});
          ++i;
          break;
        }
        case 7: {  // fusable cmp/branch pair (offset patched below)
          insns.push_back(
              {static_cast<Op>(Pick(static_cast<int>(Op::kCmpLt), static_cast<int>(Op::kCmpNe))),
               d, s1, s2, 0, 0});
          insns.push_back({Pick(0, 1) == 1 ? Op::kJumpIfTrue : Op::kJumpIfFalse, d, 0, 0, 1, 0});
          branch_fixups.push_back(insns.size() - 1);
          ++i;
          break;
        }
        case 8:
          insns.push_back({Op::kJump, 0, 0, 0, 1, 0});
          branch_fixups.push_back(insns.size() - 1);
          break;
        default:
          insns.push_back({Op::kNot, d, s1, 0, 0, 0});
          break;
      }
    }
    insns.push_back({Op::kRet, static_cast<uint8_t>(Pick(0, 7)), 0, 0, 0, 0});
    const int n = static_cast<int>(insns.size());
    for (size_t pc : branch_fixups) {
      // Target is pc + 1 + imm and must stay < n (the trailing ret).
      const int max_off = n - 2 - static_cast<int>(pc);
      if (max_off < 1) {
        // A branch in the last slot has nowhere to go; neutralize it.
        insns[pc] = {Op::kNot, insns[pc].a, insns[pc].a, 0, 0, 0};
        continue;
      }
      insns[pc].imm = Pick(1, max_off);
    }
    return Make(std::move(insns), std::move(consts));
  }
};

TEST(VmFusionTest, RandomizedProgramsAgreeAfterFusion) {
  RandomProgramGen gen(0xf05e01);
  Vm vm;
  NullHelperContext ctx;
  int fused_programs = 0;
  constexpr int kPrograms = 500;
  for (int i = 0; i < kPrograms; ++i) {
    const Program unfused = gen.Generate();
    ASSERT_TRUE(Verify(unfused).ok())
        << "generator produced an invalid program:\n"
        << unfused.Disassemble();
    const Program fused = PeepholeOptimize(unfused);
    ASSERT_TRUE(Verify(fused).ok())
        << Verify(fused).ToString() << "\nunfused:\n"
        << unfused.Disassemble() << "fused:\n" << fused.Disassemble();
    if (fused.insns.size() < unfused.insns.size()) {
      ++fused_programs;
    }
    ExpectSameResult(vm, ctx, unfused, fused, "program " + std::to_string(i));
  }
  // The generator plants fusable pairs; the pass must actually shrink a
  // healthy fraction of programs or it is silently disabled.
  EXPECT_GT(fused_programs, kPrograms / 4);
}

TEST(VmFusionTest, OptimizeIsIdempotent) {
  RandomProgramGen gen(0x1de3210);
  for (int i = 0; i < 100; ++i) {
    const Program once = PeepholeOptimize(gen.Generate());
    const Program twice = PeepholeOptimize(once);
    ASSERT_EQ(once.insns.size(), twice.insns.size()) << once.Disassemble();
    for (size_t pc = 0; pc < once.insns.size(); ++pc) {
      EXPECT_EQ(once.insns[pc].op, twice.insns[pc].op) << "pc " << pc;
    }
  }
}

}  // namespace
}  // namespace osguard
