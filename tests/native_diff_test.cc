// Differential suite for the native AOT tier (`ctest -L native`).
//
// Determinism contract (docs/NATIVE.md): for every verified program the
// interpreter and the AOT-compiled object are bit-identical — same result
// values, same fault strings, same feature-store effects, and same
// insns_executed / helper_calls accounting. The suite checks the contract
// three ways:
//
//   1. Engine level: every spec under specs/ and tests/corpus/ is driven
//      through the same recorded pseudo-workload with the tier off, with
//      immediate promotion, and with mid-run promotion; reports, store dumps
//      (engine.tier.* telemetry excluded), per-monitor stats, and VM
//      accounting must match exactly — chaos-seeded specs included, since
//      chaos draws are part of the contract (one draw per helper call on
//      both tiers, in the same order).
//   2. Program level, randomized: hundreds of random expressions compiled
//      into one batched shared object, each executed on both tiers against
//      several seeded stores (1000 program x seed runs total).
//   3. Keyed-helper matrix: straight-line programs using the kCallKeyed
//      slot specialization, run both where the slot is valid and where it
//      is out of range for the executing store (the string-fallback path a
//      stale snapshot or cross-store replay hits).
//
// When the host has no working C compiler the tier degrades to
// interpreter-only; these tests skip (the pinning of that degrade mode
// lives in native_tier_test.cc).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(OSGUARD_NATIVE_TIER)
#include <dlfcn.h>
#endif

#include "src/actions/dispatcher.h"
#include "src/chaos/chaos.h"
#include "src/dsl/builtins.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/engine.h"
#include "src/runtime/helper_env.h"
#include "src/runtime/native_exec.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/vm/c_backend.h"
#include "src/vm/compiler.h"
#include "src/vm/native_aot.h"
#include "src/vm/native_prelude.h"
#include "src/vm/verifier.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

NativeAot& SharedAot() {
  static NativeAot* aot = new NativeAot();
  return *aot;
}

bool NativeAvailable() { return NativeAot::CompiledIn() && SharedAot().Available(); }

#define SKIP_IF_NO_NATIVE()                                                  \
  do {                                                                       \
    if (!NativeAvailable()) {                                                \
      GTEST_SKIP() << "native tier unavailable on this host; the engine "    \
                      "degrades to interpreter-only (pinned elsewhere)";     \
    }                                                                        \
  } while (0)

// ---------------------------------------------------------------------------
// 1. Engine-level corpus diff.
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> SpecFiles() {
  std::vector<std::filesystem::path> files;
  for (const char* dir : {OSGUARD_SPECS_DIR, OSGUARD_CORPUS_DIR}) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string stem = entry.path().stem().string();
      if (entry.path().extension() == ".osg" ||
          (entry.path().extension() == ".spec" && stem.rfind("valid_", 0) == 0)) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Drives one engine through a seed-recorded workload and renders everything
// observable into one comparable string. The workload feeds the keys the
// repo's specs actually watch, so rules flip between satisfied and violated
// and all three program kinds (rule / action / on_satisfy) execute.
std::string RunScenario(const std::string& source, const NativeTierOptions& tier,
                        uint64_t seed) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  options.measure_wall_time = false;
  options.tier = tier;
  Engine engine(&store, &registry, nullptr, options);
  store.SetWriteObserver(
      [&engine](const StoreWriteInfo& info, const std::string& key) {
        engine.OnStoreWrite(info, key);
      });
  ChaosEngine chaos(913);
  engine.SetChaos(&chaos);
  Status status = engine.LoadSource(source);
  EXPECT_TRUE(status.ok()) << status.ToString();
  if (!status.ok()) {
    return "load failed: " + status.ToString();
  }

  Rng rng(seed);
  for (int tick = 1; tick <= 400; ++tick) {
    const SimTime t = Milliseconds(50) * tick;
    if (rng.Bernoulli(0.4)) {
      store.Save("false_submit_rate", Value(rng.Uniform(0.0, 0.1)));
    }
    if (rng.Bernoulli(0.3)) {
      store.Save("err_rate", Value(rng.Uniform(0.0, 0.2)));
    }
    if (rng.Bernoulli(0.5)) {
      store.Observe("mm.page_fault_lat_ms", t, rng.Uniform(0.0, 4.0));
    }
    if (rng.Bernoulli(0.5)) {
      store.Observe("sched.starved_ms", t, rng.Uniform(0.0, 250.0));
    }
    if (rng.Bernoulli(0.2)) {
      engine.OnFunctionCall("blk_submit_io", t);
    }
    engine.AdvanceTo(t);
  }

  std::ostringstream out;
  for (const ReportRecord& record : engine.reporter().Records()) {
    out << record.ToString() << "\n";
  }
  std::vector<std::string> keys = store.ScalarKeys();
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    if (key.rfind("engine.tier.", 0) == 0 ||
        key.rfind("actions.latency.", 0) == 0 ||
        key == "engine.store.bytes.total" || key == "engine.store.keys.live") {
      // Tier telemetry differs across tiers by design; action-dispatch
      // latency is a wall-clock measurement (nondeterministic even between
      // two interpreter runs). The global store census aggregates over every
      // live slot — including the engine.tier.* keys excluded above — so it
      // inherits their tier dependence; the per-namespace gauges and the
      // store.retention.* counters stay in the fingerprint.
      continue;
    }
    auto value = store.Load(key);
    out << "store " << key << " = "
        << (value.ok() ? value.value().ToString() : value.status().ToString()) << "\n";
  }
  for (const std::string& name : engine.MonitorNames()) {
    const MonitorStats* m = engine.FindStats(name);
    out << "monitor " << name << " evals=" << m->evaluations
        << " violations=" << m->violations << " actions=" << m->action_firings
        << " satisfies=" << m->satisfy_firings << " errors=" << m->errors
        << " hyst=" << m->suppressed_hysteresis << " cd=" << m->suppressed_cooldown
        << " inviol=" << m->in_violation << "\n";
  }
  const EngineStats s = engine.stats();
  out << "engine evals=" << s.evaluations << " violations=" << s.violations
      << " actions=" << s.action_firings << " errors=" << s.errors
      << " timer=" << s.timer_firings << " fn=" << s.function_firings
      << " change=" << s.change_firings << " dropped=" << s.callouts_dropped
      << " delayed=" << s.callouts_delayed << "\n";
  const ExecStats& v = engine.vm().stats();
  out << "vm insns=" << v.insns_executed << " helpers=" << v.helper_calls
      << " budget_aborts=" << v.budget_aborts << "\n";
  return out.str();
}

TEST(NativeEngineDiff, CorpusSpecsAreTierInvariant) {
  SKIP_IF_NO_NATIVE();
  Logger::Global().set_level(LogLevel::kOff);
  NativeTierOptions off;
  NativeTierOptions hot;
  hot.enabled = true;
  hot.promote_after = 0;  // every monitor native from its first evaluation
  NativeTierOptions warm;
  warm.enabled = true;
  warm.promote_after = 7;  // promotion mid-run: interpreted prefix, native tail
  int checked = 0;
  for (const auto& path : SpecFiles()) {
    const std::string source = ReadFile(path);
    const std::string base = RunScenario(source, off, 0xd1ff);
    EXPECT_EQ(base, RunScenario(source, hot, 0xd1ff))
        << path << " diverged under immediate promotion";
    EXPECT_EQ(base, RunScenario(source, warm, 0xd1ff))
        << path << " diverged under mid-run promotion";
    ++checked;
  }
  EXPECT_GE(checked, 7) << "spec corpus went missing";
}

// A spec exercising the keyed store mutations (SAVE / INCR / OBSERVE land on
// the kCallKeyed fast path after the engine's rewrite) plus on_satisfy.
constexpr char kMutatingSpec[] = R"(
guardrail mutator {
  trigger: { TIMER(100ms, 100ms) },
  rule: { LOAD_OR(err_rate, 0) <= 0.1 && COUNT(mut.series, 2s) <= 12 },
  action: {
    SAVE(mut.flag, false);
    INCR(mut.trips);
    INCR(mut.weight, 2.5);
    OBSERVE(mut.series, LOAD_OR(err_rate, 0));
    REPORT("tripped", LOAD_OR(err_rate, 0), NOW())
  },
  on_satisfy: { SAVE(mut.flag, true); INCR(mut.recoveries) },
  meta: { severity = info, hysteresis = 2, cooldown = 300ms }
}
)";

TEST(NativeEngineDiff, KeyedMutationsAreTierInvariant) {
  SKIP_IF_NO_NATIVE();
  Logger::Global().set_level(LogLevel::kOff);
  NativeTierOptions off;
  NativeTierOptions hot;
  hot.enabled = true;
  hot.promote_after = 0;
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    const std::string base = RunScenario(kMutatingSpec, off, seed);
    EXPECT_EQ(base, RunScenario(kMutatingSpec, hot, seed)) << "seed " << seed;
    EXPECT_NE(base.find("mut.trips"), std::string::npos)
        << "workload never tripped the mutator; the diff is vacuous";
  }
}

#if defined(OSGUARD_NATIVE_TIER)

// ---------------------------------------------------------------------------
// 2. Program-level randomized sweep.
//
// All programs are emitted into one translation unit and compiled with a
// single cc invocation (per-program objects would dominate the test's
// runtime), then each entry point is compared against the interpreter over
// several seeded stores.
// ---------------------------------------------------------------------------

struct NativeBatch {
  void* handle = nullptr;
  std::vector<NativeEntryFn> fns;

  ~NativeBatch() {
    if (handle != nullptr) {
      dlclose(handle);
    }
  }
};

testing::AssertionResult CompileBatch(const std::vector<Program>& programs,
                                      const std::string& tag, NativeBatch* out) {
  std::string tu = NativeAbiText();
  for (size_t i = 0; i < programs.size(); ++i) {
    tu += EmitNativeFunction(programs[i], "osg_fn_" + std::to_string(i));
  }
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "osguard-native-diff";
  std::filesystem::create_directories(dir);
  const std::string c_path = (dir / (tag + ".c")).string();
  const std::string so_path = (dir / (tag + ".so")).string();
  const std::string log_path = (dir / (tag + ".log")).string();
  {
    std::ofstream c_file(c_path);
    c_file << tu;
  }
  const std::string command = SharedAot().compiler() + " -O2 -fPIC -shared -o '" +
                              so_path + "' '" + c_path + "' > '" + log_path +
                              "' 2>&1";
  if (std::system(command.c_str()) != 0) {
    return testing::AssertionFailure()
           << "batch compile failed: " << command << "\n"
           << ReadFile(log_path);
  }
  out->handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (out->handle == nullptr) {
    return testing::AssertionFailure() << "dlopen failed: " << dlerror();
  }
  for (size_t i = 0; i < programs.size(); ++i) {
    void* symbol = dlsym(out->handle, ("osg_fn_" + std::to_string(i)).c_str());
    if (symbol == nullptr) {
      return testing::AssertionFailure() << "dlsym osg_fn_" << i << " failed";
    }
    out->fns.push_back(reinterpret_cast<NativeEntryFn>(symbol));
  }
  return testing::AssertionSuccess();
}

// Deterministically populates a store; the layout (intern order) is part of
// the seed so keyed slots resolve identically on both sides of a diff.
void SeedStore(FeatureStore& store, uint64_t seed) {
  Rng rng(seed);
  store.Save("some_key", Value(rng.Uniform(-5.0, 5.0)));
  for (int k = 0; k < 6; ++k) {
    const std::string name = "k" + std::to_string(k);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        store.Save(name, Value(rng.UniformInt(-100, 100)));
        break;
      case 1:
        store.Save(name, Value(rng.Uniform(-10.0, 10.0)));
        break;
      case 2:
        store.Save(name, Value(rng.Bernoulli(0.5)));
        break;
      default:
        break;  // left missing: LOAD_OR takes its fallback
    }
  }
  for (int s = 0; s < 3; ++s) {
    const std::string name = "s" + std::to_string(s);
    const int samples = static_cast<int>(rng.UniformInt(0, 24));
    for (int i = 1; i <= samples; ++i) {
      store.Observe(name, Milliseconds(200) * i, rng.Uniform(-4.0, 12.0));
    }
  }
}

struct RunOutcome {
  std::string result;      // "ok <value>" or the full fault string
  std::string store_dump;  // sorted scalars after execution
  int64_t insns = 0;
  int64_t helpers = 0;

  bool operator==(const RunOutcome& other) const {
    return result == other.result && store_dump == other.store_dump &&
           insns == other.insns && helpers == other.helpers;
  }
};

std::ostream& operator<<(std::ostream& out, const RunOutcome& outcome) {
  return out << outcome.result << " | insns=" << outcome.insns
             << " helpers=" << outcome.helpers << " | " << outcome.store_dump;
}

std::string DumpScalars(const FeatureStore& store) {
  std::vector<std::string> keys = store.ScalarKeys();
  std::sort(keys.begin(), keys.end());
  std::string dump;
  for (const std::string& key : keys) {
    auto value = store.Load(key);
    dump += key + "=" + (value.ok() ? value.value().ToString() : "?") + ";";
  }
  return dump;
}

// chaos_p > 0 arms runtime.helper_fail so injected helper failures are part
// of the compared behavior (the draw order is the contract).
RunOutcome RunOneTier(const Program& program, NativeEntryFn fn, uint64_t store_seed,
                      double chaos_p) {
  FeatureStore store;
  SeedStore(store, store_seed);
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"diff", Severity::kInfo, Seconds(3)});
  ChaosEngine chaos(store_seed ^ 0xc4a05);
  if (chaos_p > 0) {
    env.SetChaos(&chaos);
    FaultPlanConfig plan;
    plan.mode = FaultMode::kBernoulli;
    plan.p = chaos_p;
    EXPECT_TRUE(chaos.Arm(kChaosSiteHelperFail, plan).ok());
  }
  RunOutcome outcome;
  Result<Value> result = InternalError("unset");
  if (fn == nullptr) {
    Vm vm;
    result = vm.Execute(program, env);
    outcome.insns = vm.stats().insns_executed;
    outcome.helpers = vm.stats().helper_calls;
  } else {
    NativeExec exec(&env);
    const std::vector<osg_value> consts = NativeExec::PrepareConsts(program);
    ExecStats stats;
    result = exec.Run(fn, program, consts.data(), nullptr, &stats);
    outcome.insns = stats.insns_executed;
    outcome.helpers = stats.helper_calls;
  }
  outcome.result =
      result.ok() ? "ok " + result.value().ToString() : result.status().ToString();
  outcome.store_dump = DumpScalars(store);
  return outcome;
}

// Random expression generator: richer than the fuzz_test one — aggregates,
// quantiles, EXISTS, NOW, comparisons, and enough division to hit faults.
std::string RandomExpr(Rng& rng, int depth) {
  if (depth <= 0) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
        return std::to_string(rng.UniformInt(-100, 100));
      case 1:
        return "0." + std::to_string(rng.UniformInt(0, 99));
      case 2:
        return "some_key";
      case 3:
        return "LOAD_OR(k" + std::to_string(rng.UniformInt(0, 5)) + ", " +
               std::to_string(rng.UniformInt(-9, 9)) + ")";
      case 4:
        return rng.Bernoulli(0.5) ? "true" : "false";
      case 5:
        return "EXISTS(k" + std::to_string(rng.UniformInt(0, 5)) + ")";
      case 6:
        return "COUNT(s" + std::to_string(rng.UniformInt(0, 2)) + ", " +
               std::to_string(rng.UniformInt(1, 5)) + "s)";
      case 7:
        return "MEAN(s" + std::to_string(rng.UniformInt(0, 2)) + ", " +
               std::to_string(rng.UniformInt(1, 5)) + "s)";
      case 8:
        return "P99(s" + std::to_string(rng.UniformInt(0, 2)) + ", 4s)";
      default:
        return "NOW()";
    }
  }
  const std::string lhs = RandomExpr(rng, depth - 1);
  const std::string rhs = RandomExpr(rng, depth - 1);
  switch (rng.UniformInt(0, 12)) {
    case 0:
      return "(" + lhs + " + " + rhs + ")";
    case 1:
      return "(" + lhs + " - " + rhs + ")";
    case 2:
      return "(" + lhs + " * " + rhs + ")";
    case 3:
      return "(" + lhs + " / " + rhs + ")";
    case 4:
      return "(" + lhs + " % " + rhs + ")";
    case 5:
      return "(" + lhs + " <= " + rhs + ")";
    case 6:
      return "(" + lhs + " < " + rhs + ")";
    case 7:
      return "(" + lhs + " == " + rhs + ")";
    case 8:
      return "(" + lhs + " != " + rhs + ")";
    case 9:
      return "(" + lhs + " && " + rhs + ")";
    case 10:
      return "(" + lhs + " || " + rhs + ")";
    case 11:
      return "!" + lhs;
    default:
      return "ABS(" + lhs + ")";
  }
}

TEST(NativeProgramDiff, RandomizedProgramsMatchOverSeededStores) {
  SKIP_IF_NO_NATIVE();
  constexpr int kPrograms = 250;
  constexpr uint64_t kStoreSeeds[] = {1, 2, 3, 4};  // 250 x 4 = 1000 runs
  Rng rng(0x5eed);
  std::vector<Program> programs;
  std::vector<std::string> sources;
  while (programs.size() < kPrograms) {
    const std::string source = RandomExpr(rng, static_cast<int>(rng.UniformInt(1, 4)));
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto program = CompileExpr(*expr.value(), "diff");
    if (!program.ok()) {
      continue;  // register pressure; the verifier already rejected it
    }
    ASSERT_TRUE(Verify(program.value()).ok()) << source;
    programs.push_back(std::move(program).value());
    sources.push_back(source);
  }
  NativeBatch batch;
  ASSERT_TRUE(CompileBatch(programs, "random_sweep", &batch));

  int faults = 0;
  for (size_t i = 0; i < programs.size(); ++i) {
    for (const uint64_t seed : kStoreSeeds) {
      const RunOutcome interp = RunOneTier(programs[i], nullptr, seed, 0.0);
      const RunOutcome native = RunOneTier(programs[i], batch.fns[i], seed, 0.0);
      ASSERT_EQ(interp, native) << sources[i] << " (store seed " << seed << ")";
      if (interp.result.rfind("ok ", 0) != 0) {
        ++faults;
      }
    }
  }
  // The sweep is not vacuous: some runs fault (division by zero, non-numeric
  // comparisons) and their fault strings matched too.
  EXPECT_GT(faults, 0);
}

TEST(NativeProgramDiff, ChaosInjectedHelperFailuresMatch) {
  SKIP_IF_NO_NATIVE();
  Rng rng(0xc405);
  std::vector<Program> programs;
  std::vector<std::string> sources;
  while (programs.size() < 40) {
    // Helper-dense expressions so the bernoulli site gets many draws.
    const std::string source = "(LOAD_OR(k0, 1) + MEAN(s0, 3s) + ABS(" +
                               RandomExpr(rng, 2) + ") + COUNT(s1, 2s))";
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto program = CompileExpr(*expr.value(), "chaos-diff");
    if (!program.ok()) {
      continue;
    }
    programs.push_back(std::move(program).value());
    sources.push_back(source);
  }
  NativeBatch batch;
  ASSERT_TRUE(CompileBatch(programs, "chaos_sweep", &batch));
  int injected = 0;
  for (size_t i = 0; i < programs.size(); ++i) {
    for (const uint64_t seed : {7ull, 8ull, 9ull}) {
      const RunOutcome interp = RunOneTier(programs[i], nullptr, seed, 0.35);
      const RunOutcome native = RunOneTier(programs[i], batch.fns[i], seed, 0.35);
      ASSERT_EQ(interp, native) << sources[i] << " (store seed " << seed << ")";
      if (interp.result.find("injected helper failure") != std::string::npos) {
        ++injected;
      }
    }
  }
  EXPECT_GT(injected, 0) << "chaos never fired; the replay diff is vacuous";
}

// ---------------------------------------------------------------------------
// 3. Keyed-helper matrix: kCallKeyed with valid slots and with slots out of
//    range for the executing store (string fallback).
// ---------------------------------------------------------------------------

bool IsKeyedHelperId(int32_t imm) {
  const auto id = static_cast<HelperId>(imm);
  return (id >= HelperId::kLoad && id <= HelperId::kObserve) ||
         (id >= HelperId::kCount && id <= HelperId::kQuantile);
}

// The engine's keyed rewrite, restricted to straight-line programs (no
// jumps), which is all this matrix uses. Slots are interned into `store`.
void RewriteKeyedStraightLine(Program& program, FeatureStore& store) {
  for (const Insn& insn : program.insns) {
    ASSERT_TRUE(insn.op != Op::kJump && insn.op != Op::kJumpIfFalse &&
                insn.op != Op::kJumpIfTrue && insn.op != Op::kCmpConstJf &&
                insn.op != Op::kCmpConstJt && insn.op != Op::kCmpRegJf &&
                insn.op != Op::kCmpRegJt)
        << "matrix programs must be straight-line";
  }
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    Insn& call = program.insns[pc];
    if (call.op != Op::kCall || call.c < 1 || !IsKeyedHelperId(call.imm)) {
      continue;
    }
    for (size_t k = pc; k-- > 0;) {
      const Insn& def = program.insns[k];
      if (def.op == Op::kRet || def.a != call.b) {
        continue;
      }
      if (def.op == Op::kLoadConst) {
        if (const std::string* key =
                program.consts[static_cast<size_t>(def.imm)].IfString()) {
          call.op = Op::kCallKeyed;
          call.aux = static_cast<int32_t>(store.InternKey(*key));
        }
      }
      break;
    }
  }
}

// Interns this matrix's keys in a fixed order so a program rewritten against
// one store resolves identical slots in any other built the same way.
void InternMatrixKeys(FeatureStore& store) {
  for (const char* key : {"alpha", "beta", "lat", "out", "ctr", "ghost"}) {
    store.InternKey(key);
  }
}

void PopulateMatrixStore(FeatureStore& store, uint64_t seed) {
  InternMatrixKeys(store);
  Rng rng(seed);
  store.Save("alpha", Value(rng.Uniform(-3.0, 3.0)));
  if (rng.Bernoulli(0.5)) {
    store.Save("beta", Value(rng.UniformInt(-5, 5)));
  }
  const int samples = static_cast<int>(rng.UniformInt(0, 16));
  for (int i = 1; i <= samples; ++i) {
    store.Observe("lat", Milliseconds(300) * i, rng.Uniform(0.0, 20.0));
  }
}

RunOutcome RunMatrixTier(const Program& program, NativeEntryFn fn, uint64_t seed,
                         bool populate) {
  FeatureStore store;
  if (populate) {
    PopulateMatrixStore(store, seed);
  }
  // An unpopulated store interned nothing, so every rewritten slot is out of
  // range and both tiers must take the string-fallback path.
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"matrix", Severity::kInfo, Seconds(5)});
  RunOutcome outcome;
  Result<Value> result = InternalError("unset");
  if (fn == nullptr) {
    Vm vm;
    result = vm.Execute(program, env);
    outcome.insns = vm.stats().insns_executed;
    outcome.helpers = vm.stats().helper_calls;
  } else {
    NativeExec exec(&env);
    const std::vector<osg_value> consts = NativeExec::PrepareConsts(program);
    ExecStats stats;
    result = exec.Run(fn, program, consts.data(), nullptr, &stats);
    outcome.insns = stats.insns_executed;
    outcome.helpers = stats.helper_calls;
  }
  outcome.result =
      result.ok() ? "ok " + result.value().ToString() : result.status().ToString();
  outcome.store_dump = DumpScalars(store);
  return outcome;
}

TEST(NativeProgramDiff, KeyedSlotAndFallbackPathsMatch) {
  SKIP_IF_NO_NATIVE();
  const char* kExprs[] = {
      "LOAD_OR(alpha, 3) + LOAD_OR(beta, 0.5)",
      "LOAD(alpha)",
      "EXISTS(alpha) + EXISTS(ghost)",
      "COUNT(lat, 10s) + MEAN(lat, 10s) * 2",
      "MAX(lat, 5s) - MIN(lat, 5s)",
      "P99(lat, 10s)",
      "QUANTILE(lat, 0.5, 10s)",
      "SUM(lat, 4s)",
      "LOAD_OR(ghost, 7) * LOAD_OR(alpha, 1)",
  };
  std::vector<Program> programs;
  std::vector<std::string> sources;
  FeatureStore donor;
  InternMatrixKeys(donor);
  for (const char* source : kExprs) {
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto program = CompileExpr(*expr.value(), "matrix");
    ASSERT_TRUE(program.ok()) << source << ": " << program.status().ToString();
    RewriteKeyedStraightLine(program.value(), donor);
    ASSERT_TRUE(Verify(program.value()).ok()) << source;
    bool keyed = false;
    for (const Insn& insn : program.value().insns) {
      keyed = keyed || insn.op == Op::kCallKeyed;
    }
    EXPECT_TRUE(keyed) << source << ": rewrite produced no kCallKeyed";
    programs.push_back(std::move(program).value());
    sources.push_back(source);
  }
  NativeBatch batch;
  ASSERT_TRUE(CompileBatch(programs, "keyed_matrix", &batch));
  for (size_t i = 0; i < programs.size(); ++i) {
    for (const uint64_t seed : {21ull, 22ull, 23ull}) {
      for (const bool populate : {true, false}) {
        const RunOutcome interp = RunMatrixTier(programs[i], nullptr, seed, populate);
        const RunOutcome native =
            RunMatrixTier(programs[i], batch.fns[i], seed, populate);
        ASSERT_EQ(interp, native)
            << sources[i] << (populate ? " (keyed slots)" : " (string fallback)")
            << " seed " << seed;
      }
    }
  }
}

#endif  // OSGUARD_NATIVE_TIER

}  // namespace
}  // namespace osguard
