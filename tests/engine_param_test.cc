// Parameterized property sweeps over the engine's trigger and violation
// protocol: exact firing counts across interval / hysteresis / cooldown
// grids. These pin down the arithmetic the prose in engine.h promises.

#include <gtest/gtest.h>

#include "src/runtime/engine.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class TimerIntervalSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(TimerIntervalSweep, EvaluationCountIsExact) {
  Logger::Global().set_level(LogLevel::kOff);
  const Duration interval = GetParam();
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  const std::string spec = "guardrail g { trigger: { TIMER(" + std::to_string(interval) +
                           ", " + std::to_string(interval) +
                           ") }, rule: { true }, action: { REPORT() } }";
  ASSERT_TRUE(engine.LoadSource(spec).ok());
  const Duration horizon = Seconds(10);
  engine.AdvanceTo(horizon);
  // Firings at interval, 2*interval, ..., <= horizon.
  const uint64_t expected = static_cast<uint64_t>(horizon / interval);
  EXPECT_EQ(engine.StatsFor("g").value().evaluations, expected);
}

INSTANTIATE_TEST_SUITE_P(Intervals, TimerIntervalSweep,
                         ::testing::Values(Milliseconds(1), Milliseconds(7),
                                           Milliseconds(100), Milliseconds(333),
                                           Seconds(1), Seconds(3)));

class HysteresisSweep : public ::testing::TestWithParam<int> {};

TEST_P(HysteresisSweep, FirstFiringAfterExactlyNViolations) {
  Logger::Global().set_level(LogLevel::kOff);
  const int hysteresis = GetParam();
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  const std::string spec =
      "guardrail g { trigger: { TIMER(1s, 1s) }, rule: { false }, action: { INCR(fires) }, "
      "meta: { hysteresis = " +
      std::to_string(hysteresis) + " } }";
  ASSERT_TRUE(engine.LoadSource(spec).ok());

  engine.AdvanceTo(Seconds(hysteresis - 1));
  EXPECT_EQ(store.LoadOr("fires", Value(0)).NumericOr(0), 0.0);
  engine.AdvanceTo(Seconds(hysteresis));
  EXPECT_EQ(store.LoadOr("fires", Value(0)).NumericOr(0), 1.0);
  // With no cooldown, every subsequent violated check also fires.
  engine.AdvanceTo(Seconds(hysteresis + 5));
  EXPECT_EQ(store.LoadOr("fires", Value(0)).NumericOr(0), 6.0);
  EXPECT_EQ(engine.StatsFor("g").value().suppressed_hysteresis,
            static_cast<uint64_t>(hysteresis - 1));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HysteresisSweep, ::testing::Values(1, 2, 3, 5, 10));

struct CooldownCase {
  Duration cooldown;
  uint64_t expected_fires_in_20s;  // checks every 1s, always violated
};

class CooldownSweep : public ::testing::TestWithParam<CooldownCase> {};

TEST_P(CooldownSweep, FiringsRespectMinimumGap) {
  Logger::Global().set_level(LogLevel::kOff);
  const CooldownCase param = GetParam();
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  const std::string spec =
      "guardrail g { trigger: { TIMER(1s, 1s) }, rule: { false }, action: { INCR(fires) }, "
      "meta: { cooldown = " +
      std::to_string(param.cooldown) + " } }";
  ASSERT_TRUE(engine.LoadSource(spec).ok());
  engine.AdvanceTo(Seconds(20));
  EXPECT_EQ(store.LoadOr("fires", Value(0)).NumericOr(0),
            static_cast<double>(param.expected_fires_in_20s));
}

INSTANTIATE_TEST_SUITE_P(
    Gaps, CooldownSweep,
    ::testing::Values(CooldownCase{0, 20},                 // every check
                      CooldownCase{Seconds(1), 20},        // gap == interval
                      CooldownCase{Seconds(2), 10},        // every other check
                      CooldownCase{Seconds(3), 7},         // t = 1,4,7,10,13,16,19
                      CooldownCase{Seconds(10), 2},        // t = 1, 11
                      CooldownCase{Seconds(30), 1}));      // once

class WindowAggregationSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(WindowAggregationSweep, MeanMatchesClosedForm) {
  // Samples i at t = i seconds, value i; MEAN over window w at t = 100 must
  // average exactly the samples in (100 - w, 100].
  const Duration window = GetParam();
  FeatureStore store;
  for (int i = 1; i <= 100; ++i) {
    store.Observe("s", Seconds(i), static_cast<double>(i));
  }
  const int64_t w_seconds = window / kSecond;
  const int64_t first = std::max<int64_t>(1, 100 - w_seconds + 1);
  double sum = 0;
  int64_t count = 0;
  for (int64_t i = first; i <= 100; ++i) {
    sum += static_cast<double>(i);
    ++count;
  }
  auto mean = store.Aggregate("s", AggKind::kMean, window, Seconds(100));
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value(), sum / static_cast<double>(count)) << w_seconds;
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowAggregationSweep,
                         ::testing::Values(Seconds(1), Seconds(2), Seconds(5), Seconds(17),
                                           Seconds(50), Seconds(100), Seconds(1000)));

// Monitors are independent: N guardrails with disjoint rules fire exactly
// as if alone.
class MonitorCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(MonitorCountSweep, MonitorsDoNotInterfere) {
  Logger::Global().set_level(LogLevel::kOff);
  const int count = GetParam();
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  std::string spec;
  for (int i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    spec += "guardrail g" + n + " { trigger: { TIMER(1s, 1s) }, rule: { LOAD_OR(k" + n +
            ", 0) <= " + n + " }, action: { INCR(f" + n + ") } }\n";
  }
  ASSERT_TRUE(engine.LoadSource(spec).ok());
  // Violate only the even-numbered monitors.
  for (int i = 0; i < count; i += 2) {
    store.Save("k" + std::to_string(i), Value(1000));
  }
  engine.AdvanceTo(Seconds(3));
  for (int i = 0; i < count; ++i) {
    const double fires = store.LoadOr("f" + std::to_string(i), Value(0)).NumericOr(0);
    EXPECT_EQ(fires, i % 2 == 0 ? 3.0 : 0.0) << "monitor " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, MonitorCountSweep, ::testing::Values(1, 2, 8, 32, 64));

}  // namespace
}  // namespace osguard
