// Differential replay for the native-tier / sharding composition
// (`ctest -L native` ∩ `-L shard`): the serial engine with the AOT tier
// enabled is the oracle; the sharded engine — whose workers run the cached
// native rule bodies of promoted monitors — must reproduce its observable
// state byte for byte. The fingerprint includes the feature-store dump, and
// the engine publishes engine.tier.native_evals / interp_evals there, so the
// comparison enforces tier-decision parity (who ran native, and when), not
// just result parity.
//
// Regimes (seeds offset by OSGUARD_CHAOS_SEED like the other campaigns):
//   * 150 clean seeds     — promotion mid-run, promoted bodies on workers
//   * 100 probation seeds — mid-run staged deploy of a hot monitor; the
//                           holdout is pinned inline (never native, never on
//                           a worker) until rollback/expiry
//   *  50 chaos seeds     — budget exhaustion + dispatch failures while
//                           promoted (vm.budget_exhaust forces per-monitor
//                           serial for budgeted monitors; the rest stay on
//                           workers)
//
// Skips wholesale when the host compiler is unavailable: the interp-only
// composition is already covered by shard_diff_test.cc.

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/time.h"
#include "src/vm/native_aot.h"

namespace osguard {
namespace {

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

bool NativeAvailable() {
  static const bool available = [] {
    if (!NativeAot::CompiledIn()) {
      return false;
    }
    NativeAot aot;
    return aot.Available();
  }();
  return available;
}

#define SKIP_IF_NO_NATIVE()                                             \
  do {                                                                  \
    if (!NativeAvailable()) {                                           \
      GTEST_SKIP() << "native tier unavailable; interp composition is " \
                      "covered by shard_diff_test";                     \
    }                                                                   \
  } while (0)

// Three parallel-eligible hot monitors (promotion candidates), one monitor
// with a step budget (budget_steps > 0 pins it inline and keeps it
// interpreted — the budget is exact instruction accounting), and one ONCHANGE
// watcher whose cascade writes a key nobody's rule reads, so watching it does
// not cost the hot monitors their worker slots.
constexpr char kNativeSpec[] = R"(
  guardrail hot_a {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(a.value, 0) <= 50 },
    action: { REPORT("a high") }
  }
  guardrail hot_b {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(b.value, 0) * 2 <= 120 },
    action: { INCR(b.trips) }
  }
  guardrail hot_c {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(c.value, 0) >= 0 },
    action: { REPORT("c negative") }
  }
  guardrail budgeted {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(a.value, 0) <= 80 },
    action: { REPORT("a very high") },
    health: { budget_steps = 64, quarantine = 6 }
  }
  guardrail watch {
    trigger: { ONCHANGE(a.value) },
    rule: { LOAD_OR(a.value, 0) <= 70 },
    action: { INCR(watch.trips) }
  }
)";

// Staged deploy of hot_a: in probation the replacement evaluates inline and
// interpreted on both engines, then (no regression here) probation simply
// outlives the run.
constexpr char kHotADeploy[] = R"(
  guardrail hot_a {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(a.value, 0) <= 45 },
    action: { REPORT("a high v2") },
    health: { probation = 60s, quarantine = 50 }
  }
)";

constexpr char kNativeChaosSpec[] = R"(
  chaos {
    site vm.budget_exhaust { mode = bernoulli, p = 0.1 },
    site actions.dispatch_fail { mode = bernoulli, p = 0.1 }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 3;
  bool probation_deploy = false;
  const char* chaos_spec = nullptr;
};

std::string RunWorkload(uint64_t seed, const RunConfig& config,
                        ShardedStats* stats_out = nullptr) {
  EngineOptions options;
  options.measure_wall_time = false;
  options.tier.enabled = true;
  options.tier.promote_after = 4;  // promotes mid-run under the 24-step drive
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  Kernel kernel(options, sharding);

  ChaosEngine chaos(seed);
  if (config.chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kNativeSpec).ok());
  if (config.chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.chaos_spec).ok());
  }

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 29);
  constexpr int kSteps = 24;
  for (int step = 1; step <= kSteps; ++step) {
    kernel.Run(Milliseconds(10) * step);
    if (rng.Bernoulli(0.5)) {
      kernel.store().Save("a.value", Value(rng.Uniform(0.0, 90.0)));
    }
    if (rng.Bernoulli(0.4)) {
      kernel.store().Save("b.value", Value(rng.Uniform(0.0, 80.0)));
    }
    if (rng.Bernoulli(0.3)) {
      kernel.store().Save("c.value", Value(rng.Uniform(-5.0, 50.0)));
    }
    kernel.Callout("submit_io");
    if (config.probation_deploy && step == kSteps / 2) {
      EXPECT_TRUE(kernel.LoadGuardrails(kHotADeploy).ok());
    }
  }

  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class ShardNativeDiffTest : public ::testing::Test {
 protected:
  ShardNativeDiffTest() { Logger::Global().set_level(LogLevel::kOff); }
};

TEST_F(ShardNativeDiffTest, PromotedSeedsRunNativeOnWorkers) {
  SKIP_IF_NO_NATIVE();
  const uint64_t base = SeedBase() + 0x90000;
  uint64_t parallel_evals = 0;
  for (uint64_t i = 0; i < 150; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
  }
  EXPECT_GT(parallel_evals, 0u);
}

TEST_F(ShardNativeDiffTest, ProbationDeploySeedsStayInline) {
  SKIP_IF_NO_NATIVE();
  const uint64_t base = SeedBase() + 0xA0000;
  uint64_t serial_evals = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.probation_deploy = true;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    serial_evals += stats.serial_evals;
  }
  // The probation holdout (and the budgeted monitor) evaluated inline.
  EXPECT_GT(serial_evals, 0u);
}

TEST_F(ShardNativeDiffTest, ChaosSeedsWhilePromoted) {
  SKIP_IF_NO_NATIVE();
  const uint64_t base = SeedBase() + 0xB0000;
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kNativeChaosSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace osguard
