// Cross-module integration tests: full guardrail stories on each substrate
// (P3 readahead bounds with REPLACE, P6 scheduler liveness with
// DEPRIORITIZE, P1 drift with RETRAIN), runtime guardrail updates, and the
// §6 feedback-loop scenario with damping.

#include <gtest/gtest.h>

#include "src/properties/drift.h"
#include "src/properties/specs.h"
#include "src/sim/kernel.h"
#include "src/sim/readahead.h"
#include "src/sim/scheduler.h"
#include "src/support/logging.h"
#include "src/wl/taskgen.h"

namespace osguard {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() { Logger::Global().set_level(LogLevel::kOff); }
};

// A readahead "model" that behaves until a switch flips, then emits garbage
// (the P3 out-of-bounds failure mode).
class DriftingReadahead : public ReadaheadPolicy {
 public:
  std::string name() const override { return "learned_readahead"; }
  bool is_learned() const override { return true; }
  int64_t PrefetchChunks(const ReadaheadContext& context) override {
    if (broken) {
      return 1 << 24;  // far beyond any legal bound
    }
    return context.features[1] > 0.5 ? 8 : 0;
  }
  bool broken = false;
};

TEST_F(IntegrationTest, P3ReadaheadBoundsGuardrailFallsBackViaReplace) {
  Kernel kernel;
  ReadaheadManager manager(kernel, {});
  auto learned = std::make_shared<DriftingReadahead>();
  auto fallback = std::make_shared<FixedWindowReadahead>(8);
  ASSERT_TRUE(kernel.registry().Register(learned).ok());
  ASSERT_TRUE(kernel.registry().Register(fallback).ok());
  ASSERT_TRUE(kernel.registry().BindSlot("mem.readahead", "learned_readahead").ok());

  // P3 guardrail: raw decision must stay within [0, ra.max_legal]; on
  // violation, swap in the heuristic and log.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(100);
  options.check_start = Milliseconds(100);
  ASSERT_TRUE(kernel
                  .LoadGuardrails(OutputBoundsSpec(
                      "ra-bounds", "ra.last_decision", "ra.zero", "ra.max_legal",
                      "REPLACE(learned_readahead, heuristic_fixed_window); "
                      "REPORT(\"readahead out of bounds\", ra.last_decision)",
                      options))
                  .ok());
  kernel.store().Save("ra.zero", Value(0));

  // Healthy phase: sequential reads, learned policy behaving.
  uint64_t chunk = 0;
  for (int i = 0; i < 200; ++i) {
    kernel.Run(kernel.now() + Milliseconds(2));
    manager.Read(chunk++);
  }
  EXPECT_EQ(kernel.registry().Active("mem.readahead").value()->name(), "learned_readahead");

  // Model breaks: guardrail must catch it within one check interval and
  // swap in the heuristic.
  learned->broken = true;
  for (int i = 0; i < 100; ++i) {
    kernel.Run(kernel.now() + Milliseconds(2));
    manager.Read(chunk++);
  }
  EXPECT_EQ(kernel.registry().Active("mem.readahead").value()->name(),
            "heuristic_fixed_window");
  EXPECT_GT(manager.stats().illegal_decisions, 0u);
  EXPECT_GE(kernel.engine().reporter().CountFor("ra-bounds"), 1u);
  // The heuristic keeps the workload served: hit rate stays high afterward.
  const uint64_t hits_before = manager.stats().hits;
  for (int i = 0; i < 200; ++i) {
    kernel.Run(kernel.now() + Milliseconds(2));
    manager.Read(chunk++);
  }
  EXPECT_GT(manager.stats().hits, hits_before + 150);
}

// A pick-next "model" that always favors one task — the starvation failure
// mode for P6.
class BiasedPickPolicy : public SchedPickPolicy {
 public:
  std::string name() const override { return "learned_picker"; }
  bool is_learned() const override { return true; }
  size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime) override {
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (runnable[i]->name == "favored") {
        return i;
      }
    }
    return 0;
  }
};

TEST_F(IntegrationTest, P6StarvationGuardrailRestoresLiveness) {
  Kernel kernel;
  Scheduler scheduler(kernel);
  auto biased = std::make_shared<BiasedPickPolicy>();
  auto fair = std::make_shared<FairPickPolicy>();
  ASSERT_TRUE(kernel.registry().Register(biased).ok());
  ASSERT_TRUE(kernel.registry().Register(fair).ok());
  ASSERT_TRUE(kernel.registry().BindSlot("sched.pick_next", "learned_picker").ok());

  const TaskId favored = scheduler.AddTask("favored");
  const TaskId victim = scheduler.AddTask("victim");

  // P6: no ready task starved beyond 100ms; fall back to the fair picker.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(50);
  options.check_start = Milliseconds(50);
  options.window = Milliseconds(200);
  ASSERT_TRUE(kernel
                  .LoadGuardrails(LivenessSpec(
                      "no-starvation", "sched.starved_ms", 100.0,
                      "REPLACE(learned_picker, sched_fair); REPORT(\"starvation\")",
                      options))
                  .ok());

  // Both tasks always have work; the biased picker starves the victim.
  ASSERT_TRUE(scheduler.SubmitBurst(favored, Seconds(10)).ok());
  ASSERT_TRUE(scheduler.SubmitBurst(victim, Seconds(10)).ok());
  scheduler.PumpFor(Seconds(2));
  kernel.Run(Seconds(2));

  // The guardrail must have replaced the picker...
  EXPECT_EQ(kernel.registry().Active("sched.pick_next").value()->name(), "sched_fair");
  // ...and afterwards the victim runs again.
  const Duration victim_cpu_at_switch = scheduler.GetTask(victim).value().total_cpu;
  scheduler.PumpFor(Seconds(2));
  kernel.Run(Seconds(4));
  EXPECT_GT(scheduler.GetTask(victim).value().total_cpu,
            victim_cpu_at_switch + Milliseconds(100));
}

TEST_F(IntegrationTest, P6DeprioritizeKillsNoisyNeighbor) {
  Kernel kernel;
  Scheduler scheduler(kernel);
  const TaskId hog = scheduler.AddTask("hog", 10.0);
  scheduler.AddTask("latency_sensitive", 1.0);

  // Liveness property guarded by the OOM-killer-style action: kill the hog.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(50);
  options.check_start = Milliseconds(50);
  options.window = Milliseconds(500);
  ASSERT_TRUE(kernel
                  .LoadGuardrails(LivenessSpec("kill-hog", "sched.starved_ms", 100.0,
                                               "DEPRIORITIZE({hog}, {0 - 1})", options))
                  .ok());

  ASSERT_TRUE(scheduler.SubmitBurst(hog, Seconds(30)).ok());
  auto ls_task = scheduler.GetTaskByName("latency_sensitive");
  ASSERT_TRUE(ls_task.ok());
  ASSERT_TRUE(scheduler.SubmitBurst(ls_task.value().id, Seconds(30)).ok());
  // Biased-by-weight fair policy still runs both; to force starvation, use
  // the hog-favoring weight and a pick policy that follows weights strictly.
  struct WeightGreedy : SchedPickPolicy {
    std::string name() const override { return "weight_greedy"; }
    size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime) override {
      size_t best = 0;
      for (size_t i = 1; i < runnable.size(); ++i) {
        if (runnable[i]->weight > runnable[best]->weight) {
          best = i;
        }
      }
      return best;
    }
  };
  ASSERT_TRUE(kernel.registry().Register(std::make_shared<WeightGreedy>()).ok());
  ASSERT_TRUE(kernel.registry().BindSlot("sched.pick_next", "weight_greedy").ok());

  scheduler.PumpFor(Seconds(2));
  kernel.Run(Seconds(2));

  EXPECT_EQ(scheduler.GetTask(hog).value().state, TaskState::kDead);
  EXPECT_GE(scheduler.stats().kills, 1u);
}

TEST_F(IntegrationTest, P1DriftTriggersRetrainAndModelImproves) {
  Kernel kernel;
  ASSERT_TRUE(kernel
                  .LoadGuardrails(InDistributionSpec("drift-watch", "model.drift", 0.3,
                                                     "RETRAIN(io_model, recent_window)"))
                  .ok());

  Rng rng(99);
  std::vector<std::vector<double>> training_rows;
  for (int i = 0; i < 2000; ++i) {
    training_rows.push_back({rng.Normal(0, 1)});
  }
  MultiDriftDetector detector(1);
  ASSERT_TRUE(detector.Fit(training_rows).ok());

  // Shifted live inputs.
  for (int i = 0; i < 512; ++i) {
    detector.Observe({rng.Normal(6, 1)});
  }
  detector.Publish(kernel.store(), "model.drift");
  kernel.Run(Seconds(2));

  auto request = kernel.engine().retrain_queue().Pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->model, "io_model");
  // The retrain consumer refits the detector on the new distribution; the
  // drift score recovers.
  std::vector<std::vector<double>> new_rows;
  for (int i = 0; i < 2000; ++i) {
    new_rows.push_back({rng.Normal(6, 1)});
  }
  ASSERT_TRUE(detector.Fit(new_rows).ok());
  for (int i = 0; i < 512; ++i) {
    detector.Observe({rng.Normal(6, 1)});
  }
  EXPECT_LT(detector.Publish(kernel.store(), "model.drift"), 0.3);
}

TEST_F(IntegrationTest, GuardrailUpdatedAtRuntimeWithoutReboot) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail threshold {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(metric, 0) <= 10 },
      action: { INCR(fires) }
    }
  )").ok());
  kernel.store().Save("metric", Value(50));
  kernel.Run(Seconds(2));
  EXPECT_EQ(kernel.store().LoadOr("fires", Value(0)).NumericOr(0), 2.0);

  // Operator loosens the threshold mid-run; same guardrail name.
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail threshold {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(metric, 0) <= 100 },
      action: { INCR(fires) }
    }
  )").ok());
  kernel.Run(Seconds(5));
  EXPECT_EQ(kernel.store().LoadOr("fires", Value(0)).NumericOr(0), 2.0);  // no new fires
  EXPECT_EQ(kernel.engine().MonitorNames().size(), 1u);
}

// The §6 feedback-loop scenario: two guardrails whose actions invalidate
// each other's property oscillate; hysteresis + cooldown damp the loop.
TEST_F(IntegrationTest, FeedbackLoopOscillatesWithoutDamping) {
  Kernel kernel;
  // Guardrail A: wants mode == 0. Guardrail B: wants mode == 1. Each
  // "fixes" the system by setting its preferred mode, violating the other.
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail wants-zero {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(mode, 0) == 0 },
      action: { SAVE(mode, 0); INCR(a_fires) }
    }
    guardrail wants-one {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(mode, 0) == 1 },
      action: { SAVE(mode, 1); INCR(b_fires) }
    }
  )").ok());
  kernel.Run(Seconds(20));
  // Undamped: the pair fires continuously, every check interval.
  const double a = kernel.store().LoadOr("a_fires", Value(0)).NumericOr(0);
  const double b = kernel.store().LoadOr("b_fires", Value(0)).NumericOr(0);
  EXPECT_GE(a + b, 19.0);
}

TEST_F(IntegrationTest, CooldownDampsFeedbackLoop) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail wants-zero {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(mode, 0) == 0 },
      action: { SAVE(mode, 0); INCR(a_fires) },
      meta: { cooldown = 10s }
    }
    guardrail wants-one {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(mode, 0) == 1 },
      action: { SAVE(mode, 1); INCR(b_fires) },
      meta: { cooldown = 10s }
    }
  )").ok());
  kernel.Run(Seconds(20));
  const double a = kernel.store().LoadOr("a_fires", Value(0)).NumericOr(0);
  const double b = kernel.store().LoadOr("b_fires", Value(0)).NumericOr(0);
  // With a 10s cooldown each side fires at most ~2 times in 20s.
  EXPECT_LE(a, 3.0);
  EXPECT_LE(b, 3.0);
}

TEST_F(IntegrationTest, SeverityPropagatesToReports) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail critical-one {
      trigger: { TIMER(1s, 1s) },
      rule: { false },
      action: { REPORT("bad") },
      meta: { severity = critical }
    }
  )").ok());
  kernel.Run(Seconds(1));
  const auto records = kernel.engine().reporter().RecordsFor("critical-one");
  ASSERT_GE(records.size(), 1u);
  for (const auto& record : records) {
    EXPECT_EQ(record.severity, Severity::kCritical);
  }
}

TEST_F(IntegrationTest, MultipleGuardrailsOverOneSubsystemCompose) {
  // Incremental deployment (§3.3): bounds + quality + overhead guardrails
  // all watching the readahead subsystem simultaneously.
  Kernel kernel;
  ReadaheadManager manager(kernel, {});
  auto learned = std::make_shared<DriftingReadahead>();
  auto fallback = std::make_shared<FixedWindowReadahead>(8);
  ASSERT_TRUE(kernel.registry().Register(learned).ok());
  ASSERT_TRUE(kernel.registry().Register(fallback).ok());
  ASSERT_TRUE(kernel.registry().BindSlot("mem.readahead", "learned_readahead").ok());
  kernel.store().Save("ra.zero", Value(0));

  PropertySpecOptions fast_check;
  fast_check.check_interval = Milliseconds(100);
  fast_check.check_start = Milliseconds(100);
  fast_check.window = Seconds(2);
  ASSERT_TRUE(kernel
                  .LoadGuardrails(OutputBoundsSpec("g1", "ra.last_decision", "ra.zero",
                                                   "ra.max_legal", "REPORT()", fast_check))
                  .ok());
  ASSERT_TRUE(kernel
                  .LoadGuardrails(DecisionQualityAbsoluteSpec("g2", "ra.hit", 0.2, "REPORT()",
                                                              fast_check))
                  .ok());
  ASSERT_TRUE(kernel
                  .LoadGuardrails(LivenessSpec("g3", "sched.starved_ms", 1000.0, "REPORT()",
                                               fast_check))
                  .ok());
  EXPECT_EQ(kernel.engine().MonitorNames().size(), 3u);

  uint64_t chunk = 0;
  for (int i = 0; i < 300; ++i) {
    kernel.Run(kernel.now() + Milliseconds(2));
    manager.Read(chunk++);
  }
  // All three evaluated; none crashed the run.
  for (const std::string& name : kernel.engine().MonitorNames()) {
    EXPECT_GT(kernel.engine().StatsFor(name).value().evaluations, 0u) << name;
  }
}

}  // namespace
}  // namespace osguard
