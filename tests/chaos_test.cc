// Property/differential tests for the osguard::chaos fault-injection layer.
//
// The three contract properties (see src/chaos/chaos.h):
//   1. Seed-replay — decisions are a pure function of (seed, site name,
//      query index, query time): replaying with the same seed is
//      bit-identical, across 1000 seeds and through the full simulator.
//   2. Differential baseline — an attached engine whose sites are all off
//      produces exactly the trace of a run with no chaos engine at all.
//   3. Isolation — arming, querying, or registering *other* sites never
//      perturbs a site's stream.
//
// CI runs this binary under several OSGUARD_CHAOS_SEED values (see
// .github/workflows); the env var offsets the seed base so each matrix job
// sweeps a disjoint seed range.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/sim/blk_layer.h"
#include "src/sim/kernel.h"
#include "src/sim/ssd_device.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace osguard {
namespace {

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

// FNV-1a accumulation — the trace fingerprint used for replay comparison.
uint64_t HashMix(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

// --- Property 1: seed replay, engine level, 1000 seeds ---

// Arms a seed-parameterized mix of all three active modes and fingerprints a
// fixed query sequence.
uint64_t DecisionTraceFingerprint(uint64_t seed) {
  ChaosEngine chaos(seed);

  FaultPlanConfig bern;
  bern.mode = FaultMode::kBernoulli;
  bern.p = 0.01 + static_cast<double>(seed % 50) / 100.0;
  bern.latency = Microseconds(static_cast<int64_t>(seed % 300));
  EXPECT_TRUE(chaos.Arm("a.bernoulli", bern).ok());

  FaultPlanConfig sched;
  sched.mode = FaultMode::kSchedule;
  sched.nth = {seed % 7, seed % 7 + 3, seed % 7 + 41};
  sched.value = static_cast<double>(seed % 11);
  EXPECT_TRUE(chaos.Arm("b.schedule", sched).ok());

  FaultPlanConfig burst;
  burst.mode = FaultMode::kBurst;
  burst.period = Milliseconds(1 + static_cast<int64_t>(seed % 5));
  burst.burst = burst.period / 2;
  burst.p = 0.5;
  EXPECT_TRUE(chaos.Arm("c.burst", burst).ok());

  const ChaosSiteId ids[] = {chaos.FindSite("a.bernoulli"), chaos.FindSite("b.schedule"),
                             chaos.FindSite("c.burst")};
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 300; ++i) {
    const SimTime now = static_cast<SimTime>(i) * Microseconds(137);
    for (const ChaosSiteId id : ids) {
      const FaultDecision d = chaos.Query(id, now);
      h = HashMix(h, d.inject ? 1 : 0);
      h = HashMix(h, static_cast<uint64_t>(d.latency));
      h = HashMix(h, static_cast<uint64_t>(d.value));
    }
  }
  return h;
}

TEST(ChaosReplayTest, ThousandSeedsReplayBitIdentically) {
  const uint64_t base = SeedBase();
  std::set<uint64_t> distinct;
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t seed = base + i;
    const uint64_t first = DecisionTraceFingerprint(seed);
    const uint64_t second = DecisionTraceFingerprint(seed);
    ASSERT_EQ(first, second) << "seed " << seed << " did not replay";
    distinct.insert(first);
  }
  // Different seeds produce genuinely different fault traces: the sweep is
  // not vacuously hashing one constant sequence a thousand times.
  EXPECT_GT(distinct.size(), 900u);
}

// --- Property 1 through the full simulator ---

// One block-layer run: fixed workload, optional chaos. Returns the exact
// per-I/O latency sequence.
std::vector<Duration> RunBlockTrace(ChaosEngine* chaos, int ios = 2000) {
  Kernel kernel;
  if (chaos != nullptr) {
    kernel.AttachChaos(chaos);
  }
  SsdConfig primary_config;
  primary_config.seed = 11;
  primary_config.gc_per_write = 0.05;
  SsdConfig replica_config = primary_config;
  replica_config.seed = 12;
  SsdDevice primary("primary", primary_config);
  SsdDevice replica("replica", replica_config);
  if (chaos != nullptr) {
    primary.AttachChaos(chaos);
  }
  BlockLayer blk(kernel, &primary, &replica);

  std::vector<Duration> latencies;
  latencies.reserve(static_cast<size_t>(ios));
  Rng workload(99);
  SimTime t = 0;
  for (int i = 0; i < ios; ++i) {
    t += Microseconds(workload.UniformInt(1, 400));
    kernel.Run(t);
    const IoOutcome outcome =
        blk.SubmitIo(static_cast<uint64_t>(workload.UniformInt(0, 4095)),
                     workload.Bernoulli(0.1));
    latencies.push_back(outcome.latency);
  }
  return latencies;
}

FaultPlanConfig StormPlan() {
  FaultPlanConfig plan;
  plan.mode = FaultMode::kBernoulli;
  plan.p = 0.05;
  plan.latency = Milliseconds(2);
  return plan;
}

TEST(ChaosReplayTest, FullSimulatorRunsReplayAcrossSeeds) {
  const uint64_t base = SeedBase();
  for (uint64_t i = 0; i < 8; ++i) {
    const uint64_t seed = base + 1000 + i;
    ChaosEngine first(seed);
    ASSERT_TRUE(first.Arm(kChaosSiteSsdLatency, StormPlan()).ok());
    ChaosEngine second(seed);
    ASSERT_TRUE(second.Arm(kChaosSiteSsdLatency, StormPlan()).ok());
    const std::vector<Duration> a = RunBlockTrace(&first);
    const std::vector<Duration> b = RunBlockTrace(&second);
    ASSERT_EQ(a, b) << "seed " << seed;
    EXPECT_GT(first.total_injected(), 0u) << "seed " << seed;
  }
}

// --- Property 2: rate-0 differential baseline ---

TEST(ChaosDifferentialTest, AttachedButOffEngineMatchesUninjectedBaseline) {
  const std::vector<Duration> baseline = RunBlockTrace(nullptr);

  // Attached engine, every canonical site registered, nothing armed.
  ChaosEngine registered_only(42);
  registered_only.RegisterSite(kChaosSiteSsdLatency);
  registered_only.RegisterSite(kChaosSiteSsdError);
  registered_only.RegisterSite(kChaosSiteMispredict);
  const std::vector<Duration> shadow = RunBlockTrace(&registered_only);
  EXPECT_EQ(baseline, shadow);

  // Armed-then-disarmed sites are equally inert.
  ChaosEngine disarmed(42);
  ASSERT_TRUE(disarmed.Arm(kChaosSiteSsdLatency, StormPlan()).ok());
  disarmed.DisarmAll();
  EXPECT_EQ(baseline, RunBlockTrace(&disarmed));

  // Sanity: the same plan *armed* does diverge — the differential test can
  // actually detect injection.
  ChaosEngine armed(42);
  ASSERT_TRUE(armed.Arm(kChaosSiteSsdLatency, StormPlan()).ok());
  EXPECT_NE(baseline, RunBlockTrace(&armed));
}

TEST(ChaosDifferentialTest, OffSitesConsumeNoRandomness) {
  // Interleaving queries to an unarmed site must not shift an armed site's
  // stream: same armed decisions with and without the interleaved noise.
  FaultPlanConfig plan;
  plan.mode = FaultMode::kBernoulli;
  plan.p = 0.5;

  ChaosEngine lone(7);
  ASSERT_TRUE(lone.Arm("armed.site", plan).ok());
  const ChaosSiteId lone_id = lone.FindSite("armed.site");
  std::vector<bool> lone_decisions;
  for (int i = 0; i < 200; ++i) {
    lone_decisions.push_back(lone.ShouldInject(lone_id, i));
  }

  ChaosEngine noisy(7);
  ASSERT_TRUE(noisy.Arm("armed.site", plan).ok());
  const ChaosSiteId armed_id = noisy.FindSite("armed.site");
  const ChaosSiteId off_id = noisy.RegisterSite("off.site");
  std::vector<bool> noisy_decisions;
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(noisy.ShouldInject(off_id, i));  // unarmed: never injects
    noisy_decisions.push_back(noisy.ShouldInject(armed_id, i));
    EXPECT_FALSE(noisy.ShouldInject(off_id, i));
  }
  EXPECT_EQ(lone_decisions, noisy_decisions);
}

// --- Property 3: per-site stream isolation ---

TEST(ChaosIsolationTest, RegistrationOrderAndOtherSitesAreIrrelevant) {
  FaultPlanConfig plan_x;
  plan_x.mode = FaultMode::kBernoulli;
  plan_x.p = 0.3;
  FaultPlanConfig plan_y;
  plan_y.mode = FaultMode::kBernoulli;
  plan_y.p = 0.7;

  // Engine A: x first; engine B: y first plus a third armed site that A
  // never sees, queried interleaved.
  ChaosEngine a(123);
  ASSERT_TRUE(a.Arm("x", plan_x).ok());
  ASSERT_TRUE(a.Arm("y", plan_y).ok());
  ChaosEngine b(123);
  ASSERT_TRUE(b.Arm("y", plan_y).ok());
  ASSERT_TRUE(b.Arm("z", plan_y).ok());
  ASSERT_TRUE(b.Arm("x", plan_x).ok());

  const ChaosSiteId ax = a.FindSite("x");
  const ChaosSiteId bx = b.FindSite("x");
  const ChaosSiteId bz = b.FindSite("z");
  for (int i = 0; i < 300; ++i) {
    b.ShouldInject(bz, i);  // extra traffic on another armed site
    ASSERT_EQ(a.ShouldInject(ax, i), b.ShouldInject(bx, i)) << "query " << i;
  }
}

TEST(ChaosIsolationTest, ReseedAndRearmRestartTheStream) {
  FaultPlanConfig plan;
  plan.mode = FaultMode::kBernoulli;
  plan.p = 0.4;

  ChaosEngine chaos(9);
  ASSERT_TRUE(chaos.Arm("s", plan).ok());
  const ChaosSiteId id = chaos.FindSite("s");
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(chaos.ShouldInject(id, i));
  }
  // Re-arming resets the stream to query index 0.
  ASSERT_TRUE(chaos.Arm("s", plan).ok());
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) {
    second.push_back(chaos.ShouldInject(id, i));
  }
  EXPECT_EQ(first, second);

  // A different seed gives a different stream (overwhelmingly likely).
  chaos.Reseed(10);
  ASSERT_TRUE(chaos.Arm("s", plan).ok());
  std::vector<bool> reseeded;
  for (int i = 0; i < 100; ++i) {
    reseeded.push_back(chaos.ShouldInject(id, i));
  }
  EXPECT_NE(first, reseeded);
}

// --- Mode semantics ---

TEST(ChaosModeTest, ScheduleInjectsExactlyAtTheGivenIndices) {
  ChaosEngine chaos(1);
  FaultPlanConfig plan;
  plan.mode = FaultMode::kSchedule;
  plan.nth = {0, 3, 7};
  plan.value = 2.5;
  ASSERT_TRUE(chaos.Arm("s", plan).ok());
  const ChaosSiteId id = chaos.FindSite("s");
  for (uint64_t i = 0; i < 12; ++i) {
    const FaultDecision d = chaos.Query(id, static_cast<SimTime>(i));
    const bool expected = i == 0 || i == 3 || i == 7;
    EXPECT_EQ(d.inject, expected) << "index " << i;
    if (d.inject) {
      EXPECT_EQ(d.value, 2.5);
    }
  }
  EXPECT_EQ(chaos.StatsFor(id).queries, 12u);
  EXPECT_EQ(chaos.StatsFor(id).injected, 3u);
}

TEST(ChaosModeTest, BurstInjectsOnlyInsideStormWindows) {
  ChaosEngine chaos(1);
  FaultPlanConfig plan;
  plan.mode = FaultMode::kBurst;
  plan.period = Milliseconds(10);
  plan.burst = Milliseconds(2);
  plan.p = 1.0;
  ASSERT_TRUE(chaos.Arm("s", plan).ok());
  const ChaosSiteId id = chaos.FindSite("s");
  for (int i = 0; i < 500; ++i) {
    const SimTime now = static_cast<SimTime>(i) * Microseconds(100);
    const bool in_window = now % Milliseconds(10) < Milliseconds(2);
    EXPECT_EQ(chaos.ShouldInject(id, now), in_window) << "t=" << now;
  }
}

TEST(ChaosModeTest, InvalidPlansAreRejected) {
  ChaosEngine chaos(1);
  FaultPlanConfig plan;
  plan.mode = FaultMode::kBernoulli;
  plan.p = 1.5;
  EXPECT_FALSE(chaos.Arm("s", plan).ok());
  plan.p = 0.0;
  EXPECT_FALSE(chaos.Arm("s", plan).ok());  // bernoulli needs p > 0

  FaultPlanConfig sched;
  sched.mode = FaultMode::kSchedule;
  EXPECT_FALSE(chaos.Arm("s", sched).ok());  // empty schedule
  sched.nth = {5, 3};
  EXPECT_FALSE(chaos.Arm("s", sched).ok());  // unsorted
  sched.nth = {3, 3};
  EXPECT_FALSE(chaos.Arm("s", sched).ok());  // duplicate

  FaultPlanConfig burst;
  burst.mode = FaultMode::kBurst;
  burst.period = Milliseconds(1);
  burst.burst = Milliseconds(2);
  burst.p = 1.0;
  EXPECT_FALSE(chaos.Arm("s", burst).ok());  // burst > period
}

// --- DSL chaos block, end to end ---

constexpr char kChaosOnlySpec[] = R"(
chaos {
  seed = 99,
  site ssd.latency_spike { mode = bernoulli, p = 0.25, latency = 2ms },
  site engine.callout_drop { mode = schedule, nth = {4, 2, 2, 9} },
  site model.mispredict { mode = burst, period = 10ms, burst = 2ms },
  site runtime.helper_fail { mode = off }
}
)";

TEST(ChaosDslTest, ChaosBlockParsesAnalyzesAndArms) {
  auto spec = ParseSpecSource(kChaosOnlySpec);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto analyzed = Analyze(std::move(spec).value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().message();
  ASSERT_TRUE(analyzed.value().chaos.has_value());
  const AnalyzedChaos& chaos_spec = *analyzed.value().chaos;
  EXPECT_TRUE(chaos_spec.has_seed);
  EXPECT_EQ(chaos_spec.seed, 99u);
  ASSERT_EQ(chaos_spec.sites.size(), 4u);
  // Sema sorts and dedups the schedule for spec authors.
  EXPECT_EQ(chaos_spec.sites[1].nth, (std::vector<uint64_t>{2, 4, 9}));
  // A storm with unspecified p injects every in-window event.
  EXPECT_EQ(chaos_spec.sites[2].p, 1.0);

  ChaosEngine engine(0);
  ASSERT_TRUE(ApplyChaosSpec(chaos_spec, engine).ok());
  EXPECT_EQ(engine.seed(), 99u);
  const ChaosSiteId spike = engine.FindSite(kChaosSiteSsdLatency);
  ASSERT_NE(spike, kInvalidChaosSite);
  EXPECT_EQ(engine.PlanFor(spike).mode, FaultMode::kBernoulli);
  EXPECT_EQ(engine.PlanFor(spike).latency, Milliseconds(2));
  const ChaosSiteId off = engine.FindSite(kChaosSiteHelperFail);
  ASSERT_NE(off, kInvalidChaosSite);
  EXPECT_EQ(engine.PlanFor(off).mode, FaultMode::kOff);
}

TEST(ChaosDslTest, BadChaosBlocksFailCleanly) {
  const char* bad[] = {
      "chaos { site s { mode = teapot } }",
      "chaos { site s { p = 0.5 } }",                       // no mode
      "chaos { site s { mode = bernoulli } }",              // p missing
      "chaos { seed = -4, site s { mode = off } }",         // negative seed
      "chaos { site s { mode = off }, site s { mode = off } }",  // dup site
      "chaos { tea = 4 }",                                  // unknown attr
      "chaos { site s { mode = burst, period = 1ms, burst = 2ms } }",
  };
  for (const char* source : bad) {
    auto spec = ParseSpecSource(source);
    if (!spec.ok()) {
      continue;  // rejected at parse: fine, as long as it's clean
    }
    auto analyzed = Analyze(std::move(spec).value());
    EXPECT_FALSE(analyzed.ok()) << source;
    EXPECT_FALSE(analyzed.status().message().empty()) << source;
  }
}

TEST(ChaosDslTest, ChaosBlockWithoutAttachedEngineIsInert) {
  // The same spec must load on a kernel with no chaos engine — validated but
  // inert — so one spec drives both the chaos run and its clean shadow run.
  Kernel kernel;
  EXPECT_TRUE(kernel.LoadGuardrails(kChaosOnlySpec).ok());
}

// --- Runtime sites (engine callouts, helper failures) ---

constexpr char kFunctionGuardrail[] = R"(
guardrail fn-watch {
  trigger: { FUNCTION(blk_submit_io) },
  rule: { LOAD_OR(x, 0) <= 100 },
  action: { REPORT("fn-watch fired") }
}
)";

TEST(ChaosRuntimeTest, CalloutDropEatsFunctionTriggers) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ChaosEngine chaos(3);
  kernel.AttachChaos(&chaos);
  const std::string source =
      std::string(kFunctionGuardrail) +
      "chaos { site engine.callout_drop { mode = bernoulli, p = 1.0 } }";
  ASSERT_TRUE(kernel.LoadGuardrails(source).ok());
  for (int i = 0; i < 5; ++i) {
    kernel.Callout("blk_submit_io");
  }
  EXPECT_EQ(kernel.engine().stats().callouts_dropped, 5u);
  EXPECT_EQ(kernel.engine().stats().function_firings, 0u);
}

TEST(ChaosRuntimeTest, CalloutDelayShiftsButDeliversTriggers) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ChaosEngine chaos(3);
  kernel.AttachChaos(&chaos);
  const std::string source =
      std::string(kFunctionGuardrail) +
      "chaos { site engine.callout_delay { mode = schedule, nth = 0, latency = 5ms } }";
  ASSERT_TRUE(kernel.LoadGuardrails(source).ok());
  kernel.Callout("blk_submit_io");
  kernel.Callout("blk_submit_io");
  EXPECT_EQ(kernel.engine().stats().callouts_delayed, 1u);
  EXPECT_EQ(kernel.engine().stats().function_firings, 2u);
  // The delayed callout moved the engine clock past the injected latency.
  EXPECT_GE(kernel.engine().now(), Milliseconds(5));
}

TEST(ChaosRuntimeTest, HelperFailuresBecomeCleanMonitorErrors) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ChaosEngine chaos(3);
  kernel.AttachChaos(&chaos);
  const std::string source = R"(
guardrail timer-watch {
  trigger: { TIMER(1s, 1s) },
  rule: { LOAD_OR(x, 0) <= 100 },
  action: { REPORT("should never fire") }
}
chaos { site runtime.helper_fail { mode = bernoulli, p = 1.0 } }
)";
  ASSERT_TRUE(kernel.LoadGuardrails(source).ok());
  kernel.Run(Seconds(5));
  const auto stats = kernel.engine().StatsFor("timer-watch");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().evaluations, 4u);
  // Every evaluation faulted cleanly: errors, no violations, no actions.
  EXPECT_EQ(stats.value().errors, stats.value().evaluations);
  EXPECT_EQ(stats.value().violations, 0u);
  EXPECT_EQ(stats.value().action_firings, 0u);
}

// --- Device and block-layer sites ---

TEST(ChaosDeviceTest, LatencySpikeAndIoErrorHitScheduledIos) {
  ChaosEngine chaos(5);
  FaultPlanConfig spike;
  spike.mode = FaultMode::kSchedule;
  spike.nth = {0};
  spike.latency = Milliseconds(2);
  ASSERT_TRUE(chaos.Arm(kChaosSiteSsdLatency, spike).ok());
  FaultPlanConfig error;
  error.mode = FaultMode::kSchedule;
  error.nth = {1};
  ASSERT_TRUE(chaos.Arm(kChaosSiteSsdError, error).ok());

  SsdConfig config;
  config.gc_per_read = 0.0;  // isolate the injected spike from natural GC
  SsdDevice device("dev", config);
  device.AttachChaos(&chaos);

  const IoResult first = device.Submit(0, 0, false);
  EXPECT_GE(first.latency, Milliseconds(2));
  EXPECT_FALSE(first.error);

  const IoResult second = device.Submit(Seconds(1), 1, false);
  EXPECT_TRUE(second.error);
  EXPECT_LT(second.latency, Milliseconds(2));

  const IoResult third = device.Submit(Seconds(2), 2, false);
  EXPECT_FALSE(third.error);
  EXPECT_LT(third.latency, Milliseconds(2));

  EXPECT_EQ(device.injected_spikes(), 1u);
  EXPECT_EQ(device.injected_errors(), 1u);
}

TEST(ChaosBlockLayerTest, MispredictFlipsThePolicyDecision) {
  Kernel kernel;
  ChaosEngine chaos(5);
  FaultPlanConfig flip;
  flip.mode = FaultMode::kBernoulli;
  flip.p = 1.0;
  ASSERT_TRUE(chaos.Arm(kChaosSiteMispredict, flip).ok());
  kernel.AttachChaos(&chaos);

  SsdConfig config;
  SsdDevice primary("primary", config);
  SsdConfig replica_config;
  replica_config.seed = 2;
  SsdDevice replica("replica", replica_config);
  BlockLayer blk(kernel, &primary, &replica);

  // Without a bound policy there is no prediction to corrupt.
  const IoOutcome bare = blk.SubmitIo(1, false);
  EXPECT_FALSE(bare.mispredicted);

  auto policy = std::make_shared<AlwaysPrimaryPolicy>();
  ASSERT_TRUE(kernel.registry().Register(policy).ok());
  ASSERT_TRUE(kernel.registry().BindSlot("blk.submit_predictor", policy->name()).ok());

  const IoOutcome outcome = blk.SubmitIo(0, false);
  // AlwaysPrimary said "fast"; the storm flipped it to "slow" -> failover.
  EXPECT_TRUE(outcome.mispredicted);
  EXPECT_TRUE(outcome.predicted_slow);
  EXPECT_TRUE(outcome.redirected);
  EXPECT_EQ(blk.stats().mispredictions, 1u);
}

TEST(ChaosBlockLayerTest, InjectedIoErrorFailsOverToTheReplica) {
  Kernel kernel;
  ChaosEngine chaos(5);
  FaultPlanConfig error;
  error.mode = FaultMode::kSchedule;
  error.nth = {0};
  ASSERT_TRUE(chaos.Arm(kChaosSiteSsdError, error).ok());
  kernel.AttachChaos(&chaos);

  SsdConfig config;
  SsdDevice primary("primary", config);
  SsdConfig replica_config;
  replica_config.seed = 2;
  SsdDevice replica("replica", replica_config);
  primary.AttachChaos(&chaos);
  BlockLayer blk(kernel, &primary, &replica);

  const IoOutcome outcome = blk.SubmitIo(0, false);
  EXPECT_TRUE(outcome.io_error);
  EXPECT_TRUE(outcome.redirected);
  EXPECT_EQ(blk.stats().io_errors, 1u);
  // The error is observable to guardrails (a COUNT over the series).
  const auto errors = kernel.store().Aggregate("blk.io_error", AggKind::kCount,
                                               Seconds(10), kernel.now());
  ASSERT_TRUE(errors.ok());
  EXPECT_EQ(errors.value(), 1.0);
}

}  // namespace
}  // namespace osguard
