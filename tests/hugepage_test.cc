// Huge-page substrate tests, ending in the paper's own §2 property:
// "Page fault latencies must not exceed 50ms".

#include <gtest/gtest.h>

#include "src/properties/specs.h"
#include "src/sim/hugepage.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class HugepageTest : public ::testing::Test {
 protected:
  HugepageTest() { Logger::Global().set_level(LogLevel::kOff); }

  void Bind(std::shared_ptr<HugepagePolicy> policy) {
    ASSERT_TRUE(kernel_.registry().Register(policy).ok());
    ASSERT_TRUE(kernel_.registry().BindSlot("mem.hugepage", policy->name()).ok());
  }

  // Allocation churn: processes touch regions and exit.
  void Churn(MemoryManager& mm, int processes, int regions_each,
             Duration step = Microseconds(50)) {
    for (int p = 0; p < processes; ++p) {
      for (int r = 0; r < regions_each; ++r) {
        kernel_.Run(kernel_.now() + step);
        mm.Touch(static_cast<uint64_t>(p), static_cast<uint64_t>(r));
      }
      if (p % 2 == 1) {
        mm.ReleaseProcess(static_cast<uint64_t>(p));  // churn
      }
    }
  }

  Kernel kernel_;
};

TEST_F(HugepageTest, FirstTouchFaultsRepeatTouchDoesNot) {
  MemoryManager mm(kernel_);
  EXPECT_GT(mm.Touch(1, 0), 0);
  EXPECT_EQ(mm.Touch(1, 0), 0);
  EXPECT_GT(mm.Touch(1, 1), 0);  // new region
  EXPECT_GT(mm.Touch(2, 0), 0);  // same region, different process
  EXPECT_EQ(mm.stats().faults, 3u);
}

TEST_F(HugepageTest, BaseFaultsAreCheapAndPredictable) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<NeverPromotePolicy>());
  for (int r = 0; r < 1000; ++r) {
    EXPECT_EQ(mm.Touch(1, static_cast<uint64_t>(r)), Microseconds(8));
  }
  EXPECT_EQ(mm.stats().stalls, 0u);
  EXPECT_EQ(mm.stats().promotions, 0u);
}

TEST_F(HugepageTest, FreshSystemPromotionIsFast) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<AlwaysPromotePolicy>());
  // Low fragmentation: stall probability ~frag^2 ~ 0.
  const Duration latency = mm.Touch(1, 0);
  EXPECT_EQ(latency, Microseconds(60));
  EXPECT_EQ(mm.stats().promotions, 1u);
}

TEST_F(HugepageTest, FragmentationGrowsWithChurnAndCausesStalls) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<AlwaysPromotePolicy>());
  Churn(mm, 40, 100);
  EXPECT_GT(mm.fragmentation(), 0.3);
  EXPECT_GT(mm.stats().stalls, 0u);
  // The paper's headline number: stalls reach into the hundreds of ms but
  // never exceed the 500ms cap.
  EXPECT_GT(mm.stats().worst_fault_ns, Milliseconds(50));
  EXPECT_LE(mm.stats().worst_fault_ns, Milliseconds(500) + Microseconds(60));
}

TEST_F(HugepageTest, FragAwareHeuristicAvoidsStallRegime) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<FragAwarePolicy>(0.3));
  Churn(mm, 40, 100);
  // It stops promoting once fragmentation crosses its bound, so worst-case
  // fault latency stays moderate.
  EXPECT_LT(mm.stats().worst_fault_ns, Milliseconds(500));
}

TEST_F(HugepageTest, KillSwitchDisablesPromotion) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<AlwaysPromotePolicy>());
  kernel_.store().Save("mm.huge_enabled", Value(false));
  EXPECT_EQ(mm.Touch(1, 0), Microseconds(8));
  EXPECT_EQ(mm.stats().promotions, 0u);
}

TEST_F(HugepageTest, MetricsPublishedToStore) {
  MemoryManager mm(kernel_);
  Bind(std::make_shared<AlwaysPromotePolicy>());
  mm.Touch(1, 0);
  EXPECT_GE(kernel_.store()
                .Aggregate("mm.fault_lat_ms", AggKind::kCount, Seconds(10), kernel_.now())
                .value(),
            1.0);
  EXPECT_TRUE(kernel_.store().Contains("mm.fragmentation"));
}

TEST_F(HugepageTest, PaperPropertyPageFaultLatencyBound) {
  // §2: "Page fault latencies must not exceed 50ms" — written in the DSL,
  // guarding the always-promote policy, with fallback to base pages.
  MemoryManager mm(kernel_);
  Bind(std::make_shared<AlwaysPromotePolicy>());
  PropertySpecOptions options;
  options.check_interval = Milliseconds(100);
  options.check_start = Milliseconds(100);
  options.window = Milliseconds(500);
  ASSERT_TRUE(kernel_.LoadGuardrails(R"(
    guardrail page-fault-bound {
      trigger: { TIMER(100ms, 100ms) },
      rule: { COUNT(mm.fault_lat_ms, 500ms) == 0 || MAX(mm.fault_lat_ms, 500ms) <= 50 },
      action: { SAVE(mm.huge_enabled, false); REPORT("fault latency bound violated") }
    }
  )").ok());

  Churn(mm, 60, 100);
  // The guardrail must have tripped and cut off promotion.
  EXPECT_FALSE(
      kernel_.store().LoadOr("mm.huge_enabled", Value(true)).AsBool().value_or(true));
  EXPECT_GT(kernel_.engine().StatsFor("page-fault-bound").value().violations, 0u);
  // After the cutoff, faults revert to the cheap base path.
  const Duration after = mm.Touch(999, 0);
  EXPECT_EQ(after, Microseconds(8));
}

TEST_F(HugepageTest, ReleaseUnknownProcessIsNoOp) {
  MemoryManager mm(kernel_);
  mm.ReleaseProcess(42);  // never touched anything
  EXPECT_EQ(mm.fragmentation(), 0.0);
}

TEST_F(HugepageTest, ReleaseAllowsRefault) {
  MemoryManager mm(kernel_);
  EXPECT_GT(mm.Touch(1, 0), 0);
  mm.ReleaseProcess(1);
  EXPECT_GT(mm.Touch(1, 0), 0);  // faults again after release
}

}  // namespace
}  // namespace osguard
