// Bounded-memory feature store: key lifecycle, namespace quotas, and
// memory-pressure governance (docs/STORE.md), under `ctest -L retention`:
//   * the spec-level `retention { }` block — parse + semantic validation;
//   * RetentionManager unit behavior on a bare store — idle-TTL scan with
//     the incremental cursor, LRU quota eviction with the stable tie-break,
//     builtin namespace defaults, telemetry publication, chaos storm/breach
//     injection, self-correcting bookkeeping under external reclaims;
//   * engine/kernel integration — TTL reclamation at callout boundaries,
//     quota-breach ONCHANGE corrective hooks, unloaded-monitor counter
//     adoption, agent kill-path and session-end eager reclamation, warm
//     restart carrying the retention image;
//   * off == absent — without a retention block nothing is stamped, no
//     store.retention.* keys are interned, and agent/session state keeps
//     the seed lifecycle exactly.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/actions/agent_control.h"
#include "src/agent/tool_call.h"
#include "src/chaos/chaos.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/retention.h"
#include "src/sim/agent_callout.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/time.h"

namespace osguard {
namespace {

namespace fs = std::filesystem;

class RetentionTest : public ::testing::Test {
 protected:
  RetentionTest() { Logger::Global().set_level(LogLevel::kOff); }
};

Result<AnalyzedSpec> AnalyzeSource(const std::string& source) {
  auto spec = ParseSpecSource(source);
  if (!spec.ok()) {
    return spec.status();
  }
  return Analyze(std::move(spec).value());
}

double LoadNum(Kernel& kernel, const std::string& key) {
  return kernel.store().LoadOr(key, Value(0.0)).NumericOr(-1.0);
}

// --- DSL surface ---

TEST_F(RetentionTest, SpecBlockParsesAndAnalyzes) {
  auto analyzed = AnalyzeSource(R"(
    retention {
      scan_chunk = 128
      namespace "agent.s" { max_keys = 1000, idle_ttl = 30s }
      namespace "tmp." { idle_ttl = 500ms }
      namespace "cache." { max_keys = 64 }
    }
  )");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_TRUE(analyzed.value().retention.has_value());
  const AnalyzedRetention& r = *analyzed.value().retention;
  EXPECT_EQ(r.scan_chunk, 128u);
  ASSERT_EQ(r.namespaces.size(), 3u);
  EXPECT_EQ(r.namespaces[0].prefix, "agent.s");
  EXPECT_EQ(r.namespaces[0].max_keys, 1000u);
  EXPECT_EQ(r.namespaces[0].idle_ttl, Seconds(30));
  EXPECT_EQ(r.namespaces[1].max_keys, 0u);
  EXPECT_EQ(r.namespaces[1].idle_ttl, Milliseconds(500));
  EXPECT_EQ(r.namespaces[2].max_keys, 64u);
  EXPECT_EQ(r.namespaces[2].idle_ttl, 0);
}

TEST_F(RetentionTest, SpecBlockRejectsMalformedInput) {
  // Duplicate block (parse), empty prefix, duplicate prefix, unknown
  // attributes, and a namespace with no policy at all (sema).
  const char* bad[] = {
      "retention { } retention { }",
      R"(retention { namespace "" { idle_ttl = 1s } })",
      R"(retention { namespace "a." { idle_ttl = 1s },
                     namespace "a." { idle_ttl = 2s } })",
      R"(retention { frobnicate = 3 })",
      R"(retention { namespace "a." { frobnicate = 3 } })",
      R"(retention { namespace "a." { } })",
  };
  for (const char* source : bad) {
    EXPECT_FALSE(AnalyzeSource(source).ok()) << source;
  }
}

TEST_F(RetentionTest, AbsentBlockMeansAbsentPolicy) {
  auto analyzed = AnalyzeSource(
      "guardrail g { trigger: { TIMER(0, 1s) }, rule: { true }, "
      "action: { REPORT() } }");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_FALSE(analyzed.value().retention.has_value());
}

// --- RetentionManager unit behavior (bare store) ---

struct BareRetention {
  FeatureStore store;
  RetentionManager manager;
  SimTime now = 0;

  explicit BareRetention(RetentionOptions options) {
    options.enabled = true;
    manager.Configure(options, &store);
    store.SetWriteObserver(
        [this](const StoreWriteInfo& info, const std::string& key) {
          manager.OnWrite(info, key, now);
        });
  }
};

RetentionOptions OneNamespace(const std::string& prefix, uint64_t max_keys,
                              Duration idle_ttl) {
  RetentionOptions options;
  options.scan_chunk = 64;
  options.namespaces.push_back(RetentionNamespaceOptions{prefix, max_keys, idle_ttl});
  return options;
}

TEST_F(RetentionTest, IdleTtlReclaimsGovernedKeysOnly) {
  BareRetention bare(OneNamespace("tmp.", 0, Seconds(1)));
  bare.store.Save("tmp.a", Value(1));
  bare.store.Save("tmp.b", Value(2));
  bare.store.Save("other.c", Value(3));
  bare.now = Milliseconds(900);
  bare.store.Save("tmp.b", Value(4));  // refresh: b's idle clock restarts

  bare.now = Seconds(1);  // a idle 1s (>= ttl), b idle 100ms
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("tmp.a"));
  EXPECT_TRUE(bare.store.Contains("tmp.b"));
  EXPECT_TRUE(bare.store.Contains("other.c"));  // ungoverned: never reclaimed
  EXPECT_EQ(bare.manager.stats().reclaimed_idle, 1u);

  bare.now = Seconds(2);
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("tmp.b"));
  EXPECT_EQ(bare.manager.stats().reclaimed_idle, 2u);
}

TEST_F(RetentionTest, IncrementalCursorCoversAllSlotsAcrossBoundaries) {
  RetentionOptions options = OneNamespace("tmp.", 0, Seconds(1));
  options.scan_chunk = 4;  // 32 governed slots need 8 boundaries per lap
  BareRetention bare(options);
  for (int i = 0; i < 32; ++i) {
    bare.store.Save("tmp.k" + std::to_string(i), Value(i));
  }
  bare.now = Seconds(5);
  for (int boundary = 0; boundary < 16; ++boundary) {
    bare.manager.RunAtBoundary(bare.now);
  }
  EXPECT_EQ(bare.manager.stats().reclaimed_idle, 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(bare.store.Contains("tmp.k" + std::to_string(i))) << i;
  }
}

TEST_F(RetentionTest, QuotaEvictsLeastRecentlyWrittenFirst) {
  BareRetention bare(OneNamespace("q.", 2, 0));
  bare.now = Milliseconds(1);
  bare.store.Save("q.old", Value(1));
  bare.now = Milliseconds(2);
  bare.store.Save("q.mid", Value(2));
  bare.now = Milliseconds(3);
  bare.store.Save("q.new", Value(3));

  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("q.old"));
  EXPECT_TRUE(bare.store.Contains("q.mid"));
  EXPECT_TRUE(bare.store.Contains("q.new"));
  EXPECT_EQ(bare.manager.stats().reclaimed_quota, 1u);
  EXPECT_EQ(bare.manager.stats().quota_breaches, 1u);

  // Refreshing the survivor demotes the other: LRU is by last WRITE.
  bare.now = Milliseconds(4);
  bare.store.Save("q.mid", Value(5));
  bare.now = Milliseconds(5);
  bare.store.Save("q.back", Value(6));
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("q.new"));
  EXPECT_TRUE(bare.store.Contains("q.mid"));
  EXPECT_TRUE(bare.store.Contains("q.back"));
}

TEST_F(RetentionTest, QuotaTieBreakIsStableOnSlotId) {
  BareRetention bare(OneNamespace("q.", 2, 0));
  // All four written at the same instant: eviction order must fall back to
  // slot id (intern order), lowest first — deterministically.
  for (const char* key : {"q.a", "q.b", "q.c", "q.d"}) {
    bare.store.Save(key, Value(1));
  }
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("q.a"));
  EXPECT_FALSE(bare.store.Contains("q.b"));
  EXPECT_TRUE(bare.store.Contains("q.c"));
  EXPECT_TRUE(bare.store.Contains("q.d"));
  EXPECT_EQ(bare.manager.stats().reclaimed_quota, 2u);
}

TEST_F(RetentionTest, PinnedKeysAreLifecycleExempt) {
  BareRetention bare(OneNamespace("tmp.", 1, Seconds(1)));
  bare.store.Save("tmp.pinned", Value(1));
  bare.store.Pin(bare.store.InternKey("tmp.pinned"));
  bare.store.Save("tmp.loose", Value(2));
  bare.now = Seconds(10);
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_TRUE(bare.store.Contains("tmp.pinned"));
  EXPECT_FALSE(bare.store.Contains("tmp.loose"));
}

TEST_F(RetentionTest, BookkeepingConvergesUnderExternalReclaims) {
  BareRetention bare(OneNamespace("tmp.", 2, 0));
  for (int i = 0; i < 4; ++i) {
    bare.store.Save("tmp.k" + std::to_string(i), Value(i));
  }
  // Two keys vanish behind the manager's back (session-teardown style).
  ASSERT_TRUE(bare.store.ReclaimKey("tmp.k0").ok());
  ASSERT_TRUE(bare.store.ReclaimKey("tmp.k1").ok());
  // The census in the quota pass corrects the drifted count: two live keys
  // fit the budget of two, so nothing more is evicted.
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_TRUE(bare.store.Contains("tmp.k2"));
  EXPECT_TRUE(bare.store.Contains("tmp.k3"));
  EXPECT_EQ(bare.manager.stats().reclaimed_quota, 0u);
}

TEST_F(RetentionTest, RecycledSlotIsTrackedAsNewTenant) {
  BareRetention bare(OneNamespace("tmp.", 0, Seconds(1)));
  bare.store.Save("tmp.first", Value(1));
  bare.now = Seconds(2);
  bare.manager.RunAtBoundary(bare.now);
  ASSERT_FALSE(bare.store.Contains("tmp.first"));
  // The recycled slot's new tenant gets a fresh stamp and its own lifecycle.
  bare.store.Save("tmp.second", Value(2));
  bare.manager.RunAtBoundary(bare.now);  // same instant: not idle yet
  EXPECT_TRUE(bare.store.Contains("tmp.second"));
  bare.now = Seconds(4);
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_FALSE(bare.store.Contains("tmp.second"));
  EXPECT_EQ(bare.manager.stats().reclaimed_idle, 2u);
}

TEST_F(RetentionTest, TelemetryKeysPublishValueDiffed) {
  BareRetention bare(OneNamespace("tmp.", 0, Seconds(1)));
  bare.store.Save("tmp.a", Value(std::string("payload")));
  bare.manager.RunAtBoundary(bare.now);
  // First boundary publishes the whole surface.
  EXPECT_TRUE(bare.store.Contains("store.retention.reclaimed"));
  EXPECT_TRUE(bare.store.Contains("store.retention.evictions"));
  EXPECT_TRUE(bare.store.Contains("store.retention.breaches"));
  EXPECT_TRUE(bare.store.Contains("engine.store.bytes.total"));
  EXPECT_TRUE(bare.store.Contains("engine.store.keys.live"));
  EXPECT_TRUE(bare.store.Contains("engine.store.keys.tmp."));
  EXPECT_TRUE(bare.store.Contains("engine.store.bytes.tmp."));
  EXPECT_EQ(bare.store.LoadOr("engine.store.keys.tmp.", Value(0)).NumericOr(-1.0), 1.0);
  const double ns_bytes =
      bare.store.LoadOr("engine.store.bytes.tmp.", Value(0)).NumericOr(0.0);
  EXPECT_GT(ns_bytes, 0.0);

  bare.now = Seconds(2);
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_EQ(bare.store.LoadOr("store.retention.reclaimed", Value(0)).NumericOr(-1.0), 1.0);
  EXPECT_EQ(bare.store.LoadOr("engine.store.keys.tmp.", Value(-1)).NumericOr(-1.0), 0.0);
  EXPECT_EQ(bare.store.LoadOr("engine.store.bytes.tmp.", Value(-1)).NumericOr(-1.0), 0.0);
}

TEST_F(RetentionTest, BuiltinNamespacesFillInUnlessSpecGoverns) {
  RetentionOptions options;
  options.enabled = true;
  RetentionOptions with = WithBuiltinNamespaces(options);
  ASSERT_EQ(with.namespaces.size(), 2u);
  EXPECT_EQ(with.namespaces[0].prefix, "agent.s");
  EXPECT_GT(with.namespaces[0].idle_ttl, 0);
  EXPECT_EQ(with.namespaces[1].prefix, "monitor.");
  EXPECT_GT(with.namespaces[1].idle_ttl, 0);

  // A spec that governs "agent.s" itself keeps its own policy; only the
  // missing builtin is appended.
  RetentionOptions custom = OneNamespace("agent.s", 10, Seconds(5));
  custom.enabled = true;
  RetentionOptions merged = WithBuiltinNamespaces(custom);
  ASSERT_EQ(merged.namespaces.size(), 2u);
  EXPECT_EQ(merged.namespaces[0].max_keys, 10u);
  EXPECT_EQ(merged.namespaces[1].prefix, "monitor.");

  // Disabled options pass through untouched (off == absent).
  RetentionOptions off;
  EXPECT_TRUE(WithBuiltinNamespaces(off).namespaces.empty());
}

TEST_F(RetentionTest, LongestPrefixClassificationWins) {
  RetentionOptions options = OneNamespace("a.", 0, Seconds(100));
  options.namespaces.push_back(RetentionNamespaceOptions{"a.b.", 0, Seconds(1)});
  BareRetention bare(options);
  bare.store.Save("a.x", Value(1));
  bare.store.Save("a.b.x", Value(2));
  bare.now = Seconds(2);  // over the specific TTL, under the general one
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_TRUE(bare.store.Contains("a.x"));
  EXPECT_FALSE(bare.store.Contains("a.b.x"));
}

TEST_F(RetentionTest, ChaosStormReclaimsEverythingGoverned) {
  BareRetention bare(OneNamespace("tmp.", 0, Seconds(100)));
  ChaosEngine chaos(7);
  bare.manager.AttachChaos(&chaos);
  FaultPlanConfig plan;
  plan.mode = FaultMode::kSchedule;
  plan.nth = {0};  // the first boundary is the storm
  ASSERT_TRUE(chaos.Arm(kChaosSiteStoreEvictStorm, plan).ok());

  for (int i = 0; i < 8; ++i) {
    bare.store.Save("tmp.k" + std::to_string(i), Value(i));
  }
  bare.now = Milliseconds(1);  // far under the TTL: only the storm reclaims
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_EQ(bare.manager.stats().chaos_storms, 1u);
  EXPECT_EQ(bare.manager.stats().reclaimed_idle, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(bare.store.Contains("tmp.k" + std::to_string(i))) << i;
  }
  // The next boundary is calm again.
  bare.store.Save("tmp.back", Value(1));
  bare.manager.RunAtBoundary(bare.now);
  EXPECT_TRUE(bare.store.Contains("tmp.back"));
}

TEST_F(RetentionTest, ChaosBreachCollapsesBudgetsToHalf) {
  BareRetention bare(OneNamespace("q.", 100, 0));  // generous real budget
  ChaosEngine chaos(7);
  bare.manager.AttachChaos(&chaos);
  FaultPlanConfig plan;
  plan.mode = FaultMode::kSchedule;
  plan.nth = {0};
  ASSERT_TRUE(chaos.Arm(kChaosSiteStoreQuotaBreach, plan).ok());

  for (int i = 0; i < 8; ++i) {
    bare.now = Milliseconds(i + 1);
    bare.store.Save("q.k" + std::to_string(i), Value(i));
  }
  bare.manager.RunAtBoundary(bare.now);
  // 8 live, budget collapsed to 4: the 4 oldest writes are evicted.
  EXPECT_EQ(bare.manager.stats().chaos_breaches, 1u);
  EXPECT_EQ(bare.manager.stats().reclaimed_quota, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(bare.store.Contains("q.k" + std::to_string(i))) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_TRUE(bare.store.Contains("q.k" + std::to_string(i))) << i;
  }
}

TEST_F(RetentionTest, ReclaimPrefixTearsDownAFamily) {
  BareRetention bare(OneNamespace("agent.s", 0, Seconds(100)));
  bare.store.Save("agent.s7.calls", Value(3));
  bare.store.Save("agent.s7.taint", Value(true));
  bare.store.Save("agent.s8.calls", Value(1));
  EXPECT_EQ(bare.manager.ReclaimPrefix("agent.s7."), 2u);
  EXPECT_FALSE(bare.store.Contains("agent.s7.calls"));
  EXPECT_FALSE(bare.store.Contains("agent.s7.taint"));
  EXPECT_TRUE(bare.store.Contains("agent.s8.calls"));
}

// --- Engine / kernel integration ---

constexpr char kKernelRetentionSpec[] = R"(
  retention {
    scan_chunk = 1024
    namespace "tmp." { idle_ttl = 1s }
    namespace "q." { max_keys = 2 }
  }
)";

TEST_F(RetentionTest, KernelReclaimsIdleKeysAtCalloutBoundaries) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelRetentionSpec).ok());
  ASSERT_TRUE(kernel.engine().retention().enabled());
  kernel.Run(Milliseconds(1));
  kernel.store().Save("tmp.scratch", Value(42));
  kernel.Run(Milliseconds(500));
  EXPECT_TRUE(kernel.store().Contains("tmp.scratch"));  // not idle yet
  kernel.Run(Seconds(2));
  EXPECT_FALSE(kernel.store().Contains("tmp.scratch"));
  EXPECT_EQ(LoadNum(kernel, "store.retention.reclaimed"), 1.0);
}

TEST_F(RetentionTest, QuotaBreachFiresOnchangeCorrectiveHook) {
  Kernel kernel;
  const std::string spec = std::string(kKernelRetentionSpec) + R"(
    guardrail quota_hook {
      trigger: { ONCHANGE(store.retention.breaches) },
      rule: { LOAD_OR(store.retention.breaches, 0) == 0 },
      action: { INCR(hook.fired) }
    }
  )";
  ASSERT_TRUE(kernel.LoadGuardrails(spec).ok());
  kernel.Run(Milliseconds(1));
  kernel.store().Save("q.a", Value(1));
  kernel.store().Save("q.b", Value(2));
  kernel.store().Save("q.c", Value(3));
  kernel.Run(Milliseconds(2));  // boundary: quota pass evicts and publishes
  kernel.Run(Milliseconds(3));  // one more boundary in case the cascade queued
  EXPECT_EQ(LoadNum(kernel, "store.retention.evictions"), 1.0);
  EXPECT_GE(LoadNum(kernel, "hook.fired"), 1.0);
}

TEST_F(RetentionTest, UnloadedMonitorCountersAgeOut) {
  Kernel kernel;
  const std::string spec = std::string(kKernelRetentionSpec) + R"(
    guardrail beat {
      trigger: { TIMER(10ms, 10ms) },
      rule: { true },
      action: { REPORT() }
    }
  )";
  ASSERT_TRUE(kernel.LoadGuardrails(spec).ok());
  kernel.Run(Milliseconds(100));
  ASSERT_TRUE(kernel.store().Contains("monitor.beat.uptime_evals"));

  // While loaded, the counter is pinned: even ancient idle age cannot touch
  // it (the builtin "monitor." TTL is 600s).
  kernel.Run(Seconds(700));
  EXPECT_TRUE(kernel.store().Contains("monitor.beat.uptime_evals"));

  // Unload hands the orphaned counter to retention; it ages out via the
  // builtin TTL instead of leaking forever.
  ASSERT_TRUE(kernel.engine().Unload("beat").ok());
  kernel.Run(Seconds(700) + Seconds(601));
  EXPECT_FALSE(kernel.store().Contains("monitor.beat.uptime_evals"));
}

agent::ToolCallEvent Call(SimTime at, uint64_t session, agent::ToolClass tool) {
  agent::ToolCallEvent event;
  event.at = at;
  event.session = session;
  event.tool = tool;
  event.fingerprint = 0x1234;
  return event;
}

TEST_F(RetentionTest, SessionEndEagerlyReclaimsTheKeyFamily) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelRetentionSpec).ok());
  kernel.Run(Milliseconds(1));
  kernel.OnToolCall(Call(Milliseconds(1), 7, agent::ToolClass::kFile));
  kernel.OnToolCall(Call(Milliseconds(2), 7, agent::ToolClass::kNet));
  kernel.OnToolCall(Call(Milliseconds(2), 8, agent::ToolClass::kFile));
  // Contains() sees scalars only; the "calls" series hides behind the
  // per-session "seen" sentinel and the per-tool counters.
  ASSERT_TRUE(kernel.store().Contains(AgentSessionKey(7, "seen")));
  ASSERT_TRUE(kernel.store().Contains(AgentSessionKey(7, "file")));
  ASSERT_TRUE(kernel.store().Contains(AgentSessionKey(7, "net")));

  EXPECT_GT(kernel.OnSessionEnd(7), 0u);
  EXPECT_FALSE(kernel.store().Contains(AgentSessionKey(7, "seen")));
  EXPECT_FALSE(kernel.store().Contains(AgentSessionKey(7, "file")));
  EXPECT_FALSE(kernel.store().Contains(AgentSessionKey(7, "net")));
  // The other session is untouched, and the globals (pinned) survive.
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(8, "seen")));
  EXPECT_TRUE(kernel.store().Contains(kAgentKeySessions));
  // A second end is a no-op.
  EXPECT_EQ(kernel.OnSessionEnd(7), 0u);
}

TEST_F(RetentionTest, KillPathReclaimsDataButKeepsTheLatch) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelRetentionSpec).ok());
  ASSERT_TRUE(kernel.agent_governor().reclaim_on_kill());
  kernel.Run(Milliseconds(1));
  kernel.OnToolCall(Call(Milliseconds(1), 4, agent::ToolClass::kFile));
  ASSERT_TRUE(kernel.store().Contains(AgentSessionKey(4, "seen")));
  ASSERT_TRUE(kernel.store().Contains(AgentSessionKey(4, "file")));

  kernel.store().Save(kAgentCtlKillSession, Value(static_cast<int64_t>(4)));
  const AgentAdmitVerdict verdict =
      kernel.OnToolCall(Call(Milliseconds(2), 4, agent::ToolClass::kNet));
  EXPECT_EQ(verdict, AgentAdmitVerdict::kKill);
  // Data keys are gone; the "killed" latch is kept so later calls from the
  // killed session keep short-circuiting.
  EXPECT_FALSE(kernel.store().Contains(AgentSessionKey(4, "seen")));
  EXPECT_FALSE(kernel.store().Contains(AgentSessionKey(4, "file")));
  EXPECT_TRUE(kernel.store()
                  .LoadOr(AgentSessionKey(4, "killed"), Value(false))
                  .AsBool()
                  .value_or(false));
  EXPECT_EQ(kernel.OnToolCall(Call(Milliseconds(3), 4, agent::ToolClass::kNet)),
            AgentAdmitVerdict::kKill);
}

TEST_F(RetentionTest, WarmRestartCarriesRetentionState) {
  const fs::path dir =
      fs::temp_directory_path() / "osguard_retention_restart";
  fs::remove_all(dir);
  fs::create_directories(dir);
  PersistOptions popts;
  popts.dir = dir.string();
  PersistManager persist(popts);

  Kernel kernel;
  kernel.AttachPersist(&persist);
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelRetentionSpec).ok());
  ASSERT_TRUE(persist.Open().ok());
  kernel.Run(Milliseconds(1));
  kernel.store().Save("tmp.gone", Value(1));
  kernel.Run(Seconds(2));  // reclaimed at a committed boundary
  ASSERT_EQ(LoadNum(kernel, "store.retention.reclaimed"), 1.0);
  kernel.store().Save("tmp.alive", Value(2));
  kernel.Run(Seconds(2) + Milliseconds(100));

  kernel.Panic();
  auto recovery = kernel.Reboot();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery.value().cold_start);
  // The retention image restored the counters; membership was resynced from
  // the restored store, so the survivor is governed again and ages out.
  EXPECT_TRUE(kernel.engine().retention().enabled());
  EXPECT_EQ(kernel.engine().retention().stats().reclaimed_idle, 1u);
  EXPECT_EQ(LoadNum(kernel, "store.retention.reclaimed"), 1.0);
  EXPECT_FALSE(kernel.store().Contains("tmp.gone"));
  EXPECT_TRUE(kernel.store().Contains("tmp.alive"));
  kernel.Run(kernel.now() + Seconds(2));
  EXPECT_FALSE(kernel.store().Contains("tmp.alive"));
  fs::remove_all(dir);
}

// --- Off == absent ---

TEST_F(RetentionTest, WithoutABlockNothingChanges) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(
                  "guardrail g { trigger: { TIMER(10ms, 10ms) }, "
                  "rule: { true }, action: { REPORT() } }")
                  .ok());
  EXPECT_FALSE(kernel.engine().retention().enabled());
  EXPECT_FALSE(kernel.agent_governor().reclaim_on_kill());
  kernel.Run(Milliseconds(1));
  kernel.store().Save("tmp.scratch", Value(1));
  kernel.OnToolCall(Call(Milliseconds(1), 4, agent::ToolClass::kFile));
  kernel.store().Save(kAgentCtlKillSession, Value(static_cast<int64_t>(4)));
  kernel.OnToolCall(Call(Milliseconds(2), 4, agent::ToolClass::kNet));
  kernel.Run(Seconds(1000));

  // No retention surface interned, nothing reclaimed: the killed session's
  // data keys and the scratch key live forever, exactly like the seed.
  EXPECT_EQ(kernel.store().FindKey("store.retention.reclaimed"), kInvalidKeyId);
  EXPECT_EQ(kernel.store().FindKey("engine.store.bytes.total"), kInvalidKeyId);
  EXPECT_TRUE(kernel.store().Contains("tmp.scratch"));
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(4, "seen")));
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(4, "file")));
  EXPECT_EQ(kernel.OnSessionEnd(4), 0u);
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(4, "seen")));
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(4, "file")));
  EXPECT_EQ(kernel.store().stale_hits(), 0u);
}

}  // namespace
}  // namespace osguard
