// Retention-enabled differential replay (docs/STORE.md): with a
// `retention { }` block loaded, the serial engine remains the oracle and
// the sharded engine must stay bit-identical — reclamation runs only at
// callout boundaries on the coordinator, so a governed run must diff clean
// exactly like an ungoverned one. Each seed drives the same randomized
// session-churn workload through two kernels and compares the full
// observable state (feature-store slots with generations and the free
// list, the report ring, the engine state image including the retention
// image) byte for byte via the persist codec.
//
// The campaign covers 1000 seeds per run, split across three regimes:
//   * 400 clean seeds        (session churn + TTL/quota reclamation + the
//                             quota-breach ONCHANGE corrective hook)
//   * 400 evict-storm seeds  (armed store.evict_storm / store.quota_breach
//                             chaos sites flushing governed namespaces at
//                             injected boundaries)
//   * 200 restart seeds      (mid-run panic + warm restart on both sides:
//                             reclaim journals as Erase frames, snapshots
//                             carry the generation map, and the restored
//                             retention image resumes the same trajectory)
// OSGUARD_CHAOS_SEED offsets the seed base so CI matrices explore fresh
// seeds without code changes.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/agent/tool_call.h"
#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/retention.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {
namespace {

namespace fs = std::filesystem;

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

// Governed namespaces sized so the workload below breaches them constantly:
// tmp.* churns through both the TTL and the LRU quota, agent.s* rides the
// spec budget instead of the builtin TTL, and both corrective hooks
// (ONCHANGE on the retention telemetry) cascade into keys the FUNCTION
// rules read — the serial-classification worst case.
constexpr char kRetentionDiffSpec[] = R"(
  retention {
    scan_chunk = 8
    namespace "tmp." { max_keys = 5, idle_ttl = 30ms }
    namespace "agent.s" { max_keys = 12, idle_ttl = 80ms }
  }
  guardrail reclaim_watch {
    trigger: { ONCHANGE(store.retention.reclaimed) },
    rule: { LOAD_OR(store.retention.reclaimed, 0) <= 3 },
    action: { INCR(ret.trips) }
  }
  guardrail breach_watch {
    trigger: { ONCHANGE(store.retention.breaches) },
    rule: { LOAD_OR(store.retention.breaches, 0) <= 2 },
    action: { SAVE(ret.breached, true) }
  }
  guardrail ret_gate {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(ret.trips, 0) <= 5 },
    action: { REPORT("retention cascades") }
  }
  guardrail lat_mean {
    trigger: { FUNCTION(submit_io) },
    rule: { COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 2000000 },
    action: { INCR(lat.trips), REPORT("mean high") }
  }
  guardrail trip_watch {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(lat.trips, 0) <= 8 },
    action: { REPORT("too many trips") }
  }
  guardrail flaky {
    trigger: { FUNCTION(complete_io) },
    rule: { LOAD(probe.value) <= 40 },
    action: { INCR(flaky.trips) }
  }
  guardrail periodic {
    trigger: { TIMER(15ms, 15ms) },
    rule: { LOAD_OR(step.counter, 0) <= 30 },
    action: { REPORT("counter high") }
  }
)";

constexpr char kStormChaosSpec[] = R"(
  chaos {
    site store.evict_storm { mode = bernoulli, p = 0.1 },
    site store.quota_breach { mode = bernoulli, p = 0.1 }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 3;
  bool storms = false;  // arm the store chaos sites
  bool reboot = false;  // panic + warm restart at mid-run
  std::string persist_dir;
};

EngineOptions DiffEngineOptions() {
  EngineOptions options;
  options.measure_wall_time = false;
  return options;
}

// Runs the (seed, config) workload to completion and returns the
// wire-encoded observable state. The workload mixes plain store traffic
// with agent tool calls and session ends, so generation-tagged slot
// recycling, per-session eager teardown, and boundary reclamation all
// interleave — everything derived from `seed`, identically on both sides.
std::string RunWorkload(uint64_t seed, const RunConfig& config,
                        RetentionStats* retention_out = nullptr) {
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  Kernel kernel(DiffEngineOptions(), sharding);

  ChaosEngine chaos(seed);
  if (config.storms) {
    kernel.AttachChaos(&chaos);
  }
  std::unique_ptr<PersistManager> persist;
  if (config.reboot) {
    PersistOptions persist_options;
    persist_options.dir = config.persist_dir;
    persist = std::make_unique<PersistManager>(persist_options);
    kernel.AttachPersist(persist.get());
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kRetentionDiffSpec).ok());
  if (config.storms) {
    EXPECT_TRUE(kernel.LoadGuardrails(kStormChaosSpec).ok());
  }
  if (persist != nullptr) {
    EXPECT_TRUE(persist->Open().ok());
  }

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  constexpr int kSteps = 24;
  for (int step = 1; step <= kSteps; ++step) {
    kernel.Run(Milliseconds(10) * step);
    const SimTime now = kernel.now();
    const int observations = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < observations; ++i) {
      const double sample =
          rng.Bernoulli(0.2) ? rng.Uniform(2.0e6, 8.0e6) : rng.Uniform(1.0e5, 1.5e6);
      kernel.store().Observe("io.lat", now, sample);
    }
    if (rng.Bernoulli(0.3)) {
      kernel.store().Save("probe.value", Value(rng.Uniform(0.0, 90.0)));
    }
    if (rng.Bernoulli(0.25)) {
      kernel.store().Increment("step.counter", 1.0);
    }
    if (rng.Bernoulli(0.7)) {
      // Governed scratch churn: 11 possible keys against a budget of 5 and
      // a 30ms TTL.
      kernel.store().Save("tmp.k" + std::to_string(rng.UniformInt(0, 10)),
                          Value(rng.Uniform(0.0, 1.0)));
    }
    if (rng.Bernoulli(0.6)) {
      // Session churn: short-lived sessions mint agent.s<id>.* families;
      // some end eagerly, the rest age out via the namespace policy.
      agent::ToolCallEvent event;
      event.at = kernel.now();
      event.session = 1 + rng.UniformInt(0, 9) + static_cast<uint64_t>(step / 8) * 16;
      event.tool = static_cast<agent::ToolClass>(rng.UniformInt(0, 2));
      event.fingerprint = rng.UniformInt(0, 1u << 20);
      kernel.OnToolCall(event);
      if (rng.Bernoulli(0.3)) {
        kernel.OnSessionEnd(event.session);
      }
    }
    kernel.Callout("submit_io");
    if (rng.Bernoulli(0.35)) {
      kernel.Callout("complete_io");
    }
    if (config.reboot && step == kSteps / 2) {
      kernel.Panic();
      auto recovery = kernel.Reboot();
      EXPECT_TRUE(recovery.ok());
      EXPECT_FALSE(recovery.value().cold_start);
    }
  }

  if (retention_out != nullptr) {
    *retention_out = kernel.engine().retention().stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class RetentionDiffTest : public ::testing::Test {
 protected:
  RetentionDiffTest() { Logger::Global().set_level(LogLevel::kOff); }

  fs::path FreshDir(const std::string& name) {
    fs::path dir = fs::temp_directory_path() / ("osguard_retention_diff_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  }
};

TEST_F(RetentionDiffTest, CleanChurnSeeds) {
  const uint64_t base = SeedBase() + 0x100000;
  uint64_t reclaims = 0;
  uint64_t breaches = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    RetentionStats stats;
    const std::string expect = RunWorkload(seed, serial, &stats);
    ASSERT_EQ(expect, RunWorkload(seed, sharded)) << "seed=" << seed;
    reclaims += stats.reclaimed_idle + stats.reclaimed_quota;
    breaches += stats.quota_breaches;
  }
  // The equivalence is only meaningful if the lifecycle machinery actually
  // ran: boundaries must have reclaimed keys and tripped quotas.
  EXPECT_GT(reclaims, 0u);
  EXPECT_GT(breaches, 0u);
}

TEST_F(RetentionDiffTest, EvictStormSeeds) {
  const uint64_t base = SeedBase() + 0x110000;
  uint64_t storms = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.storms = true;
    RunConfig sharded = serial;
    sharded.sharded = true;
    RetentionStats stats;
    const std::string expect = RunWorkload(seed, serial, &stats);
    ASSERT_EQ(expect, RunWorkload(seed, sharded)) << "seed=" << seed;
    storms += stats.chaos_storms + stats.chaos_breaches;
  }
  EXPECT_GT(storms, 0u);
}

TEST_F(RetentionDiffTest, PanicWarmRestartSeeds) {
  const uint64_t base = SeedBase() + 0x120000;
  const fs::path serial_dir = FreshDir("serial");
  const fs::path sharded_dir = FreshDir("sharded");
  uint64_t reclaims = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.reboot = true;
    serial.persist_dir = (serial_dir / std::to_string(seed)).string();
    RunConfig sharded = serial;
    sharded.sharded = true;
    sharded.persist_dir = (sharded_dir / std::to_string(seed)).string();
    fs::create_directories(serial.persist_dir);
    fs::create_directories(sharded.persist_dir);
    RetentionStats stats;
    const std::string expect = RunWorkload(seed, serial, &stats);
    ASSERT_EQ(expect, RunWorkload(seed, sharded)) << "seed=" << seed;
    reclaims += stats.reclaimed_idle + stats.reclaimed_quota;
  }
  EXPECT_GT(reclaims, 0u);
  fs::remove_all(serial_dir);
  fs::remove_all(sharded_dir);
}

}  // namespace
}  // namespace osguard
