// osguard::persist — crash-consistency suite.
//
// The load-bearing property is the 1000-seed crash/replay differential: a run
// that crashes at a random commit boundary and warm-restarts through
// Engine::Restore must end bit-identical (feature store, report ring, full
// engine image) to the same run uninterrupted — including when the persist
// chaos sites were tearing frames, flipping CRC-covered bits, and chopping
// journal tails the whole time. Around it: codec round-trips, the recovery
// ladder's graceful degradation, the MonitorStats survival matrix
// (cold start / hot replace / warm restart), and the kernel panic/reboot
// wiring.
//
// CI sweeps this binary (`ctest -L persist`) under ASan/UBSan with several
// OSGUARD_CHAOS_SEED values, like the chaos suite.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {
namespace {

namespace fs = std::filesystem;

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "osguard-persist" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

void WriteFile(const fs::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// --- Codec ---

JournalFrame MakeFrame(uint64_t seq) {
  JournalFrame frame;
  frame.seq = seq;
  frame.now = static_cast<SimTime>(seq) * Milliseconds(10);
  StoreOp save;
  save.kind = StoreMutation::Kind::kSave;
  save.key = "k" + std::to_string(seq);
  save.value = Value(static_cast<double>(seq) * 1.5);
  frame.ops.push_back(save);
  StoreOp observe;
  observe.kind = StoreMutation::Kind::kObserve;
  observe.key = "series";
  observe.time = frame.now;
  observe.sample = static_cast<double>(seq);
  frame.ops.push_back(observe);
  frame.report_delta = "report-" + std::to_string(seq);
  frame.image = std::string("image-") + std::to_string(seq);
  return frame;
}

TEST(PersistCodec, JournalRoundTrip) {
  std::string buffer;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    AppendFrame(MakeFrame(seq), &buffer);
  }
  const FrameScan scan = ScanJournal(buffer);
  EXPECT_TRUE(scan.detail.empty()) << scan.detail;
  EXPECT_EQ(scan.valid_bytes, buffer.size());
  EXPECT_EQ(scan.discarded_bytes, 0u);
  ASSERT_EQ(scan.frames.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    const JournalFrame& frame = scan.frames[seq - 1];
    EXPECT_EQ(frame.seq, seq);
    ASSERT_EQ(frame.ops.size(), 2u);
    EXPECT_EQ(frame.ops[0].key, "k" + std::to_string(seq));
    EXPECT_EQ(frame.ops[1].sample, static_cast<double>(seq));
    EXPECT_EQ(frame.report_delta, "report-" + std::to_string(seq));
    EXPECT_EQ(frame.image, "image-" + std::to_string(seq));
  }
}

TEST(PersistCodec, TornTailKeepsThePrefix) {
  std::string buffer;
  AppendFrame(MakeFrame(1), &buffer);
  AppendFrame(MakeFrame(2), &buffer);
  const size_t two_frames = buffer.size();
  AppendFrame(MakeFrame(3), &buffer);
  // Tear the third frame: every truncation point inside it must yield exactly
  // the two-frame prefix plus a non-empty damage description.
  for (size_t cut = two_frames + 1; cut < buffer.size(); ++cut) {
    const FrameScan scan = ScanJournal(std::string_view(buffer).substr(0, cut));
    EXPECT_EQ(scan.frames.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, two_frames) << "cut at " << cut;
    EXPECT_FALSE(scan.detail.empty()) << "cut at " << cut;
  }
}

TEST(PersistCodec, BitFlipStopsTheScanAtTheDamage) {
  std::string buffer;
  AppendFrame(MakeFrame(1), &buffer);
  const size_t one_frame = buffer.size();
  AppendFrame(MakeFrame(2), &buffer);
  AppendFrame(MakeFrame(3), &buffer);
  // Flip one bit inside the second frame's bytes: frame 1 survives, the rest
  // is discarded (CRC or framing failure — either is acceptable, crashing or
  // decoding garbage is not).
  for (size_t at = one_frame; at < buffer.size(); at += 7) {
    std::string damaged = buffer;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    const FrameScan scan = ScanJournal(damaged);
    ASSERT_LE(scan.frames.size(), 3u);
    ASSERT_GE(scan.frames.size(), 1u) << "flip at " << at;
    EXPECT_EQ(scan.frames[0].seq, 1u) << "flip at " << at;
    if (scan.frames.size() < 3) {
      EXPECT_FALSE(scan.detail.empty()) << "flip at " << at;
      EXPECT_GT(scan.discarded_bytes, 0u) << "flip at " << at;
    }
  }
}

TEST(PersistCodec, SnapshotRoundTripAndDamageRejection) {
  Snapshot snapshot;
  snapshot.seq = 42;
  snapshot.now = Seconds(3);
  StoreSlotDump slot;
  slot.key = "lat.flag";
  slot.has_scalar = true;
  slot.scalar = Value(true);
  snapshot.store.push_back(slot);
  snapshot.report_ring = "ring-bytes";
  snapshot.image = "image-bytes";

  const std::string encoded = EncodeSnapshot(snapshot);
  auto decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().seq, 42u);
  EXPECT_EQ(decoded.value().now, Seconds(3));
  ASSERT_EQ(decoded.value().store.size(), 1u);
  EXPECT_EQ(decoded.value().store[0].key, "lat.flag");
  EXPECT_EQ(decoded.value().report_ring, "ring-bytes");
  EXPECT_EQ(decoded.value().image, "image-bytes");

  // Every truncation must be a clean error.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto truncated = DecodeSnapshot(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
    EXPECT_FALSE(truncated.status().message().empty()) << "cut at " << cut;
  }
  // And every single-bit flip in the CRC-covered body must be rejected.
  for (size_t at = 0; at < encoded.size(); at += 3) {
    std::string damaged = encoded;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
    auto result = DecodeSnapshot(damaged);
    if (result.ok()) {
      // Flips in the length/version header can still be caught as framing
      // errors; a flip that decodes successfully would be a CRC hole.
      FAIL() << "bit flip at " << at << " decoded successfully";
    }
  }
}

// --- Differential crash/replay harness ---

// The spec drives three trigger kinds (TIMER / ONCHANGE), window aggregates,
// the violation protocol (hysteresis + cooldown + on_satisfy), the
// supervisor (health block), and the persist DSL surface itself.
constexpr char kDiffSpec[] = R"(
guardrail lat-p99 {
  trigger: { TIMER(100ms, 40ms) },
  rule: { COUNT(io.lat, 400ms) == 0 || P99(io.lat, 400ms) <= 5ms },
  action: { SAVE(lat.flag, true); REPORT("p99 high", MEAN(io.lat, 400ms)) },
  on_satisfy: { SAVE(lat.flag, false) },
  meta: { severity = warning, cooldown = 120ms, hysteresis = 2 }
}
guardrail err-watch {
  trigger: { TIMER(60ms, 30ms), ONCHANGE(err.rate) },
  rule: { LOAD_OR(err.rate, 0) <= 0.5 },
  action: { INCR(err.trips); REPORT("err rate tripped") },
  meta: { hysteresis = 1 }
}
guardrail supervised-probe {
  trigger: { TIMER(80ms, 80ms) },
  rule: { LOAD_OR(probe.value, 0) <= 40 },
  action: { SAVE(probe.flag, true) },
  health: {
    budget_steps = 4096, flap_window = 500ms, flap_threshold = 3,
    quarantine = 2, probe_every = 2, reinstate = 2
  }
}
persist { interval = 250ms, journal_budget = 4096 }
)";

constexpr Duration kStepWindow = Milliseconds(50);

// One self-contained engine run: store + engine + persist manager over `dir`.
struct DiffRun {
  FeatureStore store;
  PolicyRegistry registry;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<PersistManager> persist;
};

EngineOptions DiffOptions() {
  EngineOptions options;
  options.measure_wall_time = false;  // host-clock costs are not replayable
  return options;
}

std::unique_ptr<DiffRun> StartRun(const fs::path& dir, ChaosEngine* chaos) {
  auto run = std::make_unique<DiffRun>();
  run->engine = std::make_unique<Engine>(&run->store, &run->registry, nullptr, DiffOptions());
  run->store.SetWriteObserver(
      [engine = run->engine.get()](const StoreWriteInfo& info, const std::string& key) {
        engine->OnStoreWrite(info, key);
      });
  PersistOptions options;
  options.dir = dir.string();
  run->persist = std::make_unique<PersistManager>(options);
  if (chaos != nullptr) {
    run->persist->SetChaos(chaos);
  }
  // SetPersist before LoadSource so the spec's persist block configures the
  // manager; Restore/Open is the caller's choice (fresh start vs recovery).
  run->engine->SetPersist(run->persist.get());
  EXPECT_TRUE(run->engine->LoadSource(kDiffSpec).ok());
  return run;
}

// One deterministic workload step. Everything is derived from (seed, step),
// so re-executing a step after recovery replays the exact same transitions.
// Each step ends with AdvanceTo — the commit boundary — so the journal
// sequence observed after step i identifies the resume point exactly.
void RunStep(DiffRun& run, uint64_t seed, int step) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(step) + 1);
  const SimTime start = static_cast<SimTime>(step) * kStepWindow;
  const int observations = static_cast<int>(rng.UniformInt(0, 4));
  for (int i = 0; i < observations; ++i) {
    const SimTime t = start + rng.UniformInt(1, kStepWindow - 1);
    const double sample =
        rng.Bernoulli(0.2) ? rng.Uniform(5.0e6, 2.0e7) : rng.Uniform(1.0e5, 4.0e6);
    run.store.Observe("io.lat", t, sample);
  }
  if (rng.Bernoulli(0.4)) {
    run.store.Save("err.rate", Value(rng.Uniform(0.0, 1.0)));
  }
  if (rng.Bernoulli(0.3)) {
    run.store.Save("probe.value", Value(rng.Uniform(0.0, 80.0)));
  }
  if (rng.Bernoulli(0.15)) {
    run.store.Increment("step.counter", 1.0);
  }
  if (rng.Bernoulli(0.05)) {
    (void)run.store.Erase("lat.flag");
  }
  if (rng.Bernoulli(0.05)) {
    SeriesOptions options;
    options.max_samples = static_cast<size_t>(rng.UniformInt(16, 64));
    options.max_age = Milliseconds(rng.UniformInt(100, 1000));
    run.store.SetSeriesOptions("io.lat", options);
  }
  run.engine->AdvanceTo(start + kStepWindow);
}

// The full observable state, wire-encoded: feature store (scalar + series
// internals), report ring, and the engine's state image. Two runs are
// equivalent iff these bytes match.
std::string Fingerprint(DiffRun& run) {
  Snapshot snapshot;
  snapshot.store = run.store.DumpSlots();
  snapshot.report_ring = run.engine->EncodeReportRing();
  snapshot.image = run.engine->EncodeImage();
  return EncodeSnapshot(snapshot);
}

// Runs `total_steps` uninterrupted and returns the final fingerprint.
std::string ReferenceFingerprint(const fs::path& dir, uint64_t seed, int total_steps) {
  auto run = StartRun(dir, nullptr);
  EXPECT_TRUE(run->persist->Open().ok());
  for (int step = 0; step < total_steps; ++step) {
    RunStep(*run, seed, step);
  }
  return Fingerprint(*run);
}

// Crash at `crash_step`, recover, re-execute from the recovered sequence
// number, and return the final fingerprint (plus recovery info via out-param).
std::string CrashedFingerprint(const fs::path& dir, uint64_t seed, int total_steps,
                               int crash_step, ChaosEngine* chaos, RecoveryInfo* info_out) {
  std::vector<uint64_t> seq_after(static_cast<size_t>(crash_step), 0);
  {
    auto run = StartRun(dir, chaos);
    EXPECT_TRUE(run->persist->Open().ok());
    for (int step = 0; step < crash_step; ++step) {
      RunStep(*run, seed, step);
      seq_after[static_cast<size_t>(step)] = run->persist->last_committed_seq();
    }
    // Crash: the run is abandoned here. Only what reached the files survives.
  }
  auto run = StartRun(dir, chaos);
  auto recovered = run->engine->Restore(*run->persist);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) {
    return "";
  }
  const RecoveryInfo info = recovered.value();
  if (info_out != nullptr) {
    *info_out = info;
  }
  // Resume point: the first step whose end-of-step sequence matches the
  // recovered sequence. Later steps with the same sequence were no-ops
  // (nothing committed), so re-executing them is safe and necessary — they
  // advance the clock to the reference timeline.
  int resume = 0;
  if (info.last_seq != 0) {
    resume = -1;
    for (int step = 0; step < crash_step; ++step) {
      if (seq_after[static_cast<size_t>(step)] == info.last_seq) {
        resume = step + 1;
        break;
      }
    }
    EXPECT_NE(resume, -1) << "recovered seq " << info.last_seq
                          << " matches no commit boundary (seed " << seed << ")";
    if (resume == -1) {
      return "";
    }
  }
  for (int step = resume; step < total_steps; ++step) {
    RunStep(*run, seed, step);
  }
  return Fingerprint(*run);
}

TEST(PersistDifferential, CrashReplayIsBitIdenticalOver1000Seeds) {
  const uint64_t base = SeedBase();
  constexpr int kTotalSteps = 16;
  const fs::path root = FreshDir("diff-clean");
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t seed = base * 1000 + i;
    Rng rng(seed ^ 0xD1F7ull);
    const int crash_step = static_cast<int>(rng.UniformInt(1, kTotalSteps));
    const fs::path ref_dir = root / ("ref-" + std::to_string(i));
    const fs::path crash_dir = root / ("crash-" + std::to_string(i));
    fs::create_directories(ref_dir);
    fs::create_directories(crash_dir);
    const std::string reference = ReferenceFingerprint(ref_dir, seed, kTotalSteps);
    RecoveryInfo info;
    const std::string crashed =
        CrashedFingerprint(crash_dir, seed, kTotalSteps, crash_step, nullptr, &info);
    ASSERT_EQ(crashed.size(), reference.size())
        << "seed " << seed << " crash_step " << crash_step << ": " << info.detail;
    ASSERT_EQ(crashed, reference)
        << "seed " << seed << " crash_step " << crash_step << ": " << info.detail;
    // Keep the temp tree small: done with this seed's directories.
    fs::remove_all(ref_dir);
    fs::remove_all(crash_dir);
  }
}

TEST(PersistDifferential, CrashReplaySurvivesPersistChaos) {
  // Same differential, but the persist chaos sites damage the files the
  // whole way: torn appends, CRC bit flips, chopped tails, aborted
  // snapshots. Damage costs recovery point (more steps re-executed), never
  // correctness — the final state must still match bit-for-bit.
  const uint64_t base = SeedBase();
  constexpr int kTotalSteps = 16;
  const fs::path root = FreshDir("diff-chaos");
  uint64_t damaged_runs = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = base * 1000 + i;
    Rng rng(seed ^ 0xC405ull);
    const int crash_step = static_cast<int>(rng.UniformInt(1, kTotalSteps));

    ChaosEngine chaos(seed);
    FaultPlanConfig torn;
    torn.mode = FaultMode::kBernoulli;
    torn.p = 0.15;
    torn.value = 0.25 + 0.5 * rng.NextDouble();  // fraction of the frame that lands
    ASSERT_TRUE(chaos.Arm(kChaosSitePersistTornWrite, torn).ok());
    FaultPlanConfig flip;
    flip.mode = FaultMode::kBernoulli;
    flip.p = 0.1;
    ASSERT_TRUE(chaos.Arm(kChaosSitePersistCrcCorrupt, flip).ok());
    FaultPlanConfig chop;
    chop.mode = FaultMode::kBernoulli;
    chop.p = 0.1;
    chop.value = 0.5;
    ASSERT_TRUE(chaos.Arm(kChaosSitePersistTruncateTail, chop).ok());
    FaultPlanConfig snap_fail;
    snap_fail.mode = FaultMode::kBernoulli;
    snap_fail.p = 0.3;
    ASSERT_TRUE(chaos.Arm(kChaosSitePersistSnapshotFail, snap_fail).ok());

    const fs::path ref_dir = root / ("ref-" + std::to_string(i));
    const fs::path crash_dir = root / ("crash-" + std::to_string(i));
    fs::create_directories(ref_dir);
    fs::create_directories(crash_dir);
    const std::string reference = ReferenceFingerprint(ref_dir, seed, kTotalSteps);
    RecoveryInfo info;
    const std::string crashed =
        CrashedFingerprint(crash_dir, seed, kTotalSteps, crash_step, &chaos, &info);
    ASSERT_EQ(crashed, reference)
        << "seed " << seed << " crash_step " << crash_step << ": " << info.detail;
    damaged_runs += (info.bytes_discarded > 0 || info.snapshots_rejected > 0 ||
                     info.frames_discarded > 0)
                        ? 1
                        : 0;
    fs::remove_all(ref_dir);
    fs::remove_all(crash_dir);
  }
  // The chaos plan is not vacuous: a decent share of recoveries actually had
  // to climb down the ladder.
  EXPECT_GT(damaged_runs, 20u);
}

// --- Recovery ladder ---

TEST(PersistRecovery, FallsBackToPreviousSnapshotAndColdStart) {
  const fs::path dir = FreshDir("ladder");
  // Produce a run with at least two snapshots (tight interval + budget).
  {
    auto run = StartRun(dir, nullptr);
    ASSERT_TRUE(run->persist->Open().ok());
    for (int step = 0; step < 40; ++step) {
      RunStep(*run, 7, step);
    }
    ASSERT_GE(run->persist->stats().snapshots_written, 2u);
  }
  // Baseline recovery: usable snapshot, no damage.
  {
    auto run = StartRun(dir, nullptr);
    auto recovered = run->engine->Restore(*run->persist);
    ASSERT_TRUE(recovered.ok());
    EXPECT_FALSE(recovered.value().cold_start);
    EXPECT_TRUE(recovered.value().used_snapshot);
    EXPECT_FALSE(recovered.value().used_previous_snapshot);
  }
  // Corrupt the newest snapshot: recovery must step down to the previous one.
  std::vector<fs::path> snapshots;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") {
      snapshots.push_back(entry.path());
    }
  }
  ASSERT_GE(snapshots.size(), 2u);
  std::sort(snapshots.begin(), snapshots.end());
  {
    std::string bytes = ReadFile(snapshots.back());
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    WriteFile(snapshots.back(), bytes);
  }
  {
    auto run = StartRun(dir, nullptr);
    auto recovered = run->engine->Restore(*run->persist);
    ASSERT_TRUE(recovered.ok());
    EXPECT_FALSE(recovered.value().cold_start);
    EXPECT_TRUE(recovered.value().used_previous_snapshot);
    EXPECT_GE(recovered.value().snapshots_rejected, 1u);
  }
  // Destroy everything: recovery must degrade to a cold start, not fail.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string bytes = ReadFile(entry.path());
    for (size_t at = 0; at < bytes.size(); at += 2) {
      bytes[at] = static_cast<char>(~bytes[at]);
    }
    WriteFile(entry.path(), bytes);
  }
  {
    auto run = StartRun(dir, nullptr);
    auto recovered = run->engine->Restore(*run->persist);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered.value().cold_start);
    // A cold-started engine keeps working.
    for (int step = 0; step < 4; ++step) {
      RunStep(*run, 7, step);
    }
  }
}

TEST(PersistRecovery, ArbitraryFileDamageNeverCrashesRecovery) {
  const uint64_t base = SeedBase();
  const fs::path root = FreshDir("damage-sweep");
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t seed = base + i;
    const fs::path dir = root / std::to_string(i);
    fs::create_directories(dir);
    {
      auto run = StartRun(dir, nullptr);
      ASSERT_TRUE(run->persist->Open().ok());
      for (int step = 0; step < 12; ++step) {
        RunStep(*run, seed, step);
      }
    }
    // Randomly damage every persist file: flips, truncations, garbage
    // prepends. Recovery must always return cleanly and the recovered
    // engine must keep running.
    Rng rng(seed ^ 0xDA11ull);
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::string bytes = ReadFile(entry.path());
      switch (rng.UniformInt(0, 3)) {
        case 0:
          if (!bytes.empty()) {
            const size_t at = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
            bytes[at] = static_cast<char>(bytes[at] ^ (1u << rng.UniformInt(0, 7)));
          }
          break;
        case 1:
          bytes = bytes.substr(0, bytes.size() / 2);
          break;
        case 2:
          bytes = std::string("garbage") + bytes;
          break;
        default:
          break;  // leave this file intact
      }
      WriteFile(entry.path(), bytes);
    }
    auto run = StartRun(dir, nullptr);
    auto recovered = run->engine->Restore(*run->persist);
    ASSERT_TRUE(recovered.ok()) << "seed " << seed << ": " << recovered.status().ToString();
    for (int step = 0; step < 4; ++step) {
      RunStep(*run, seed, step);
    }
    fs::remove_all(dir);
  }
}

// --- MonitorStats survival matrix (pins the semantics documented on the
// struct: cold start / hot replace / warm restart) ---

TEST(PersistSemantics, MonitorStatsSemantics) {
  constexpr char kV1[] = R"(
guardrail pinned {
  trigger: { TIMER(10ms, 10ms) },
  rule: { LOAD_OR(x, 0) <= 5 },
  action: { SAVE(tripped, true) },
  meta: { hysteresis = 2, cooldown = 50ms }
}
persist { interval = 1s, journal_budget = 0 }
)";
  // Same name, different program — a hot replace.
  constexpr char kV2[] = R"(
guardrail pinned {
  trigger: { TIMER(10ms, 10ms) },
  rule: { LOAD_OR(x, 0) <= 7 },
  action: { SAVE(tripped, true) },
  meta: { hysteresis = 2, cooldown = 50ms }
}
)";
  const fs::path dir = FreshDir("stats-matrix");

  auto run = std::make_unique<DiffRun>();
  run->engine = std::make_unique<Engine>(&run->store, &run->registry, nullptr, DiffOptions());
  PersistOptions options;
  options.dir = dir.string();
  run->persist = std::make_unique<PersistManager>(options);
  run->engine->SetPersist(run->persist.get());
  ASSERT_TRUE(run->engine->LoadSource(kV1).ok());
  ASSERT_TRUE(run->persist->Open().ok());

  // Cold start: everything zero, uptime_evals tracks evaluations.
  auto stats = run->engine->StatsFor("pinned");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().evaluations, 0u);
  EXPECT_EQ(stats.value().uptime_evals, 0u);

  run->store.Save("x", Value(9.0));  // violating
  run->engine->AdvanceTo(Milliseconds(45));
  stats = run->engine->StatsFor("pinned");
  ASSERT_TRUE(stats.ok());
  const MonitorStats before = stats.value();
  EXPECT_GT(before.evaluations, 0u);
  EXPECT_EQ(before.uptime_evals, before.evaluations);
  EXPECT_TRUE(before.in_violation);
  EXPECT_GT(before.consecutive_violations, 0);
  // The uptime counter is exported at the callout boundary.
  auto exported = run->store.Load("monitor.pinned.uptime_evals");
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(static_cast<uint64_t>(exported.value().NumericOr(-1)), before.uptime_evals);

  // Hot replace: per-version counters reset; the violation-protocol clocks
  // (in_violation, consecutive_violations, last_action_time) and
  // uptime_evals — which describe the monitored name — survive.
  ASSERT_TRUE(run->engine->LoadSource(kV2).ok());
  stats = run->engine->StatsFor("pinned");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().evaluations, 0u);
  EXPECT_EQ(stats.value().violations, 0u);
  EXPECT_EQ(stats.value().action_firings, 0u);
  EXPECT_EQ(stats.value().uptime_evals, before.uptime_evals);
  EXPECT_EQ(stats.value().in_violation, before.in_violation);
  EXPECT_EQ(stats.value().consecutive_violations, before.consecutive_violations);
  EXPECT_EQ(stats.value().last_action_time, before.last_action_time);

  // Accumulate a bit more history on v2, then crash.
  run->engine->AdvanceTo(Milliseconds(95));
  stats = run->engine->StatsFor("pinned");
  ASSERT_TRUE(stats.ok());
  const MonitorStats at_crash = stats.value();
  EXPECT_GT(at_crash.uptime_evals, before.uptime_evals);
  run.reset();  // crash

  // Warm restart: every field is restored verbatim — a reboot is invisible.
  auto rebooted = std::make_unique<DiffRun>();
  rebooted->engine =
      std::make_unique<Engine>(&rebooted->store, &rebooted->registry, nullptr, DiffOptions());
  rebooted->persist = std::make_unique<PersistManager>(options);
  rebooted->engine->SetPersist(rebooted->persist.get());
  ASSERT_TRUE(rebooted->engine->LoadSource(kV1).ok());
  ASSERT_TRUE(rebooted->engine->LoadSource(kV2).ok());
  auto recovered = rebooted->engine->Restore(*rebooted->persist);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.value().cold_start);
  stats = rebooted->engine->StatsFor("pinned");
  ASSERT_TRUE(stats.ok());
  const MonitorStats after = stats.value();
  EXPECT_EQ(after.evaluations, at_crash.evaluations);
  EXPECT_EQ(after.violations, at_crash.violations);
  EXPECT_EQ(after.action_firings, at_crash.action_firings);
  EXPECT_EQ(after.errors, at_crash.errors);
  EXPECT_EQ(after.suppressed_hysteresis, at_crash.suppressed_hysteresis);
  EXPECT_EQ(after.suppressed_cooldown, at_crash.suppressed_cooldown);
  EXPECT_EQ(after.in_violation, at_crash.in_violation);
  EXPECT_EQ(after.consecutive_violations, at_crash.consecutive_violations);
  EXPECT_EQ(after.last_action_time, at_crash.last_action_time);
  EXPECT_EQ(after.uptime_evals, at_crash.uptime_evals);
}

// --- DSL surface ---

TEST(PersistSpec, PersistBlockConfiguresTheManagerAndOffIsAbsent) {
  const fs::path dir = FreshDir("dsl-surface");
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry, nullptr, DiffOptions());
  PersistOptions options;
  options.dir = dir.string();
  options.snapshot_interval = Seconds(10);
  options.journal_budget = 1 << 20;
  PersistManager persist(options);
  engine.SetPersist(&persist);

  // No persist block: the manager keeps its constructor-time options.
  ASSERT_TRUE(engine
                  .LoadSource("guardrail g { trigger: { TIMER(1s, 1s) }, "
                              "rule: { true }, action: { REPORT(\"x\") } }")
                  .ok());
  EXPECT_EQ(persist.options().snapshot_interval, Seconds(10));
  EXPECT_EQ(persist.options().journal_budget, static_cast<uint64_t>(1) << 20);

  // With a persist block, the spec wins.
  ASSERT_TRUE(engine.LoadSource("persist { interval = 2s, journal_budget = 4096 }").ok());
  EXPECT_EQ(persist.options().snapshot_interval, Seconds(2));
  EXPECT_EQ(persist.options().journal_budget, 4096u);

  // Validation: bad attributes are clean spec errors.
  EXPECT_FALSE(engine.LoadSource("persist { interval = 0 }").ok());
  EXPECT_FALSE(engine.LoadSource("persist { journal_budget = -1 }").ok());
  EXPECT_FALSE(engine.LoadSource("persist { cadence = 1s }").ok());

  // And with no manager attached, the block is validated but inert.
  FeatureStore bare_store;
  Engine bare(&bare_store, &registry, nullptr, DiffOptions());
  EXPECT_TRUE(bare.LoadSource("persist { interval = 2s }").ok());
  EXPECT_FALSE(bare.LoadSource("persist { interval = teapot }").ok());
}

// --- Kernel wiring ---

constexpr char kKernelSpec[] = R"(
guardrail io-watch {
  trigger: { TIMER(20ms, 20ms), FUNCTION(io_submit) },
  rule: { COUNT(io.lat, 100ms) == 0 || MEAN(io.lat, 100ms) <= 3ms },
  action: { SAVE(io.flag, true); REPORT("io slow") },
  on_satisfy: { SAVE(io.flag, false) },
  meta: { hysteresis = 2, cooldown = 40ms }
}
persist { interval = 100ms, journal_budget = 0 }
)";

// Schedules segment `segment`'s workload events on the kernel. Deterministic
// in (seed, segment) so a rebooted kernel re-schedules identical work.
void ScheduleSegment(Kernel& kernel, uint64_t seed, int segment) {
  Rng rng(seed * 131071ull + static_cast<uint64_t>(segment));
  const SimTime start = static_cast<SimTime>(segment) * Milliseconds(50);
  const int events = static_cast<int>(rng.UniformInt(2, 5));
  for (int i = 0; i < events; ++i) {
    const SimTime at = start + rng.UniformInt(1, Milliseconds(50) - 1);
    const double sample = rng.Uniform(5.0e5, 6.0e6);
    const bool callout = rng.Bernoulli(0.4);
    kernel.queue().ScheduleAt(at, [&kernel, at, sample, callout](SimTime) {
      kernel.store().Observe("io.lat", at, sample);
      if (callout) {
        kernel.Callout("io_submit");
      }
    });
  }
}

std::string KernelFingerprint(Kernel& kernel) {
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

TEST(PersistKernel, PanicRebootMatchesUninterruptedRun) {
  const uint64_t seed = SeedBase() + 11;
  constexpr int kSegments = 8;

  // Reference: no crash.
  const fs::path ref_dir = FreshDir("kernel-ref");
  Kernel reference(DiffOptions());
  PersistOptions ref_options;
  ref_options.dir = ref_dir.string();
  PersistManager ref_persist(ref_options);
  reference.AttachPersist(&ref_persist);
  ASSERT_TRUE(ref_persist.Open().ok());
  ASSERT_TRUE(reference.LoadGuardrails(kKernelSpec).ok());
  for (int segment = 0; segment < kSegments; ++segment) {
    ScheduleSegment(reference, seed, segment);
    reference.Run(static_cast<SimTime>(segment + 1) * Milliseconds(50));
  }
  const std::string want = KernelFingerprint(reference);

  // Crash run: panic at a segment boundary, reboot, finish the run.
  const fs::path crash_dir = FreshDir("kernel-crash");
  Kernel kernel(DiffOptions());
  PersistOptions options;
  options.dir = crash_dir.string();
  PersistManager persist(options);
  kernel.AttachPersist(&persist);
  ASSERT_TRUE(persist.Open().ok());
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelSpec).ok());
  constexpr int kPanicAfter = 4;
  for (int segment = 0; segment < kPanicAfter; ++segment) {
    ScheduleSegment(kernel, seed, segment);
    kernel.Run(static_cast<SimTime>(segment + 1) * Milliseconds(50));
  }
  kernel.Panic();
  EXPECT_TRUE(kernel.panicked());
  kernel.Run(Seconds(10));  // a panicked kernel does not run
  EXPECT_EQ(kernel.now(), static_cast<SimTime>(kPanicAfter) * Milliseconds(50));

  auto recovered = kernel.Reboot();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.value().cold_start) << recovered.value().detail;
  for (int segment = kPanicAfter; segment < kSegments; ++segment) {
    ScheduleSegment(kernel, seed, segment);
    kernel.Run(static_cast<SimTime>(segment + 1) * Milliseconds(50));
  }
  EXPECT_EQ(KernelFingerprint(kernel), want);
}

TEST(PersistKernel, ScheduledPanicDropsEventsAndRebootRecovers) {
  const fs::path dir = FreshDir("kernel-sched-panic");
  Kernel kernel(DiffOptions());
  PersistOptions options;
  options.dir = dir.string();
  PersistManager persist(options);
  kernel.AttachPersist(&persist);
  ASSERT_TRUE(persist.Open().ok());
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelSpec).ok());

  for (int segment = 0; segment < 4; ++segment) {
    ScheduleSegment(kernel, 23, segment);
  }
  int late_events = 0;
  kernel.queue().ScheduleAt(Milliseconds(150), [&](SimTime) { ++late_events; });
  kernel.SchedulePanicAt(Milliseconds(110));
  kernel.Run(Milliseconds(200));
  EXPECT_TRUE(kernel.panicked());
  EXPECT_EQ(late_events, 0);  // dropped by the panic
  EXPECT_TRUE(kernel.queue().empty());

  const auto before = kernel.engine().StatsFor("io-watch");
  auto recovered = kernel.Reboot();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(kernel.panicked());
  // The monitor is back, and its committed uptime history survived.
  auto after = kernel.engine().StatsFor("io-watch");
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(before.ok());
  EXPECT_LE(after.value().uptime_evals, before.value().uptime_evals);
  EXPECT_GT(after.value().uptime_evals, 0u);
  // And the rebooted kernel keeps running.
  ScheduleSegment(kernel, 23, 4);
  kernel.Run(Milliseconds(250));
  EXPECT_FALSE(kernel.panicked());
}

// A panic while the overload governor is mid-degradation must warm-restart
// into the same ladder state: the rung, the EWMA signals, the per-monitor
// sampling stride positions, and the already-pinned fail-static episode all
// ride the engine image (v2). If any of them reset, the resumed run would
// re-apply the static default or shift the stride — visible as a fingerprint
// divergence from the uninterrupted oracle.
TEST(PersistKernel, PanicMidDegradationRestoresTheGovernorLadder) {
  constexpr char kGovernedSpec[] = R"(
    guardrail gov-crit {
      trigger: { FUNCTION(hot) },
      rule: { LOAD_OR(sys.pressure, 0) <= 50 },
      action: { SAVE(ctl.safe_mode, true); REPORT("static default") },
      meta: { severity = critical, criticality = critical }
    }
    guardrail gov-std {
      trigger: { FUNCTION(hot) },
      rule: { LOAD_OR(sys.pressure, 0) <= 60 },
      action: { REPORT() }
    }
    guardrail gov-be {
      trigger: { FUNCTION(hot) },
      rule: { LOAD_OR(sys.load, 0) <= 70 },
      action: { REPORT() },
      meta: { criticality = besteffort }
    }
    persist { interval = 100ms, journal_budget = 0 }
  )";
  EngineOptions governed = DiffOptions();
  governed.governor.enabled = true;
  governed.governor.pressure_up = 5000.0;
  governed.governor.pressure_down = 500.0;
  governed.governor.dwell_up = 2;
  governed.governor.dwell_down = 3;
  governed.governor.sample_every = 3;
  governed.governor.alpha = 0.5;

  // Deterministic drive: a hot phase that walks the ladder down to
  // fail-static (pinning the critical default), then a calm phase that walks
  // it back up. `crash_at` callouts land mid-degradation.
  constexpr int kHotCallouts = 30;
  constexpr int kCalmCallouts = 14;
  constexpr int kCrashAt = 18;
  const auto drive = [](Kernel& kernel, int from, int to) {
    for (int i = from; i < to; ++i) {
      const SimTime t = (i < kHotCallouts) ? Milliseconds(1) + Microseconds(100) * i
                                           : Milliseconds(10) + Seconds(i - kHotCallouts);
      kernel.Run(t);
      kernel.Callout("hot");
    }
  };

  // Reference: no crash.
  const fs::path ref_dir = FreshDir("gov-ladder-ref");
  Kernel reference(governed);
  PersistOptions ref_options;
  ref_options.dir = ref_dir.string();
  PersistManager ref_persist(ref_options);
  reference.AttachPersist(&ref_persist);
  ASSERT_TRUE(ref_persist.Open().ok());
  ASSERT_TRUE(reference.LoadGuardrails(kGovernedSpec).ok());
  drive(reference, 0, kHotCallouts + kCalmCallouts);
  // The scenario is only meaningful if the ladder actually bottomed out and
  // recovered: a pinned episode, and full service again by the end.
  ASSERT_GE(reference.engine().governor().fail_static_epoch(), 1u);
  ASSERT_GE(reference.engine().governor().stats().static_applies, 1u);
  ASSERT_EQ(reference.engine().governor().mode(), GovernorMode::kFull);
  const std::string want = KernelFingerprint(reference);

  // Crash run: panic mid-degradation, warm-restart, finish the drive.
  const fs::path crash_dir = FreshDir("gov-ladder-crash");
  Kernel kernel(governed);
  PersistOptions options;
  options.dir = crash_dir.string();
  PersistManager persist(options);
  kernel.AttachPersist(&persist);
  ASSERT_TRUE(persist.Open().ok());
  ASSERT_TRUE(kernel.LoadGuardrails(kGovernedSpec).ok());
  drive(kernel, 0, kCrashAt);
  const GovernorMode mode_before = kernel.engine().governor().mode();
  const GovernorStats stats_before = kernel.engine().governor().stats();
  const uint64_t epoch_before = kernel.engine().governor().fail_static_epoch();
  ASSERT_NE(mode_before, GovernorMode::kFull);  // genuinely mid-degradation

  kernel.Panic();
  auto recovered = kernel.Reboot();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.value().cold_start) << recovered.value().detail;

  // The rebooted engine resumes on the same rung with the same counters —
  // not at kFull with a blank ladder.
  const OverloadGovernor& after = kernel.engine().governor();
  EXPECT_EQ(after.mode(), mode_before);
  EXPECT_EQ(after.fail_static_epoch(), epoch_before);
  EXPECT_EQ(after.stats().transitions, stats_before.transitions);
  EXPECT_EQ(after.stats().static_applies, stats_before.static_applies);
  EXPECT_EQ(after.stats().sheds_besteffort, stats_before.sheds_besteffort);

  drive(kernel, kCrashAt, kHotCallouts + kCalmCallouts);
  EXPECT_EQ(KernelFingerprint(kernel), want);
}

TEST(PersistKernel, RebootWithoutPersistIsACleanColdStart) {
  Kernel kernel(DiffOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(kKernelSpec).ok());
  kernel.Run(Milliseconds(100));
  kernel.Panic();
  auto recovered = kernel.Reboot();
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().cold_start);
  auto stats = kernel.engine().StatsFor("io-watch");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().uptime_evals, 0u);
  kernel.Run(Milliseconds(200));  // still functional
}

}  // namespace
}  // namespace osguard
