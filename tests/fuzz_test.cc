// Robustness ("fuzz-lite") tests: deterministic randomized sweeps asserting
// the pipeline's total-safety properties —
//   * the lexer/parser never crash and always return clean statuses,
//   * every program the compiler accepts passes the verifier,
//   * every program the verifier accepts executes without crashing (clean
//     value or clean error, never UB),
// which together are the "a bad spec cannot take down the kernel" argument.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "src/agent/trace.h"
#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/persist/persist.h"
#include "src/wl/sessiongen.h"
#include "src/runtime/helper_env.h"
#include "src/support/rng.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

constexpr char kValidSpec[] = R"(
guardrail complex-spec {
  trigger: { TIMER(500ms, 250ms, 60s), FUNCTION(blk_submit_io), ONCHANGE(err_rate) },
  rule: {
    COUNT(io_lat, 10s) == 0 || MEAN(io_lat, 10s) <= 2ms && P99(io_lat, 10s) <= 20ms,
    LOAD_OR(err_rate, 0) <= 0.1
  },
  action: {
    REPORT("violated", err_rate, NOW());
    REPLACE(learned_policy, fallback_policy);
    RETRAIN(learned_policy, recent_window);
    DEPRIORITIZE({batch, scan}, {0.5, 0.1});
    SAVE(ml_enabled, false);
  },
  on_satisfy: { SAVE(ml_enabled, true) },
  meta: { severity = critical, cooldown = 5s, hysteresis = 2 }
}
)";

constexpr char kValidChaosSpec[] = R"(
guardrail storm-watch {
  trigger: { TIMER(1s, 1s) },
  rule: { LOAD_OR(false_submit_rate, 0) <= 0.05 },
  action: { SAVE(blk.ml_enabled, false) }
}
chaos {
  seed = 42,
  site ssd.latency_spike { mode = bernoulli, p = 0.01, latency = 2ms },
  site model.mispredict { mode = burst, period = 5s, burst = 500ms, p = 0.9 },
  site engine.callout_drop { mode = schedule, nth = {3, 1, 4} },
  site runtime.helper_fail { mode = off }
}
)";

TEST(FuzzTest, EveryPrefixOfAValidSpecFailsCleanly) {
  const std::string source = kValidSpec;
  for (size_t length = 0; length < source.size(); ++length) {
    auto spec = ParseSpecSource(source.substr(0, length));
    // Truncations must produce a status, never crash. (A few prefixes that
    // end exactly at a guardrail boundary may parse — that's fine.)
    if (!spec.ok()) {
      EXPECT_FALSE(spec.status().message().empty());
    }
  }
  EXPECT_TRUE(ParseSpecSource(source).ok());
}

TEST(FuzzTest, EveryPrefixOfAChaosSpecFailsCleanly) {
  const std::string source = kValidChaosSpec;
  for (size_t length = 0; length < source.size(); ++length) {
    auto spec = ParseSpecSource(source.substr(0, length));
    if (!spec.ok()) {
      EXPECT_FALSE(spec.status().message().empty());
    } else {
      // A prefix that parses must also analyze without crashing.
      Analyze(std::move(spec).value()).ok();
    }
  }
  auto full = ParseSpecSource(source);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(Analyze(std::move(full).value()).ok());
}

TEST(FuzzTest, RandomChaosBlocksNeverCrashAndDiagnoseStably) {
  // Random chaos blocks assembled from the real attribute vocabulary plus
  // junk: lexer -> parser -> sema must return cleanly, and running the
  // pipeline twice on the same source must produce the same status and the
  // same message (stable diagnostics — no pointer values, no iteration-order
  // dependence).
  const std::vector<std::string> keys = {"mode", "p",     "nth",  "period",
                                         "burst", "latency", "value", "seed",
                                         "junk_attr"};
  const std::vector<std::string> values = {"bernoulli", "schedule", "burst", "off",
                                           "0.5",       "1",        "-3",    "2ms",
                                           "5s",        "{1, 2, 3}", "{}",   "true",
                                           "\"text\"",  "teapot"};
  const std::vector<std::string> sites = {"ssd.latency_spike", "model.mispredict", "s",
                                          "a.b.c"};
  Rng rng(606);
  auto run_pipeline = [](const std::string& source) -> std::pair<bool, std::string> {
    auto spec = ParseSpecSource(source);
    if (!spec.ok()) {
      return {false, std::string(spec.status().message())};
    }
    auto analyzed = Analyze(std::move(spec).value());
    if (!analyzed.ok()) {
      return {false, std::string(analyzed.status().message())};
    }
    return {true, ""};
  };
  int parsed_ok = 0;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string source = "chaos {\n";
    if (rng.Bernoulli(0.5)) {
      source += "  seed = " + std::to_string(rng.UniformInt(-2, 100)) + ",\n";
    }
    const int site_count = static_cast<int>(rng.UniformInt(0, 3));
    for (int s = 0; s < site_count; ++s) {
      source += "  site " + sites[static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(sites.size()) - 1))] +
                " { ";
      const int attrs = static_cast<int>(rng.UniformInt(0, 4));
      for (int a = 0; a < attrs; ++a) {
        if (a > 0) {
          source += ", ";
        }
        source += keys[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))] +
                  " = " +
                  values[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(values.size()) - 1))];
      }
      source += " },\n";
    }
    source += "}\n";
    const auto first = run_pipeline(source);
    const auto second = run_pipeline(source);
    EXPECT_EQ(first, second) << source;  // deterministic verdict AND message
    if (first.first) {
      ++parsed_ok;
    }
  }
  // The generator is not vacuous: a decent share of blocks is fully valid.
  EXPECT_GT(parsed_ok, 50);
}

TEST(FuzzTest, CorpusSpecsParseWithStableDiagnostics) {
  // Seed corpus under tests/corpus/: known-good and known-bad chaos specs.
  // Every file must run the pipeline without crashing, twice, with identical
  // diagnostics; files named valid_* must parse and analyze cleanly, files
  // named invalid_* must be rejected with a non-empty message.
  const std::filesystem::path corpus_dir = OSGUARD_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(corpus_dir)) << corpus_dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
    if (entry.path().extension() != ".spec") {
      continue;
    }
    ++files;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    auto pipeline = [&source]() -> std::pair<bool, std::string> {
      auto spec = ParseSpecSource(source);
      if (!spec.ok()) {
        return {false, std::string(spec.status().message())};
      }
      auto analyzed = Analyze(std::move(spec).value());
      if (!analyzed.ok()) {
        return {false, std::string(analyzed.status().message())};
      }
      return {true, ""};
    };
    const auto first = pipeline();
    const auto second = pipeline();
    EXPECT_EQ(first, second) << entry.path();
    const std::string stem = entry.path().stem().string();
    if (stem.rfind("valid_", 0) == 0) {
      EXPECT_TRUE(first.first) << entry.path() << ": " << first.second;
    } else if (stem.rfind("invalid_", 0) == 0) {
      EXPECT_FALSE(first.first) << entry.path();
      EXPECT_FALSE(first.second.empty()) << entry.path();
    }
  }
  EXPECT_GE(files, 6) << "corpus went missing from " << corpus_dir;
}

// --- osguard::persist decoder targets ---
// The journal/snapshot codecs parse bytes that survived a crash, so they are
// the one place where "never crash, stable diagnostics" has to hold against
// genuinely arbitrary input, not just malformed specs.

JournalFrame PersistFuzzFrame(uint64_t seq) {
  JournalFrame frame;
  frame.seq = seq;
  frame.now = static_cast<SimTime>(seq) * Milliseconds(5);
  StoreOp save;
  save.kind = StoreMutation::Kind::kSave;
  save.key = "key" + std::to_string(seq);
  save.value = Value(static_cast<double>(seq));
  frame.ops.push_back(save);
  StoreOp observe;
  observe.kind = StoreMutation::Kind::kObserve;
  observe.key = "series";
  observe.time = frame.now;
  observe.sample = 1.5 * static_cast<double>(seq);
  frame.ops.push_back(observe);
  frame.report_delta = "delta-" + std::to_string(seq);
  frame.image = "image-" + std::to_string(seq);
  return frame;
}

// ScanJournal/DecodeSnapshot results reduced to a comparable verdict.
std::tuple<size_t, size_t, size_t, std::string> ScanVerdict(const std::string& bytes) {
  const FrameScan scan = ScanJournal(bytes);
  return {scan.frames.size(), scan.valid_bytes, scan.discarded_bytes, scan.detail};
}

TEST(FuzzTest, RandomBytesNeverCrashThePersistDecoders) {
  Rng rng(707);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.UniformInt(0, 255));
    }
    // Both decoders must return cleanly and deterministically.
    EXPECT_EQ(ScanVerdict(garbage), ScanVerdict(garbage));
    auto first = DecodeSnapshot(garbage);
    auto second = DecodeSnapshot(garbage);
    EXPECT_EQ(first.ok(), second.ok());
    if (!first.ok()) {
      EXPECT_EQ(first.status().message(), second.status().message());
      EXPECT_FALSE(first.status().message().empty());
    }
  }
}

TEST(FuzzTest, MutatedJournalsKeepTheValidPrefixAndDiagnoseStably) {
  std::string valid;
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    AppendFrame(PersistFuzzFrame(seq), &valid);
  }
  const FrameScan clean = ScanJournal(valid);
  ASSERT_EQ(clean.frames.size(), 6u);
  ASSERT_TRUE(clean.detail.empty());

  Rng rng(808);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string mutated = valid;
    switch (rng.UniformInt(0, 3)) {
      case 0: {  // single bit flip
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[at] = static_cast<char>(mutated[at] ^ (1u << rng.UniformInt(0, 7)));
        break;
      }
      case 1:  // truncated tail
        mutated.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()))));
        break;
      case 2: {  // random byte overwrite run
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        const size_t run = static_cast<size_t>(rng.UniformInt(1, 8));
        for (size_t i = at; i < mutated.size() && i < at + run; ++i) {
          mutated[i] = static_cast<char>(rng.UniformInt(0, 255));
        }
        break;
      }
      default:  // garbage appended after the valid frames
        for (int i = 0; i < 16; ++i) {
          mutated += static_cast<char>(rng.UniformInt(0, 255));
        }
        break;
    }
    const FrameScan scan = ScanJournal(mutated);
    EXPECT_EQ(ScanVerdict(mutated), ScanVerdict(mutated));  // stable
    // Total safety: whatever survives the scan is a prefix of real frames —
    // every accepted frame must decode identically to the original at its
    // position, unless the mutation landed beyond it.
    ASSERT_LE(scan.valid_bytes, mutated.size());
    for (size_t i = 0; i < scan.frames.size() && i < clean.frames.size(); ++i) {
      if (mutated.compare(0, clean.frame_ends[i], valid, 0, clean.frame_ends[i]) == 0) {
        EXPECT_EQ(scan.frames[i].seq, clean.frames[i].seq);
        EXPECT_EQ(scan.frames[i].image, clean.frames[i].image);
      }
    }
  }
}

TEST(FuzzTest, PersistCorpusBinarySeedsDecodeStably) {
  // Binary seed corpus under tests/corpus/*.bin: known-good and known-damaged
  // journal/snapshot images produced by the real codec. Every file must run
  // both decoders without crashing, twice, with identical results; files
  // named valid_* must decode cleanly, the rest must surface their damage.
  const std::filesystem::path corpus_dir = OSGUARD_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(corpus_dir)) << corpus_dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
    if (entry.path().extension() != ".bin") {
      continue;
    }
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty()) << entry.path();

    EXPECT_EQ(ScanVerdict(bytes), ScanVerdict(bytes)) << entry.path();
    auto snap_first = DecodeSnapshot(bytes);
    auto snap_second = DecodeSnapshot(bytes);
    EXPECT_EQ(snap_first.ok(), snap_second.ok()) << entry.path();

    const std::string stem = entry.path().stem().string();
    const FrameScan scan = ScanJournal(bytes);
    if (stem.rfind("valid_journal", 0) == 0) {
      EXPECT_TRUE(scan.detail.empty()) << entry.path() << ": " << scan.detail;
      EXPECT_GT(scan.frames.size(), 0u) << entry.path();
      EXPECT_EQ(scan.discarded_bytes, 0u) << entry.path();
    } else if (stem.rfind("valid_snapshot", 0) == 0) {
      EXPECT_TRUE(snap_first.ok()) << entry.path() << ": "
                                   << snap_first.status().ToString();
    } else if (stem.rfind("torn_", 0) == 0 || stem.rfind("bitflip_", 0) == 0) {
      EXPECT_FALSE(scan.detail.empty()) << entry.path();
      EXPECT_GT(scan.discarded_bytes, 0u) << entry.path();
    } else if (stem.rfind("truncated_", 0) == 0) {
      EXPECT_FALSE(snap_first.ok()) << entry.path();
      EXPECT_FALSE(snap_first.status().message().empty()) << entry.path();
    }
  }
  EXPECT_GE(files, 5) << "binary corpus went missing from " << corpus_dir;
}

// --- osguard::agent trace decoder targets ---
// Tool-call traces cross a trust boundary (operators replay recorded agent
// sessions through the governor), so the decoder gets the same treatment as
// the persist codecs: never crash, reject garbage with a clean error, and
// diagnose identical inputs identically.

// DecodeTrace reduced to a comparable verdict.
std::pair<bool, std::string> TraceVerdict(const std::string& text) {
  auto decoded = agent::DecodeTrace(text);
  if (!decoded.ok()) {
    return {false, std::string(decoded.status().message())};
  }
  return {true, ""};
}

TEST(FuzzTest, RandomBytesNeverCrashTheAgentTraceDecoder) {
  Rng rng(909);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < length; ++i) {
      // Bias toward the decoder's own alphabet so mutations reach deep into
      // the field parsers instead of dying at the first byte.
      if (rng.Bernoulli(0.7)) {
        constexpr char kAlphabet[] = "0123456789,\n#filenetxc -";
        garbage += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
      } else {
        garbage += static_cast<char>(rng.UniformInt(0, 255));
      }
    }
    const auto first = TraceVerdict(garbage);
    EXPECT_EQ(first, TraceVerdict(garbage));  // stable verdict AND message
    if (!first.first) {
      EXPECT_FALSE(first.second.empty());
    }
  }
}

TEST(FuzzTest, MutatedAgentTracesDiagnoseStably) {
  // Start from a real generated workload so the valid baseline is large and
  // structurally diverse, then mutate it every way a file on disk can rot.
  SessionWorkloadOptions options;
  options.duration = Milliseconds(300);
  options.sessions_per_sec = 60.0;
  const std::vector<agent::ToolCallEvent> events =
      SessionCallGenerator(options, 909).Generate();
  ASSERT_GT(events.size(), 50u);
  const std::string valid = agent::EncodeTrace(events);
  auto round_trip = agent::DecodeTrace(valid);
  ASSERT_TRUE(round_trip.ok());
  ASSERT_EQ(round_trip.value(), events);

  Rng rng(1010);
  int rejected = 0;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string mutated = valid;
    switch (rng.UniformInt(0, 3)) {
      case 0: {  // single byte corruption
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[at] = static_cast<char>(rng.UniformInt(0, 255));
        break;
      }
      case 1:  // truncated tail (may split a line mid-field)
        mutated.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()))));
        break;
      case 2: {  // duplicated line range (breaks timestamp monotonicity)
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated.insert(at, valid.substr(0, static_cast<size_t>(
                               rng.UniformInt(1, 40))));
        break;
      }
      default:  // garbage appended after the valid lines
        for (int i = 0; i < 16; ++i) {
          mutated += static_cast<char>(rng.UniformInt(0, 255));
        }
        break;
    }
    const auto first = TraceVerdict(mutated);
    EXPECT_EQ(first, TraceVerdict(mutated));
    if (!first.first) {
      ++rejected;
      EXPECT_FALSE(first.second.empty());
    }
  }
  // Most mutations break the format; the rest must decode cleanly (e.g. a
  // truncation on a line boundary is a shorter valid trace).
  EXPECT_GT(rejected, 1000);
}

TEST(FuzzTest, GeneratedWorkloadsRoundTripThroughTheTraceCodec) {
  // Differential property across many seeds: Encode then Decode is the
  // identity on every stream the workload generator can emit.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    SessionWorkloadOptions options;
    options.duration = Milliseconds(150);
    options.sessions_per_sec = 80.0;
    options.secret_fraction = 0.1;
    const std::vector<agent::ToolCallEvent> events =
        SessionCallGenerator(options, seed).Generate();
    auto decoded = agent::DecodeTrace(agent::EncodeTrace(events));
    ASSERT_TRUE(decoded.ok()) << "seed=" << seed << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), events) << "seed=" << seed;
  }
}

TEST(FuzzTest, AgentTraceCorpusDecodesStably) {
  // Seed corpus under tests/corpus/*.trace: files named valid_* must decode
  // cleanly, files named invalid_* must be rejected with a non-empty
  // message; both twice, with identical diagnostics.
  const std::filesystem::path corpus_dir = OSGUARD_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(corpus_dir)) << corpus_dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
    if (entry.path().extension() != ".trace") {
      continue;
    }
    ++files;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto first = TraceVerdict(text);
    EXPECT_EQ(first, TraceVerdict(text)) << entry.path();
    const std::string stem = entry.path().stem().string();
    if (stem.rfind("valid_", 0) == 0) {
      EXPECT_TRUE(first.first) << entry.path() << ": " << first.second;
    } else if (stem.rfind("invalid_", 0) == 0) {
      EXPECT_FALSE(first.first) << entry.path();
      EXPECT_FALSE(first.second.empty()) << entry.path();
    }
  }
  EXPECT_GE(files, 5) << "trace corpus went missing from " << corpus_dir;
}

TEST(FuzzTest, RandomBytesNeverCrashTheLexer) {
  Rng rng(101);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.UniformInt(1, 127));
    }
    Lexer lexer(garbage);
    auto tokens = lexer.Tokenize();  // ok or clean error; must not crash
    if (!tokens.ok()) {
      EXPECT_EQ(tokens.status().code(), ErrorCode::kParseError);
    }
  }
}

TEST(FuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  const std::vector<std::string> vocabulary = {
      "guardrail", "trigger",   "rule",  "action", "meta",   "on_satisfy", "TIMER",
      "FUNCTION",  "ONCHANGE",  "LOAD",  "SAVE",   "REPORT", "MEAN",       "{",
      "}",         "(",         ")",     ",",      ":",      ";",          "<=",
      ">=",        "==",        "&&",    "||",     "!",      "+",          "-",
      "*",         "/",         "1",     "0.05",   "1s",     "250ms",      "true",
      "false",     "\"text\"",  "x",     "a_key",  "=",      "severity",   "chaos",
      "site",      "mode",      "bernoulli",       "nth",    "seed",       "burst",
      "period",    "ssd.latency_spike"};
  Rng rng(202);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string source;
    const int tokens = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < tokens; ++i) {
      source += vocabulary[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vocabulary.size()) - 1))];
      source += " ";
    }
    auto spec = ParseSpecSource(source);
    if (spec.ok()) {
      // If it parsed, analysis and compilation must also behave (ok or
      // clean status) — exercise the rest of the pipeline too.
      auto analyzed = Analyze(std::move(spec).value());
      if (analyzed.ok()) {
        auto compiled = CompileSpec(analyzed.value());
        if (compiled.ok()) {
          for (const CompiledGuardrail& guardrail : compiled.value()) {
            EXPECT_TRUE(Verify(guardrail.rule).ok());
          }
        }
      }
    }
  }
}

// Random expression generator producing syntactically valid, possibly
// semantically degenerate expressions.
std::string RandomExpr(Rng& rng, int depth) {
  if (depth <= 0) {
    switch (rng.UniformInt(0, 5)) {
      case 0:
        return std::to_string(rng.UniformInt(-100, 100));
      case 1:
        return "0." + std::to_string(rng.UniformInt(0, 99));
      case 2:
        return "some_key";
      case 3:
        return "LOAD_OR(k" + std::to_string(rng.UniformInt(0, 5)) + ", " +
               std::to_string(rng.UniformInt(0, 9)) + ")";
      case 4:
        return rng.Bernoulli(0.5) ? "true" : "false";
      default:
        return std::to_string(rng.UniformInt(1, 5)) + "s";
    }
  }
  switch (rng.UniformInt(0, 7)) {
    case 0:
      return "(" + RandomExpr(rng, depth - 1) + " + " + RandomExpr(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomExpr(rng, depth - 1) + " * " + RandomExpr(rng, depth - 1) + ")";
    case 2:
      return "(" + RandomExpr(rng, depth - 1) + " / " + RandomExpr(rng, depth - 1) + ")";
    case 3:
      return "(" + RandomExpr(rng, depth - 1) + " <= " + RandomExpr(rng, depth - 1) + ")";
    case 4:
      return "(" + RandomExpr(rng, depth - 1) + " && " + RandomExpr(rng, depth - 1) + ")";
    case 5:
      return "(" + RandomExpr(rng, depth - 1) + " || " + RandomExpr(rng, depth - 1) + ")";
    case 6:
      return "!" + RandomExpr(rng, depth - 1);
    default:
      return "ABS(" + RandomExpr(rng, depth - 1) + ")";
  }
}

TEST(FuzzTest, RandomExpressionsCompileVerifyAndExecuteSafely) {
  Rng rng(303);
  FeatureStore store;
  store.Save("some_key", Value(3.5));
  for (int k = 0; k < 6; ++k) {
    store.Save("k" + std::to_string(k), Value(k));
  }
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"fuzz", Severity::kInfo, Seconds(1)});
  Vm vm;

  int executed_ok = 0;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const std::string source = RandomExpr(rng, static_cast<int>(rng.UniformInt(1, 4)));
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;  // generator emits valid syntax
    auto program = CompileExpr(*expr.value(), "fuzz");
    if (!program.ok()) {
      // Deep nesting can exceed registers — must be a clean verifier error.
      EXPECT_EQ(program.status().code(), ErrorCode::kVerifierError) << source;
      continue;
    }
    EXPECT_TRUE(Verify(program.value()).ok()) << source;
    auto result = vm.Execute(program.value(), env);
    if (result.ok()) {
      ++executed_ok;
    } else {
      // Division by zero etc.: clean execution errors only.
      EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError) << source;
    }
  }
  EXPECT_GT(executed_ok, 1000);  // most random expressions actually run
}

TEST(FuzzTest, MutatedProgramsNeverCrashTheVm) {
  // Take a real compiled program, randomly mutate instruction fields, and
  // run everything the verifier still accepts. The VM must return a value
  // or a clean error for every accepted mutant.
  auto expr = ParseExprSource("LOAD_OR(a, 1) + MEAN(s, 10s) <= 2 * ABS(b) && EXISTS(c)");
  ASSERT_TRUE(expr.ok());
  auto base = CompileExpr(*expr.value(), "mutant-base");
  ASSERT_TRUE(base.ok());

  FeatureStore store;
  store.Save("a", Value(1));
  store.Save("b", Value(-2.0));
  store.Observe("s", Seconds(1), 4.0);
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"mutant", Severity::kInfo, Seconds(1)});
  Vm vm;

  Rng rng(404);
  int accepted = 0;
  for (int iteration = 0; iteration < 5000; ++iteration) {
    Program mutant = base.value();
    const int mutations = static_cast<int>(rng.UniformInt(1, 3));
    for (int m = 0; m < mutations; ++m) {
      Insn& insn = mutant.insns[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutant.insns.size()) - 1))];
      switch (rng.UniformInt(0, 4)) {
        case 0:
          insn.op = static_cast<Op>(rng.UniformInt(0, 25));
          break;
        case 1:
          insn.a = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        case 2:
          insn.b = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        case 3:
          insn.c = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        default:
          insn.imm = static_cast<int32_t>(rng.UniformInt(-4, 80));
          break;
      }
    }
    if (!Verify(mutant).ok()) {
      continue;  // rejected mutants are the verifier doing its job
    }
    ++accepted;
    auto result = vm.Execute(mutant, env);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError);
    }
  }
  // The verifier is strict but not vacuous: some mutants survive.
  EXPECT_GT(accepted, 10);
}

TEST(FuzzTest, RandomConstExpressionsMatchReferenceEvaluator) {
  // Deterministic differential test: for const-only expressions, the
  // compiled program and the AST evaluator must agree exactly.
  Rng rng(505);
  FeatureStore store;
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"diff", Severity::kInfo, 0});
  Vm vm;

  auto random_const_expr = [&rng](auto&& self, int depth) -> std::string {
    if (depth <= 0) {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          return std::to_string(rng.UniformInt(-20, 20));
        case 1:
          return std::to_string(rng.UniformInt(0, 9)) + "." +
                 std::to_string(rng.UniformInt(0, 9));
        default:
          return rng.Bernoulli(0.5) ? "true" : "false";
      }
    }
    static const char* ops[] = {"+", "-", "*", "<=", "<", "==", "&&", "||"};
    const char* op = ops[rng.UniformInt(0, 7)];
    return "(" + self(self, depth - 1) + " " + op + " " + self(self, depth - 1) + ")";
  };

  int compared = 0;
  for (int iteration = 0; iteration < 3000; ++iteration) {
    const std::string source =
        random_const_expr(random_const_expr, static_cast<int>(rng.UniformInt(1, 4)));
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto reference = EvalConst(*expr.value());
    if (!reference.ok()) {
      continue;  // e.g. arithmetic on bool subtree rejected by the folder
    }
    auto program = CompileExpr(*expr.value(), "diff");
    if (!program.ok()) {
      continue;
    }
    auto executed = vm.Execute(program.value(), env);
    if (!executed.ok()) {
      continue;  // e.g. arithmetic type faults the VM flags at run time
    }
    EXPECT_NEAR(executed.value().NumericOr(-7777), reference.value().NumericOr(-9999), 1e-9)
        << source;
    ++compared;
  }
  EXPECT_GT(compared, 1500);
}

}  // namespace
}  // namespace osguard
