// Robustness ("fuzz-lite") tests: deterministic randomized sweeps asserting
// the pipeline's total-safety properties —
//   * the lexer/parser never crash and always return clean statuses,
//   * every program the compiler accepts passes the verifier,
//   * every program the verifier accepts executes without crashing (clean
//     value or clean error, never UB),
// which together are the "a bad spec cannot take down the kernel" argument.

#include <gtest/gtest.h>

#include <string>

#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/helper_env.h"
#include "src/support/rng.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

constexpr char kValidSpec[] = R"(
guardrail complex-spec {
  trigger: { TIMER(500ms, 250ms, 60s), FUNCTION(blk_submit_io), ONCHANGE(err_rate) },
  rule: {
    COUNT(io_lat, 10s) == 0 || MEAN(io_lat, 10s) <= 2ms && P99(io_lat, 10s) <= 20ms,
    LOAD_OR(err_rate, 0) <= 0.1
  },
  action: {
    REPORT("violated", err_rate, NOW());
    REPLACE(learned_policy, fallback_policy);
    RETRAIN(learned_policy, recent_window);
    DEPRIORITIZE({batch, scan}, {0.5, 0.1});
    SAVE(ml_enabled, false);
  },
  on_satisfy: { SAVE(ml_enabled, true) },
  meta: { severity = critical, cooldown = 5s, hysteresis = 2 }
}
)";

TEST(FuzzTest, EveryPrefixOfAValidSpecFailsCleanly) {
  const std::string source = kValidSpec;
  for (size_t length = 0; length < source.size(); ++length) {
    auto spec = ParseSpecSource(source.substr(0, length));
    // Truncations must produce a status, never crash. (A few prefixes that
    // end exactly at a guardrail boundary may parse — that's fine.)
    if (!spec.ok()) {
      EXPECT_FALSE(spec.status().message().empty());
    }
  }
  EXPECT_TRUE(ParseSpecSource(source).ok());
}

TEST(FuzzTest, RandomBytesNeverCrashTheLexer) {
  Rng rng(101);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.UniformInt(1, 127));
    }
    Lexer lexer(garbage);
    auto tokens = lexer.Tokenize();  // ok or clean error; must not crash
    if (!tokens.ok()) {
      EXPECT_EQ(tokens.status().code(), ErrorCode::kParseError);
    }
  }
}

TEST(FuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  const std::vector<std::string> vocabulary = {
      "guardrail", "trigger",   "rule",  "action", "meta",   "on_satisfy", "TIMER",
      "FUNCTION",  "ONCHANGE",  "LOAD",  "SAVE",   "REPORT", "MEAN",       "{",
      "}",         "(",         ")",     ",",      ":",      ";",          "<=",
      ">=",        "==",        "&&",    "||",     "!",      "+",          "-",
      "*",         "/",         "1",     "0.05",   "1s",     "250ms",      "true",
      "false",     "\"text\"",  "x",     "a_key",  "=",      "severity"};
  Rng rng(202);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string source;
    const int tokens = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < tokens; ++i) {
      source += vocabulary[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vocabulary.size()) - 1))];
      source += " ";
    }
    auto spec = ParseSpecSource(source);
    if (spec.ok()) {
      // If it parsed, analysis and compilation must also behave (ok or
      // clean status) — exercise the rest of the pipeline too.
      auto analyzed = Analyze(std::move(spec).value());
      if (analyzed.ok()) {
        auto compiled = CompileSpec(analyzed.value());
        if (compiled.ok()) {
          for (const CompiledGuardrail& guardrail : compiled.value()) {
            EXPECT_TRUE(Verify(guardrail.rule).ok());
          }
        }
      }
    }
  }
}

// Random expression generator producing syntactically valid, possibly
// semantically degenerate expressions.
std::string RandomExpr(Rng& rng, int depth) {
  if (depth <= 0) {
    switch (rng.UniformInt(0, 5)) {
      case 0:
        return std::to_string(rng.UniformInt(-100, 100));
      case 1:
        return "0." + std::to_string(rng.UniformInt(0, 99));
      case 2:
        return "some_key";
      case 3:
        return "LOAD_OR(k" + std::to_string(rng.UniformInt(0, 5)) + ", " +
               std::to_string(rng.UniformInt(0, 9)) + ")";
      case 4:
        return rng.Bernoulli(0.5) ? "true" : "false";
      default:
        return std::to_string(rng.UniformInt(1, 5)) + "s";
    }
  }
  switch (rng.UniformInt(0, 7)) {
    case 0:
      return "(" + RandomExpr(rng, depth - 1) + " + " + RandomExpr(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomExpr(rng, depth - 1) + " * " + RandomExpr(rng, depth - 1) + ")";
    case 2:
      return "(" + RandomExpr(rng, depth - 1) + " / " + RandomExpr(rng, depth - 1) + ")";
    case 3:
      return "(" + RandomExpr(rng, depth - 1) + " <= " + RandomExpr(rng, depth - 1) + ")";
    case 4:
      return "(" + RandomExpr(rng, depth - 1) + " && " + RandomExpr(rng, depth - 1) + ")";
    case 5:
      return "(" + RandomExpr(rng, depth - 1) + " || " + RandomExpr(rng, depth - 1) + ")";
    case 6:
      return "!" + RandomExpr(rng, depth - 1);
    default:
      return "ABS(" + RandomExpr(rng, depth - 1) + ")";
  }
}

TEST(FuzzTest, RandomExpressionsCompileVerifyAndExecuteSafely) {
  Rng rng(303);
  FeatureStore store;
  store.Save("some_key", Value(3.5));
  for (int k = 0; k < 6; ++k) {
    store.Save("k" + std::to_string(k), Value(k));
  }
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"fuzz", Severity::kInfo, Seconds(1)});
  Vm vm;

  int executed_ok = 0;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const std::string source = RandomExpr(rng, static_cast<int>(rng.UniformInt(1, 4)));
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;  // generator emits valid syntax
    auto program = CompileExpr(*expr.value(), "fuzz");
    if (!program.ok()) {
      // Deep nesting can exceed registers — must be a clean verifier error.
      EXPECT_EQ(program.status().code(), ErrorCode::kVerifierError) << source;
      continue;
    }
    EXPECT_TRUE(Verify(program.value()).ok()) << source;
    auto result = vm.Execute(program.value(), env);
    if (result.ok()) {
      ++executed_ok;
    } else {
      // Division by zero etc.: clean execution errors only.
      EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError) << source;
    }
  }
  EXPECT_GT(executed_ok, 1000);  // most random expressions actually run
}

TEST(FuzzTest, MutatedProgramsNeverCrashTheVm) {
  // Take a real compiled program, randomly mutate instruction fields, and
  // run everything the verifier still accepts. The VM must return a value
  // or a clean error for every accepted mutant.
  auto expr = ParseExprSource("LOAD_OR(a, 1) + MEAN(s, 10s) <= 2 * ABS(b) && EXISTS(c)");
  ASSERT_TRUE(expr.ok());
  auto base = CompileExpr(*expr.value(), "mutant-base");
  ASSERT_TRUE(base.ok());

  FeatureStore store;
  store.Save("a", Value(1));
  store.Save("b", Value(-2.0));
  store.Observe("s", Seconds(1), 4.0);
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"mutant", Severity::kInfo, Seconds(1)});
  Vm vm;

  Rng rng(404);
  int accepted = 0;
  for (int iteration = 0; iteration < 5000; ++iteration) {
    Program mutant = base.value();
    const int mutations = static_cast<int>(rng.UniformInt(1, 3));
    for (int m = 0; m < mutations; ++m) {
      Insn& insn = mutant.insns[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutant.insns.size()) - 1))];
      switch (rng.UniformInt(0, 4)) {
        case 0:
          insn.op = static_cast<Op>(rng.UniformInt(0, 25));
          break;
        case 1:
          insn.a = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        case 2:
          insn.b = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        case 3:
          insn.c = static_cast<uint8_t>(rng.UniformInt(0, 70));
          break;
        default:
          insn.imm = static_cast<int32_t>(rng.UniformInt(-4, 80));
          break;
      }
    }
    if (!Verify(mutant).ok()) {
      continue;  // rejected mutants are the verifier doing its job
    }
    ++accepted;
    auto result = vm.Execute(mutant, env);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError);
    }
  }
  // The verifier is strict but not vacuous: some mutants survive.
  EXPECT_GT(accepted, 10);
}

TEST(FuzzTest, RandomConstExpressionsMatchReferenceEvaluator) {
  // Deterministic differential test: for const-only expressions, the
  // compiled program and the AST evaluator must agree exactly.
  Rng rng(505);
  FeatureStore store;
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"diff", Severity::kInfo, 0});
  Vm vm;

  auto random_const_expr = [&rng](auto&& self, int depth) -> std::string {
    if (depth <= 0) {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          return std::to_string(rng.UniformInt(-20, 20));
        case 1:
          return std::to_string(rng.UniformInt(0, 9)) + "." +
                 std::to_string(rng.UniformInt(0, 9));
        default:
          return rng.Bernoulli(0.5) ? "true" : "false";
      }
    }
    static const char* ops[] = {"+", "-", "*", "<=", "<", "==", "&&", "||"};
    const char* op = ops[rng.UniformInt(0, 7)];
    return "(" + self(self, depth - 1) + " " + op + " " + self(self, depth - 1) + ")";
  };

  int compared = 0;
  for (int iteration = 0; iteration < 3000; ++iteration) {
    const std::string source =
        random_const_expr(random_const_expr, static_cast<int>(rng.UniformInt(1, 4)));
    auto expr = ParseExprSource(source);
    ASSERT_TRUE(expr.ok()) << source;
    auto reference = EvalConst(*expr.value());
    if (!reference.ok()) {
      continue;  // e.g. arithmetic on bool subtree rejected by the folder
    }
    auto program = CompileExpr(*expr.value(), "diff");
    if (!program.ok()) {
      continue;
    }
    auto executed = vm.Execute(program.value(), env);
    if (!executed.ok()) {
      continue;  // e.g. arithmetic type faults the VM flags at run time
    }
    EXPECT_NEAR(executed.value().NumericOr(-7777), reference.value().NumericOr(-9999), 1e-9)
        << source;
    ++compared;
  }
  EXPECT_GT(compared, 1500);
}

}  // namespace
}  // namespace osguard
