// Semantic-analysis tests: trigger folding, rule purity, action validation,
// meta vocabulary, constant evaluation, and type inference.

#include <gtest/gtest.h>

#include "src/dsl/parser.h"
#include "src/dsl/sema.h"

namespace osguard {
namespace {

Result<AnalyzedSpec> AnalyzeSource(const std::string& source) {
  auto spec = ParseSpecSource(source);
  if (!spec.ok()) {
    return spec.status();
  }
  return Analyze(std::move(spec).value());
}

AnalyzedSpec AnalyzeOk(const std::string& source) {
  auto analyzed = AnalyzeSource(source);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return analyzed.ok() ? std::move(analyzed).value() : AnalyzedSpec{};
}

Status AnalyzeFailure(const std::string& source) {
  auto analyzed = AnalyzeSource(source);
  EXPECT_FALSE(analyzed.ok()) << "expected semantic failure";
  return analyzed.ok() ? OkStatus() : analyzed.status();
}

TEST(SemaTest, TimerArgsAreConstantFolded) {
  const AnalyzedSpec spec = AnalyzeOk(R"(
    guardrail g {
      trigger: { TIMER(2s + 500ms, 2 * 250ms, 60s) },
      rule: { true }, action: { REPORT() }
    }
  )");
  const TriggerDecl& trigger = spec.guardrails[0].decl.triggers[0];
  EXPECT_EQ(trigger.start, 2500000000);
  EXPECT_EQ(trigger.interval, 500000000);
  EXPECT_EQ(trigger.stop, 60000000000);
}

TEST(SemaTest, TimerWithoutStopIsForever) {
  const AnalyzedSpec spec = AnalyzeOk(R"(
    guardrail g { trigger: { TIMER(0, 1s) }, rule: { true }, action: { REPORT() } }
  )");
  EXPECT_EQ(spec.guardrails[0].decl.triggers[0].stop, 0);
}

TEST(SemaTest, TimerNonConstantArgsRejected) {
  const Status status = AnalyzeFailure(R"(
    guardrail g { trigger: { TIMER(LOAD(x), 1s) }, rule: { true }, action: { REPORT() } }
  )");
  EXPECT_EQ(status.code(), ErrorCode::kSemanticError);
}

TEST(SemaTest, TimerZeroIntervalRejected) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0, 0) }, rule: { true }, action: { REPORT() } }
  )").ok());
}

TEST(SemaTest, TimerNegativeStartRejected) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0 - 5s, 1s) }, rule: { true }, action: { REPORT() } }
  )").ok());
}

TEST(SemaTest, TimerStopBeforeStartRejected) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(10s, 1s, 5s) }, rule: { true }, action: { REPORT() } }
  )").ok());
}

TEST(SemaTest, DuplicateGuardrailNamesRejected) {
  const Status status = AnalyzeFailure(R"(
    guardrail same { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() } }
    guardrail same { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() } }
  )");
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(SemaTest, SideEffectsForbiddenInRules) {
  for (const char* rule : {"SAVE(x, 1) == 1", "INCR(x) > 0", "OBSERVE(x, 1) == 0"}) {
    const std::string source = std::string(R"(
      guardrail g { trigger: { TIMER(0,1s) }, rule: { )") +
                               rule + R"( }, action: { REPORT() } }
    )";
    auto analyzed = AnalyzeSource(source);
    EXPECT_FALSE(analyzed.ok()) << rule;
    if (!analyzed.ok()) {
      EXPECT_NE(analyzed.status().message().find("side effects"), std::string::npos) << rule;
    }
  }
}

TEST(SemaTest, ActionsForbiddenInRules) {
  for (const char* rule :
       {"REPORT() == 0", "REPLACE(a, b) == 0", "RETRAIN(m) == 0"}) {
    const std::string source = std::string(R"(
      guardrail g { trigger: { TIMER(0,1s) }, rule: { )") +
                               rule + R"( }, action: { REPORT() } }
    )";
    EXPECT_FALSE(AnalyzeSource(source).ok()) << rule;
  }
}

TEST(SemaTest, PureBuiltinsAllowedInRules) {
  AnalyzeOk(R"(
    guardrail g {
      trigger: { TIMER(0,1s) },
      rule: { ABS(LOAD_OR(x, 0)) <= SQRT(MEAN(lat, 1s)) && EXISTS(flag) || NOW() > 1s },
      action: { REPORT() }
    }
  )");
}

TEST(SemaTest, NonActionCallRejectedAsActionStatement) {
  const Status status = AnalyzeFailure(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { MEAN(x, 1s) } }
  )");
  EXPECT_NE(status.message().find("not an action"), std::string::npos);
}

TEST(SemaTest, StoreMutationsAllowedAsActions) {
  AnalyzeOk(R"(
    guardrail g {
      trigger: { TIMER(0,1s) }, rule: { true },
      action: { SAVE(a, 1); INCR(b); OBSERVE(c, 2.5) }
    }
  )");
}

TEST(SemaTest, UnknownFunctionRejected) {
  const Status status = AnalyzeFailure(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { FROBNICATE(x) <= 1 }, action: { REPORT() } }
  )");
  EXPECT_NE(status.message().find("FROBNICATE"), std::string::npos);
}

TEST(SemaTest, ArityChecked) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { LOAD(a, b, c) <= 1 }, action: { REPORT() } }
  )").ok());
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { MEAN(a) <= 1 }, action: { REPORT() } }
  )").ok());
}

TEST(SemaTest, KeyArgumentsMustBeIdentifiersOrStrings) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { LOAD(1 + 2) <= 1 }, action: { REPORT() } }
  )").ok());
  AnalyzeOk(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { LOAD("dotted.key") <= 1 || true },
                  action: { REPORT() } }
  )");
}

TEST(SemaTest, DeprioritizeListShapesChecked) {
  AnalyzeOk(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true },
                  action: { DEPRIORITIZE({a, b}, {1, 0.5}) } }
  )");
  // Non-list arguments rejected.
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true },
                  action: { DEPRIORITIZE(a, {1}) } }
  )").ok());
  // Name list with a number rejected.
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true },
                  action: { DEPRIORITIZE({1, 2}, {1, 2}) } }
  )").ok());
}

TEST(SemaTest, RuleMustBeTruthValued) {
  const Status status = AnalyzeFailure(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { "just a string" }, action: { REPORT() } }
  )");
  EXPECT_NE(status.message().find("truth value"), std::string::npos);
}

TEST(SemaTest, StringArithmeticRejected) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { "a" + 1 <= 2 }, action: { REPORT() } }
  )").ok());
}

TEST(SemaTest, MetaDefaults) {
  const AnalyzedSpec spec = AnalyzeOk(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() } }
  )");
  const GuardrailMeta& meta = spec.guardrails[0].meta;
  EXPECT_EQ(meta.severity, Severity::kWarning);
  EXPECT_EQ(meta.cooldown, 0);
  EXPECT_EQ(meta.hysteresis, 1);
  EXPECT_TRUE(meta.enabled);
}

TEST(SemaTest, MetaParsedIntoTypedFields) {
  const AnalyzedSpec spec = AnalyzeOk(R"(
    guardrail g {
      trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() },
      meta: { severity = critical, cooldown = 5s, hysteresis = 4, enabled = false,
              description = "x" }
    }
  )");
  const GuardrailMeta& meta = spec.guardrails[0].meta;
  EXPECT_EQ(meta.severity, Severity::kCritical);
  EXPECT_EQ(meta.cooldown, Seconds(5));
  EXPECT_EQ(meta.hysteresis, 4);
  EXPECT_FALSE(meta.enabled);
  EXPECT_EQ(meta.description, "x");
}

TEST(SemaTest, UnknownMetaKeyRejected) {
  const Status status = AnalyzeFailure(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() },
                  meta: { cooldwon = 5s } }
  )");
  EXPECT_NE(status.message().find("cooldwon"), std::string::npos);
}

TEST(SemaTest, BadMetaValuesRejected) {
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() },
                  meta: { severity = catastrophic } }
  )").ok());
  EXPECT_FALSE(AnalyzeSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { REPORT() },
                  meta: { hysteresis = 0 } }
  )").ok());
}

// --- EvalConst ---

Value EvalConstSource(const std::string& source) {
  auto expr = ParseExprSource(source);
  EXPECT_TRUE(expr.ok());
  auto value = EvalConst(*expr.value());
  EXPECT_TRUE(value.ok()) << value.status().ToString();
  return value.ok() ? value.value() : Value();
}

TEST(EvalConstTest, FoldsArithmetic) {
  EXPECT_EQ(EvalConstSource("2 + 3 * 4").AsInt().value(), 14);
  EXPECT_DOUBLE_EQ(EvalConstSource("7 / 2").AsFloat().value(), 3.5);
  EXPECT_EQ(EvalConstSource("-(2 + 3)").AsInt().value(), -5);
  EXPECT_EQ(EvalConstSource("1s + 250ms").AsInt().value(), 1250000000);
}

TEST(EvalConstTest, FoldsComparisonsAndLogic) {
  EXPECT_TRUE(EvalConstSource("1 < 2").AsBool().value());
  EXPECT_TRUE(EvalConstSource("true && !false").AsBool().value());
  EXPECT_FALSE(EvalConstSource("1 > 2 || false").AsBool().value());
}

TEST(EvalConstTest, RejectsNonConstants) {
  auto expr = ParseExprSource("LOAD(x) + 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalConst(*expr.value()).ok());
  expr = ParseExprSource("free_ident");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalConst(*expr.value()).ok());
}

TEST(EvalConstTest, RejectsDivisionByZero) {
  auto expr = ParseExprSource("1 / 0");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalConst(*expr.value()).ok());
}

// --- InferType ---

DslType TypeOf(const std::string& source) {
  auto expr = ParseExprSource(source);
  EXPECT_TRUE(expr.ok());
  return InferType(*expr.value());
}

TEST(InferTypeTest, CoversExpressionShapes) {
  EXPECT_EQ(TypeOf("42"), DslType::kNum);
  EXPECT_EQ(TypeOf("1.5"), DslType::kNum);
  EXPECT_EQ(TypeOf("true"), DslType::kBool);
  EXPECT_EQ(TypeOf("\"s\""), DslType::kStr);
  EXPECT_EQ(TypeOf("x"), DslType::kAny);
  EXPECT_EQ(TypeOf("1 + 2"), DslType::kNum);
  EXPECT_EQ(TypeOf("1 < 2"), DslType::kBool);
  EXPECT_EQ(TypeOf("a && b"), DslType::kBool);
  EXPECT_EQ(TypeOf("!x"), DslType::kBool);
  EXPECT_EQ(TypeOf("-x"), DslType::kNum);
  EXPECT_EQ(TypeOf("MEAN(k, 1s)"), DslType::kNum);
  EXPECT_EQ(TypeOf("EXISTS(k)"), DslType::kBool);
  EXPECT_EQ(TypeOf("LOAD(k)"), DslType::kAny);
  EXPECT_EQ(TypeOf("SAVE(k, 1)"), DslType::kNil);
}

// --- Builtins registry ---

TEST(BuiltinsTest, LookupByNameAndId) {
  const Builtin* load = FindBuiltin("LOAD");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->id, HelperId::kLoad);
  EXPECT_EQ(FindBuiltinById(HelperId::kLoad), load);
  EXPECT_EQ(FindBuiltin("NOPE"), nullptr);
}

TEST(BuiltinsTest, ActionsAreFlagged) {
  for (const char* name : {"REPORT", "REPLACE", "RETRAIN", "DEPRIORITIZE"}) {
    const Builtin* builtin = FindBuiltin(name);
    ASSERT_NE(builtin, nullptr) << name;
    EXPECT_TRUE(builtin->is_action) << name;
  }
  EXPECT_FALSE(FindBuiltin("SAVE")->is_action);
}

TEST(BuiltinsTest, RegistryIsConsistent) {
  for (const Builtin& builtin : AllBuiltins()) {
    EXPECT_EQ(FindBuiltin(builtin.name), &builtin);
    EXPECT_EQ(FindBuiltinById(builtin.id), &builtin);
    EXPECT_GE(builtin.min_args, 0);
    if (builtin.max_args >= 0) {
      EXPECT_LE(builtin.min_args, builtin.max_args);
    }
  }
}

TEST(BuiltinsTest, QuantileSugarTable) {
  EXPECT_DOUBLE_EQ(QuantileSugar("P50"), 0.50);
  EXPECT_DOUBLE_EQ(QuantileSugar("P99"), 0.99);
  EXPECT_DOUBLE_EQ(QuantileSugar("P999"), 0.999);
  EXPECT_LT(QuantileSugar("MEAN"), 0.0);
}

}  // namespace
}  // namespace osguard
