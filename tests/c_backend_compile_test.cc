// Compile-checks the C backend's output with a real host compiler: every
// guardrail in specs/ and tests/corpus/ must emit C that builds with
// -Wall -Wextra -Werror in both flavors —
//   * kernel-module flavor (EmitKernelModuleSource / EmitCFunction against
//     include/osguard/kmod.h), and
//   * native flavor (the executed AOT tier: ABI prelude + EmitNativeSource).
// "Every verified program emits warning-clean C" is the tentpole claim; a
// single -Wconversion-style slip in the emitter fails this suite, not a
// kernel build three hops away. Skips (with a log line) when the host has
// no working compiler.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/vm/c_backend.h"
#include "src/vm/compiler.h"
#include "src/vm/native_aot.h"
#include "src/vm/native_prelude.h"

namespace osguard {
namespace {

NativeAot& SharedAot() {
  static NativeAot* aot = new NativeAot();
  return *aot;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::filesystem::path> SpecFiles() {
  std::vector<std::filesystem::path> files;
  for (const char* dir : {OSGUARD_SPECS_DIR, OSGUARD_CORPUS_DIR}) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string stem = entry.path().stem().string();
      if (entry.path().extension() == ".osg" ||
          (entry.path().extension() == ".spec" && stem.rfind("valid_", 0) == 0)) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Compiles `source` to an object file with -Wall -Wextra -Werror; any
// diagnostic at all is a failure whose message carries the compiler log.
testing::AssertionResult CompilesClean(const std::string& source,
                                       const std::string& tag,
                                       const std::string& extra_flags) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "osguard-cbackend-check";
  std::filesystem::create_directories(dir);
  const std::string c_path = (dir / (tag + ".c")).string();
  const std::string o_path = (dir / (tag + ".o")).string();
  const std::string log_path = (dir / (tag + ".log")).string();
  {
    std::ofstream out(c_path);
    out << source;
  }
  const std::string command = SharedAot().compiler() +
                              " -Wall -Wextra -Werror -O2 -c " + extra_flags +
                              " -o '" + o_path + "' '" + c_path + "' > '" +
                              log_path + "' 2>&1";
  if (std::system(command.c_str()) != 0) {
    return testing::AssertionFailure()
           << tag << " did not compile warning-clean:\n"
           << command << "\n"
           << ReadFile(log_path);
  }
  return testing::AssertionSuccess();
}

class CBackendCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!NativeAot::CompiledIn() || !SharedAot().Available()) {
      GTEST_SKIP() << "no working host compiler; compile checks skipped "
                      "(emission itself is pinned by c_backend_test)";
    }
  }
};

TEST_F(CBackendCompileTest, EveryCorpusGuardrailCompilesInBothFlavors) {
  const std::string kmod_flags = std::string("-I '") + OSGUARD_INCLUDE_DIR + "'";
  int guardrails = 0;
  for (const auto& path : SpecFiles()) {
    auto spec = ParseSpecSource(ReadFile(path));
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status().message();
    auto analyzed = Analyze(std::move(spec).value());
    ASSERT_TRUE(analyzed.ok()) << path << ": " << analyzed.status().message();
    auto compiled = CompileSpec(analyzed.value());
    ASSERT_TRUE(compiled.ok()) << path << ": " << compiled.status().message();
    for (const CompiledGuardrail& guardrail : compiled.value()) {
      const std::string tag =
          path.stem().string() + "_" + std::to_string(guardrails++);
      EXPECT_TRUE(CompilesClean(EmitKernelModuleSource(guardrail), tag + "_kmod",
                                kmod_flags))
          << path << " guardrail '" << guardrail.name << "'";
      EXPECT_TRUE(CompilesClean(NativeAbiText() + EmitNativeSource(guardrail),
                                tag + "_native", "-fPIC"))
          << path << " guardrail '" << guardrail.name << "'";
    }
  }
  // Chaos-only corpus specs contribute no guardrails; the named specs do.
  EXPECT_GE(guardrails, 5) << "spec corpus went missing";
}

TEST_F(CBackendCompileTest, SingleFunctionEmittersCompileClean) {
  auto spec = ParseSpecSource(R"(
    guardrail single {
      trigger: { TIMER(1s, 1s) },
      rule: { COUNT(lat, 10s) == 0 || MEAN(lat, 10s) <= 2 && !(LOAD_OR(e, 0) > 0.5) },
      action: { SAVE(flag, false); INCR(trips); OBSERVE(lat, 1.5);
                REPORT("msg", MEAN(lat, 10s), NOW()) }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto analyzed = Analyze(std::move(spec).value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().message();
  auto compiled = CompileSpec(analyzed.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  const CompiledGuardrail& guardrail = compiled.value()[0];
  const std::string kmod_flags = std::string("-I '") + OSGUARD_INCLUDE_DIR + "'";
  // EmitCFunction emits a static definition (the kmod TU references it from
  // its registration table); a standalone compile needs one caller or
  // -Wunused-function trips.
  EXPECT_TRUE(CompilesClean(
      "#include <osguard/kmod.h>\n\n" + EmitCFunction(guardrail.rule, "check_rule") +
          "\nosg_value osg_entry(struct osg_ctx *ctx) { return check_rule(ctx); }\n",
      "single_fn_kmod", kmod_flags));
  EXPECT_TRUE(CompilesClean(
      NativeAbiText() + EmitNativeFunction(guardrail.action, "osg_single_action"),
      "single_fn_native", "-fPIC"));
}

}  // namespace
}  // namespace osguard
