// Feature store tests: typed values, SAVE/LOAD semantics, windowed
// aggregates, retention, and concurrency.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "src/store/feature_store.h"

namespace osguard {
namespace {

// --- Value ---

TEST(ValueTest, TypesAreTagged) {
  EXPECT_EQ(Value().type(), ValueType::kNil);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kFloat);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("hello").type(), ValueType::kString);
  EXPECT_EQ(Value(std::vector<Value>{Value(1)}).type(), ValueType::kList);
}

TEST(ValueTest, NumericConversions) {
  EXPECT_EQ(Value(5).AsInt().value(), 5);
  EXPECT_EQ(Value(5).AsFloat().value(), 5.0);
  EXPECT_EQ(Value(2.9).AsInt().value(), 2);  // truncates
  EXPECT_FALSE(Value("text").AsInt().ok());
  EXPECT_FALSE(Value().AsFloat().ok());
}

TEST(ValueTest, BoolConversions) {
  EXPECT_TRUE(Value(true).AsBool().value());
  EXPECT_TRUE(Value(1).AsBool().value());
  EXPECT_FALSE(Value(0).AsBool().value());
  EXPECT_TRUE(Value(0.5).AsBool().value());
  EXPECT_FALSE(Value("x").AsBool().ok());
}

TEST(ValueTest, NumericOrFallsBack) {
  EXPECT_EQ(Value(7).NumericOr(-1), 7.0);
  EXPECT_EQ(Value(true).NumericOr(-1), 1.0);
  EXPECT_EQ(Value("s").NumericOr(-1), -1.0);
  EXPECT_EQ(Value().NumericOr(-1), -1.0);
}

TEST(ValueTest, ToStringRendersAllTypes) {
  EXPECT_EQ(Value().ToString(), "nil");
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(std::vector<Value>{Value(1), Value(2)}).ToString(), "{1, 2}");
}

TEST(ValueTest, EqualityIsDeep) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_FALSE(Value(3) == Value(3.0));  // type-sensitive
  EXPECT_EQ(Value(std::vector<Value>{Value(1)}), Value(std::vector<Value>{Value(1)}));
}

TEST(ValueTest, ListAccess) {
  Value list(std::vector<Value>{Value(1), Value("a")});
  auto elements = list.AsList();
  ASSERT_TRUE(elements.ok());
  EXPECT_EQ(elements.value().size(), 2u);
  EXPECT_FALSE(Value(3).AsList().ok());
}

// --- Scalar KV ---

TEST(FeatureStoreTest, SaveLoadRoundTrip) {
  FeatureStore store;
  store.Save("k", Value(42));
  EXPECT_EQ(store.Load("k").value().AsInt().value(), 42);
}

TEST(FeatureStoreTest, LoadMissingIsNotFound) {
  FeatureStore store;
  EXPECT_EQ(store.Load("nope").status().code(), ErrorCode::kNotFound);
}

TEST(FeatureStoreTest, SaveOverwrites) {
  FeatureStore store;
  store.Save("k", Value(1));
  store.Save("k", Value("now a string"));
  EXPECT_EQ(store.Load("k").value().type(), ValueType::kString);
}

TEST(FeatureStoreTest, LoadOrDefault) {
  FeatureStore store;
  EXPECT_EQ(store.LoadOr("nope", Value(9)).AsInt().value(), 9);
  store.Save("yes", Value(1));
  EXPECT_EQ(store.LoadOr("yes", Value(9)).AsInt().value(), 1);
}

TEST(FeatureStoreTest, StoredNilIsDistinctFromMissing) {
  FeatureStore store;
  store.Save("nil_key", Value());
  EXPECT_TRUE(store.Contains("nil_key"));
  EXPECT_TRUE(store.Load("nil_key").value().is_nil());
  EXPECT_FALSE(store.Contains("other"));
}

TEST(FeatureStoreTest, EraseRemoves) {
  FeatureStore store;
  store.Save("k", Value(1));
  EXPECT_TRUE(store.Erase("k").ok());
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_EQ(store.Erase("k").code(), ErrorCode::kNotFound);
}

TEST(FeatureStoreTest, IncrementCreatesAndAccumulates) {
  FeatureStore store;
  EXPECT_EQ(store.Increment("c"), 1.0);
  EXPECT_EQ(store.Increment("c"), 2.0);
  EXPECT_EQ(store.Increment("c", 0.5), 2.5);
  EXPECT_EQ(store.Increment("c", -2.5), 0.0);
}

TEST(FeatureStoreTest, ScalarKeysSorted) {
  FeatureStore store;
  store.Save("b", Value(1));
  store.Save("a", Value(1));
  store.Save("c", Value(1));
  EXPECT_EQ(store.ScalarKeys(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(store.scalar_count(), 3u);
}

// --- Time series ---

class SeriesTest : public ::testing::Test {
 protected:
  void Fill(const std::string& key, std::initializer_list<std::pair<int, double>> samples) {
    for (const auto& [sec, value] : samples) {
      store_.Observe(key, Seconds(sec), value);
    }
  }
  FeatureStore store_;
};

TEST_F(SeriesTest, AggregatesOverWindow) {
  Fill("s", {{1, 10}, {2, 20}, {3, 30}});
  const SimTime now = Seconds(3);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kCount, Seconds(10), now).value(), 3.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kSum, Seconds(10), now).value(), 60.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kMean, Seconds(10), now).value(), 20.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kMin, Seconds(10), now).value(), 10.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kMax, Seconds(10), now).value(), 30.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kNewest, Seconds(10), now).value(), 30.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kOldest, Seconds(10), now).value(), 10.0);
}

TEST_F(SeriesTest, WindowIsHalfOpenOnTheLeft) {
  Fill("s", {{1, 10}, {2, 20}, {3, 30}});
  // Window (1s, 3s]: the sample exactly at the cutoff is excluded.
  EXPECT_EQ(store_.Aggregate("s", AggKind::kCount, Seconds(2), Seconds(3)).value(), 2.0);
}

TEST_F(SeriesTest, FutureSamplesExcluded) {
  Fill("s", {{1, 10}, {5, 50}});
  EXPECT_EQ(store_.Aggregate("s", AggKind::kCount, Seconds(10), Seconds(2)).value(), 1.0);
}

TEST_F(SeriesTest, RatePerSecond) {
  Fill("s", {{1, 1}, {2, 1}, {3, 1}, {4, 1}});
  EXPECT_EQ(store_.Aggregate("s", AggKind::kRate, Seconds(4), Seconds(4)).value(), 1.0);
  EXPECT_EQ(store_.Aggregate("s", AggKind::kRate, Seconds(2), Seconds(4)).value(), 1.0);
}

TEST_F(SeriesTest, StdDevMatchesStreamingStats) {
  Fill("s", {{1, 2}, {1, 4}, {1, 4}, {1, 4}, {1, 5}, {1, 5}, {1, 7}, {1, 9}});
  EXPECT_NEAR(store_.Aggregate("s", AggKind::kStdDev, Seconds(10), Seconds(1)).value(),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST_F(SeriesTest, EmptyWindowSemantics) {
  EXPECT_EQ(store_.Aggregate("missing", AggKind::kCount, Seconds(1), 0).value(), 0.0);
  EXPECT_EQ(store_.Aggregate("missing", AggKind::kSum, Seconds(1), 0).value(), 0.0);
  EXPECT_EQ(store_.Aggregate("missing", AggKind::kRate, Seconds(1), 0).value(), 0.0);
  EXPECT_FALSE(store_.Aggregate("missing", AggKind::kMean, Seconds(1), 0).ok());
  Fill("old", {{1, 5}});
  EXPECT_FALSE(store_.Aggregate("old", AggKind::kMean, Seconds(1), Seconds(100)).ok());
}

TEST_F(SeriesTest, QuantileOverWindow) {
  for (int i = 1; i <= 99; ++i) {
    store_.Observe("q", Seconds(1), static_cast<double>(i));
  }
  EXPECT_NEAR(store_.AggregateQuantile("q", 0.5, Seconds(10), Seconds(1)).value(), 50.0, 0.01);
  EXPECT_NEAR(store_.AggregateQuantile("q", 0.99, Seconds(10), Seconds(1)).value(), 98.02, 0.1);
  EXPECT_FALSE(store_.AggregateQuantile("none", 0.5, Seconds(10), 0).ok());
}

TEST_F(SeriesTest, WindowSamplesCopiesInOrder) {
  Fill("s", {{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(store_.WindowSamples("s", Seconds(10), Seconds(3)),
            (std::vector<double>{10, 20, 30}));
  EXPECT_EQ(store_.WindowSamples("s", Seconds(1), Seconds(3)), (std::vector<double>{30}));
  EXPECT_TRUE(store_.WindowSamples("nope", Seconds(10), Seconds(3)).empty());
}

TEST_F(SeriesTest, MaxSamplesEviction) {
  store_.SetSeriesOptions("s", SeriesOptions{.max_samples = 3, .max_age = Seconds(1000)});
  for (int i = 1; i <= 10; ++i) {
    store_.Observe("s", Seconds(i), static_cast<double>(i));
  }
  EXPECT_EQ(store_.WindowSamples("s", Seconds(1000), Seconds(10)),
            (std::vector<double>{8, 9, 10}));
}

TEST_F(SeriesTest, MaxAgeEviction) {
  store_.SetSeriesOptions("s", SeriesOptions{.max_samples = 100000, .max_age = Seconds(5)});
  Fill("s", {{1, 1}, {2, 2}, {10, 10}});
  // Observing at t=10 evicts everything older than t=5.
  EXPECT_EQ(store_.WindowSamples("s", Seconds(1000), Seconds(10)), (std::vector<double>{10}));
}

TEST_F(SeriesTest, OutOfOrderSamplesClampToNewest) {
  store_.Observe("s", Seconds(5), 1.0);
  store_.Observe("s", Seconds(3), 2.0);  // clamped to t=5
  EXPECT_EQ(store_.Aggregate("s", AggKind::kCount, Seconds(1), Seconds(5)).value(), 2.0);
}

TEST_F(SeriesTest, ClearWipesEverything) {
  store_.Save("scalar", Value(1));
  Fill("series", {{1, 1}});
  store_.Clear();
  EXPECT_EQ(store_.scalar_count(), 0u);
  EXPECT_EQ(store_.series_count(), 0u);
}

TEST(FeatureStoreConcurrencyTest, ParallelIncrementsAreAtomic) {
  FeatureStore store;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrements; ++i) {
        store.Increment("counter");
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.Load("counter").value().NumericOr(0), kThreads * kIncrements);
}

TEST(FeatureStoreConcurrencyTest, ParallelObserveAndAggregate) {
  FeatureStore store;
  std::thread writer([&store] {
    for (int i = 0; i < 20000; ++i) {
      store.Observe("lat", i + 1, 1.0);  // t=0 would fall outside the half-open window
    }
  });
  // Concurrent reads must not crash or see torn state.
  for (int i = 0; i < 200; ++i) {
    auto result = store.Aggregate("lat", AggKind::kCount, Seconds(100), Seconds(100));
    if (result.ok()) {
      EXPECT_GE(result.value(), 0.0);
    }
  }
  writer.join();
  EXPECT_EQ(store.Aggregate("lat", AggKind::kCount, Seconds(100), Seconds(100)).value(),
            20000.0);
}


// --- Key lifecycle: generation-tagged slots, reclamation, free-list recycle --

TEST(StoreLifecycleTest, ReclaimFreesSlotAndRecyclesWithBumpedGeneration) {
  FeatureStore store;
  const KeyId id = store.InternKey("session.a");
  store.Save(id, Value(int64_t{7}));
  const uint32_t gen0 = store.GenerationOf(id);
  EXPECT_TRUE(store.IsLive(id));
  ASSERT_TRUE(store.ReclaimKey("session.a").ok());
  EXPECT_FALSE(store.IsLive(id));
  EXPECT_FALSE(store.Contains("session.a"));
  // The next intern recycles the freed slot (LIFO) under a new generation.
  const KeyId recycled = store.InternKey("session.b");
  EXPECT_EQ(recycled, id);
  EXPECT_TRUE(store.IsLive(id));
  EXPECT_GT(store.GenerationOf(id), gen0);
  EXPECT_EQ(store.KeyName(id), "session.b");
}

TEST(StoreLifecycleTest, ReclaimErrorsAreTyped) {
  FeatureStore store;
  EXPECT_EQ(store.ReclaimKey("absent").code(), ErrorCode::kNotFound);
  const KeyId id = store.InternKey("pinned.key");
  store.Pin(id);
  EXPECT_EQ(store.ReclaimKeyId(id).code(), ErrorCode::kFailedPrecondition);
  store.Unpin(id);
  EXPECT_TRUE(store.ReclaimKeyId(id).ok());
  EXPECT_EQ(store.ReclaimKeyId(id).code(), ErrorCode::kNotFound);  // already dead
}

TEST(StoreLifecycleTest, StaleCachedIdReadsAsAbsentAndCannotResurrect) {
  FeatureStore store;
  const KeyId id = store.InternKey("owner.old");
  store.Save(id, Value(int64_t{1}));
  const uint32_t old_gen = store.GenerationOf(id);
  ASSERT_TRUE(store.ReclaimKeyId(id).ok());
  const KeyId tenant = store.InternKey("owner.new");
  ASSERT_EQ(tenant, id);  // recycled
  store.Save(tenant, Value(int64_t{42}));
  // Tagged reads with the stale generation see "absent", never the new
  // tenant's value, and the staleness is counted.
  const uint64_t hits_before = store.stale_hits();
  EXPECT_EQ(store.LoadOrTagged(id, old_gen, Value(int64_t{-1})).AsInt().value_or(0), -1);
  EXPECT_FALSE(store.ContainsTagged(id, old_gen));
  EXPECT_GT(store.stale_hits(), hits_before);
  // Fresh-generation reads see the new tenant.
  EXPECT_EQ(store.LoadOrTagged(id, store.GenerationOf(id), Value(int64_t{-1}))
                .AsInt()
                .value_or(0),
            42);
  // Untagged KeyId writes against a dead slot are no-ops (cannot resurrect).
  ASSERT_TRUE(store.ReclaimKey("owner.new").ok());
  store.Save(id, Value(int64_t{9}));
  EXPECT_FALSE(store.IsLive(id));
}

TEST(StoreLifecycleTest, PinnedCachedKeyIdSurvivesHeavyChurn) {
  // The monitor-cached-id stability contract: an id the engine pinned keeps
  // resolving to the same key with the same generation no matter how much
  // reclamation churn happens around it.
  FeatureStore store;
  const KeyId pinned = store.InternKey("engine.tier.promotions");
  store.Pin(pinned);
  store.Save(pinned, Value(int64_t{5}));
  const uint32_t gen = store.GenerationOf(pinned);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      store.Save("churn.k" + std::to_string(i), Value(int64_t{i}));
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.ReclaimKey("churn.k" + std::to_string(i)).ok());
    }
  }
  EXPECT_EQ(store.GenerationOf(pinned), gen);
  EXPECT_EQ(store.KeyName(pinned), "engine.tier.promotions");
  EXPECT_EQ(store.LoadOrTagged(pinned, gen, Value(int64_t{0})).AsInt().value_or(0), 5);
  EXPECT_EQ(store.stale_hits(), 0u);
}

TEST(StoreLifecycleTest, ApproxBytesTracksWritesAndReclaims) {
  FeatureStore store;
  const uint64_t empty = store.approx_bytes();
  store.Save("bytes.scalar", Value(std::string(512, 'x')));
  const uint64_t with_payload = store.approx_bytes();
  EXPECT_GE(with_payload, empty + 512);
  EXPECT_EQ(store.SlotApproxBytes(store.InternKey("bytes.scalar")),
            with_payload - empty);
  ASSERT_TRUE(store.ReclaimKey("bytes.scalar").ok());
  EXPECT_LT(store.approx_bytes(), with_payload);
  EXPECT_EQ(store.live_key_count(), 0u);
}

TEST(StoreLifecycleTest, ClearCompactsFreeListedSlots) {
  FeatureStore store;
  for (int i = 0; i < 8; ++i) {
    store.Save("compact.k" + std::to_string(i), Value(int64_t{i}));
  }
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(store.ReclaimKey("compact.k" + std::to_string(i)).ok());
  }
  const KeyId survivor = store.InternKey("compact.k0");
  store.Pin(survivor);
  store.Clear();
  // Clear keeps interned live slots (values wiped) and trims the trailing
  // dead slots entirely.
  EXPECT_EQ(store.key_count(), 4u);
  EXPECT_TRUE(store.IsLive(survivor));
  EXPECT_FALSE(store.Contains("compact.k0"));  // value gone, key interned
  EXPECT_EQ(store.KeyName(survivor), "compact.k0");
  // The trimmed tail's free-list entries are gone too: the next intern grows
  // the table instead of handing out a trimmed id.
  const KeyId fresh = store.InternKey("compact.new");
  EXPECT_EQ(fresh, 4u);
}

TEST(StoreLifecycleTest, DumpRestoreRoundTripsGenerationsAndFreeList) {
  FeatureStore store;
  for (int i = 0; i < 6; ++i) {
    store.Save("rt.k" + std::to_string(i), Value(int64_t{i}));
  }
  ASSERT_TRUE(store.ReclaimKey("rt.k1").ok());
  ASSERT_TRUE(store.ReclaimKey("rt.k3").ok());
  // Recycle one slot so a non-zero generation is in the dump.
  const KeyId recycled = store.InternKey("rt.tenant2");
  EXPECT_EQ(store.KeyName(recycled), "rt.tenant2");
  ASSERT_TRUE(store.ReclaimKey("rt.k5").ok());
  const auto dump = store.DumpSlots();

  FeatureStore other;
  other.RestoreSlots(dump);
  ASSERT_EQ(other.key_count(), store.key_count());
  for (KeyId id = 0; id < store.key_count(); ++id) {
    EXPECT_EQ(other.IsLive(id), store.IsLive(id)) << "slot " << id;
    EXPECT_EQ(other.GenerationOf(id), store.GenerationOf(id)) << "slot " << id;
    if (store.IsLive(id)) {
      EXPECT_EQ(other.KeyName(id), store.KeyName(id)) << "slot " << id;
    }
  }
  // Free-list order round-trips: both stores recycle the same slot next.
  EXPECT_EQ(other.InternKey("rt.next"), store.InternKey("rt.next"));
  EXPECT_EQ(other.approx_bytes(), store.approx_bytes());
}

}  // namespace
}  // namespace osguard
