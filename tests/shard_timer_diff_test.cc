// Differential replay for the sharded timer path: AdvanceTo batches timer
// entries that share a deadline into ring-dispatched eval waves, and every
// wave must land on the serial oracle's exact bytes — firing order, re-arm
// tiebreaks, rollbacks surfacing mid-advance, and the interleaving with
// FUNCTION callouts between deadlines.
//
// The storm mix stresses the wave boundaries specifically:
//   * four monitors sharing one cadence (a genuine same-deadline wave),
//   * coprime cadences that collide only at the lcm (waves of varying width,
//     including width 1),
//   * a serial-classified timer monitor inside the wave (reads a key another
//     action writes), so waves flush mid-deadline when the classifier says so,
//   * a probation deploy whose rollback surfaces from a timer eval.
//
// Regimes (seeds offset by OSGUARD_CHAOS_SEED):
//   * 150 clean storm seeds
//   * 100 chaos storm seeds (callout drop/delay + budget exhaustion)
//   *  50 rollback storm seeds (staged deploy regressing on the timer path)

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {
namespace {

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

constexpr char kStormSpec[] = R"(
  guardrail tick_a {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(a.value, 0) <= 60 },
    action: { REPORT("a high") }
  }
  guardrail tick_b {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(b.value, 0) <= 50 },
    action: { INCR(b.trips) }
  }
  guardrail tick_c {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(c.value, 0) >= 0 },
    action: { REPORT("c negative") }
  }
  guardrail tick_d {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(a.value, 0) + LOAD_OR(c.value, 0) <= 100 },
    action: { REPORT("a+c high") }
  }
  guardrail prime_7 {
    trigger: { TIMER(7ms, 7ms) },
    rule: { LOAD_OR(b.value, 0) <= 70 },
    action: { REPORT("b very high") }
  }
  guardrail prime_11 {
    trigger: { TIMER(11ms, 11ms) },
    rule: { LOAD_OR(c.value, 0) <= 45 },
    action: { REPORT("c high") }
  }
  guardrail trip_reader {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(b.trips, 0) <= 12 },
    action: { REPORT("b tripping often") }
  }
  guardrail hooked {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(a.value, 0) <= 75 },
    action: { REPORT("a high at submit") }
  }
)";

// Staged deploy of tick_b that blows its 1-step budget on every timer fire:
// quarantine trips inside probation and the rollback surfaces mid-AdvanceTo,
// forcing the wave machinery through flush -> rollback -> replan.
constexpr char kStormDeploy[] = R"(
  guardrail tick_b {
    trigger: { TIMER(5ms, 5ms) },
    rule: { LOAD_OR(b.value, 0) <= 40 },
    action: { INCR(b.trips) },
    health: { budget_steps = 1, quarantine = 2, probation = 60s }
  }
)";

constexpr char kStormChaosSpec[] = R"(
  chaos {
    site engine.callout_drop { mode = bernoulli, p = 0.05 },
    site engine.callout_delay { mode = bernoulli, p = 0.05, latency = 3ms },
    site vm.budget_exhaust { mode = bernoulli, p = 0.1 }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 3;
  bool staged_deploy = false;
  const char* chaos_spec = nullptr;
};

std::string RunWorkload(uint64_t seed, const RunConfig& config,
                        ShardedStats* stats_out = nullptr) {
  EngineOptions options;
  options.measure_wall_time = false;
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  Kernel kernel(options, sharding);

  ChaosEngine chaos(seed);
  if (config.chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kStormSpec).ok());
  if (config.chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.chaos_spec).ok());
  }

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 37);
  constexpr int kSteps = 30;
  for (int step = 1; step <= kSteps; ++step) {
    // Ragged advance targets so deadlines land both mid-Run and exactly on
    // the boundary (the boundary case is where wave flushing must not peek
    // past `until`).
    kernel.Run(Milliseconds(4) * step + (rng.Bernoulli(0.5) ? Milliseconds(1) : 0));
    if (rng.Bernoulli(0.5)) {
      kernel.store().Save("a.value", Value(rng.Uniform(0.0, 90.0)));
    }
    if (rng.Bernoulli(0.4)) {
      kernel.store().Save("b.value", Value(rng.Uniform(0.0, 80.0)));
    }
    if (rng.Bernoulli(0.3)) {
      kernel.store().Save("c.value", Value(rng.Uniform(-5.0, 60.0)));
    }
    if (rng.Bernoulli(0.3)) {
      kernel.Callout("submit_io");
    }
    if (config.staged_deploy && step == kSteps / 2) {
      EXPECT_TRUE(kernel.LoadGuardrails(kStormDeploy).ok());
    }
  }

  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class ShardTimerDiffTest : public ::testing::Test {
 protected:
  ShardTimerDiffTest() { Logger::Global().set_level(LogLevel::kOff); }
};

TEST_F(ShardTimerDiffTest, CleanStormSeeds) {
  const uint64_t base = SeedBase() + 0xC0000;
  uint64_t parallel_evals = 0;
  uint64_t timer_firings = 0;
  for (uint64_t i = 0; i < 150; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
    timer_firings += stats.batches;
  }
  // The storm must actually have exercised batched waves, not degenerated to
  // inline evals.
  EXPECT_GT(parallel_evals, 0u);
  EXPECT_GT(timer_firings, 0u);
}

TEST_F(ShardTimerDiffTest, ChaosStormSeeds) {
  const uint64_t base = SeedBase() + 0xD0000;
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kStormChaosSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded)) << "seed=" << seed;
  }
}

TEST_F(ShardTimerDiffTest, RollbackStormSeeds) {
  const uint64_t base = SeedBase() + 0xE0000;
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.staged_deploy = true;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded)) << "seed=" << seed;
  }
}

TEST_F(ShardTimerDiffTest, StormShardWidthSweep) {
  const uint64_t seed = SeedBase() + 0xF0000;
  RunConfig serial;
  serial.staged_deploy = true;
  const std::string expect = RunWorkload(seed, serial);
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    RunConfig config;
    config.sharded = true;
    config.shards = shards;
    config.staged_deploy = true;
    ASSERT_EQ(expect, RunWorkload(seed, config)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace osguard
