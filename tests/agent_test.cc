// The agent tool-call governance domain (docs/AGENT.md), under `ctest -L
// agent`: harness determinism, the trace codec, each guardrail family
// tripping on the scripted incident trace and staying silent on the clean
// trace, the deny/throttle/kill action effects at admission, and the
// off==absent differentials (unarmed agent chaos sites change nothing; a
// kernel that never sees a tool call never interns an agent key).

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/actions/agent_control.h"
#include "src/agent/harness.h"
#include "src/agent/tool_call.h"
#include "src/agent/trace.h"
#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/sim/agent_callout.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/wl/sessiongen.h"

#ifndef OSGUARD_SPECS_DIR
#define OSGUARD_SPECS_DIR "specs"
#endif

namespace osguard {
namespace {

using agent::DriveResult;
using agent::Harness;
using agent::MakeCleanTrace;
using agent::MakeIncidentTrace;
using agent::ReplayTrace;
using agent::ToolCallEvent;
using agent::ToolClass;

std::string ReadSpecFile(const std::string& name) {
  std::ifstream in(std::string(OSGUARD_SPECS_DIR) + "/" + name);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

EngineOptions QuietEngineOptions() {
  EngineOptions options;
  options.measure_wall_time = false;
  return options;
}

std::string SnapshotBytes(Kernel& kernel) {
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

double LoadNum(Kernel& kernel, const char* key) {
  return kernel.store().LoadOr(key, Value(int64_t{0})).NumericOr(0.0);
}

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() { Logger::Global().set_level(LogLevel::kOff); }
};

// --- Harness determinism ---

TEST_F(AgentTest, GeneratorIsSeedDeterministic) {
  SessionWorkloadOptions options;
  options.duration = Seconds(2);
  options.sessions_per_sec = 50.0;
  Harness a(options, 42);
  Harness b(options, 42);
  ASSERT_FALSE(a.events().empty());
  EXPECT_EQ(a.events(), b.events());
  Harness c(options, 43);
  EXPECT_NE(a.events(), c.events());
  // Time-ordered, nonzero sessions — the stream is a valid trace timeline.
  SimTime prev = 0;
  for (const ToolCallEvent& ev : a.events()) {
    EXPECT_GE(ev.at, prev);
    EXPECT_NE(ev.session, 0u);
    prev = ev.at;
  }
}

TEST_F(AgentTest, GeneratorCoversToolMixAndManySessions) {
  SessionWorkloadOptions options;
  options.duration = Seconds(10);
  options.sessions_per_sec = 300.0;  // thousands of concurrent sessions
  options.secret_fraction = 0.05;
  Harness h(options, 7);
  uint64_t tools[agent::kToolClassCount] = {};
  uint64_t secrets = 0;
  uint64_t max_session = 0;
  for (const ToolCallEvent& ev : h.events()) {
    ++tools[static_cast<int>(ev.tool)];
    secrets += ev.secret ? 1 : 0;
    max_session = std::max(max_session, ev.session);
  }
  EXPECT_GT(max_session, 2000u);
  for (int i = 0; i < agent::kToolClassCount; ++i) {
    EXPECT_GT(tools[i], 0u) << "tool " << i;
  }
  EXPECT_GT(secrets, 0u);
}

// --- Trace codec ---

TEST_F(AgentTest, TraceRoundTrips) {
  SessionWorkloadOptions options;
  options.duration = Seconds(1);
  Harness h(options, 11);
  const std::string text = agent::EncodeTrace(h.events());
  auto decoded = agent::DecodeTrace(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), h.events());
}

TEST_F(AgentTest, TraceDecoderRejectsMalformedInput) {
  const char* bad[] = {
      "1,2,file,3",                    // too few fields
      "1,2,file,3,0,9",                // too many fields
      "x,2,file,3,0",                  // bad timestamp
      "-5,2,file,3,0",                 // negative timestamp
      "1,0,file,3,0",                  // zero session
      "1,2,teleport,3,0",              // unknown tool
      "1,2,file,zz,0",                 // bad fingerprint
      "1,2,file,3,2",                  // bad secret flag
      "5,2,file,3,0\n4,2,file,3,0",    // decreasing timestamps
  };
  for (const char* text : bad) {
    auto result = agent::DecodeTrace(text);
    EXPECT_FALSE(result.ok()) << text;
  }
  // Comments, blank lines, CRLF: accepted.
  auto ok = agent::DecodeTrace("# header\r\n\r\n1,2,exec,3,1\r\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.value().size(), 1u);
  EXPECT_EQ(ok.value()[0].tool, ToolClass::kExec);
  EXPECT_TRUE(ok.value()[0].secret);
}

// --- Guardrail families on scripted traces ---

TEST_F(AgentTest, IncidentTraceTripsAllThreeFamilies) {
  Kernel kernel(QuietEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
  const auto trace = MakeIncidentTrace();
  const DriveResult result = ReplayTrace(kernel, trace);
  EXPECT_EQ(result.delivered, trace.size());

  // Family 1 (rate limits): the flood session (2) got throttled; the global
  // rate spec reported.
  EXPECT_EQ(LoadNum(kernel, kAgentCtlThrottleSession), 2.0);
  EXPECT_GT(LoadNum(kernel, kAgentKeyGovThrottled), 100.0);
  EXPECT_GT(result.throttled, 100u);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-session-rate"), 1u);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-global-rate"), 1u);

  // Family 2 (allowlist): the first exec call tripped the spec within its
  // own callout; the remaining two were denied at admission.
  EXPECT_EQ(kernel.store().LoadOr("agent.ctl.deny.exec", Value(false))
                .AsBool().value_or(false),
            true);
  EXPECT_EQ(LoadNum(kernel, "agent.calls.exec"), 1.0);
  EXPECT_EQ(result.denied, 2u);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-exec-allowlist"), 1u);

  // Family 3 (sequence): the first tainted network send killed session 4
  // synchronously — within the violating event's own callout — so both
  // later sends were rejected.
  EXPECT_EQ(LoadNum(kernel, kAgentCtlKillSession), 4.0);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyTaintNetAfterSecret), 1.0);
  EXPECT_EQ(kernel.store()
                .LoadOr(AgentSessionKey(4, "killed"), Value(false))
                .AsBool().value_or(false),
            true);
  EXPECT_EQ(result.killed, 2u);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovKilled), 1.0);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-secret-flow"), 1u);
}

TEST_F(AgentTest, CleanTraceTripsNothing) {
  Kernel kernel(QuietEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
  const auto trace = MakeCleanTrace();
  const DriveResult result = ReplayTrace(kernel, trace);
  EXPECT_EQ(result.allowed, trace.size());
  EXPECT_EQ(result.denied + result.throttled + result.killed, 0u);
  // Zero false trips: not a single report from any agent guardrail, no
  // control key engaged — even though session 1 read a secret (taint alone
  // is not a violation).
  EXPECT_EQ(kernel.engine().reporter().total_reports(), 0u);
  EXPECT_EQ(LoadNum(kernel, kAgentCtlThrottleSession), 0.0);
  EXPECT_EQ(LoadNum(kernel, kAgentCtlKillSession), 0.0);
  EXPECT_FALSE(kernel.store().Contains("agent.ctl.deny.exec"));
  EXPECT_EQ(LoadNum(kernel, kAgentKeyTaintSessions), 1.0);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyTaintNetAfterSecret), 0.0);
  EXPECT_EQ(LoadNum(kernel, kAgentKeySessions), 6.0);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyEvents), static_cast<double>(trace.size()));
}

TEST_F(AgentTest, NetFingerprintOutsideBandKillsTheSession) {
  Kernel kernel(QuietEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
  // A net call whose fingerprint exceeds the catalogued 32-bit band trips
  // family 2b within its own callout: the kill control key is set before
  // OnToolCall returns, so the session's *next* call is already rejected.
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(1), 9, ToolClass::kNet,
                               uint64_t{1} << 40, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(LoadNum(kernel, kAgentCtlKillSession), 9.0);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-net-fingerprint"), 1u);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(2), 9, ToolClass::kNet, 7, false}),
            AgentAdmitVerdict::kKill);
  EXPECT_EQ(kernel.store()
                .LoadOr(AgentSessionKey(9, "killed"), Value(false))
                .AsBool().value_or(false),
            true);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovKilled), 1.0);

  // Fingerprints are published as the signed cast of the raw 64-bit hash:
  // a top-bit-set hash surfaces as a negative value and trips the >= 0
  // clause, killing a second offender independently of the first.
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(3), 10, ToolClass::kNet,
                               uint64_t{1} << 63, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(LoadNum(kernel, kAgentCtlKillSession), 10.0);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(4), 10, ToolClass::kNet, 8, false}),
            AgentAdmitVerdict::kKill);
  EXPECT_GE(kernel.engine().reporter().CountFor("agent-net-fingerprint"), 2u);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovKilled), 2.0);
}

TEST_F(AgentTest, FingerprintBandOnlyConstrainsNetworkCalls) {
  Kernel kernel(QuietEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
  // File and exec fingerprints are uncatalogued hashes over paths/argv —
  // out-of-band values there are normal and must not trip the net family.
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(1), 3, ToolClass::kFile,
                               uint64_t{1} << 40, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(2), 3, ToolClass::kExec,
                               uint64_t{1} << 63, false}),
            AgentAdmitVerdict::kAllow);
  // A net call inside the band — including both edges — is vetted traffic.
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(3), 3, ToolClass::kNet, 0, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(4), 3, ToolClass::kNet,
                               uint64_t{4294967295}, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(kernel.engine().reporter().CountFor("agent-net-fingerprint"), 0u);
  EXPECT_EQ(LoadNum(kernel, kAgentCtlKillSession), 0.0);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(5), 3, ToolClass::kNet, 5, false}),
            AgentAdmitVerdict::kAllow);
}

// --- Action effects at admission (no specs: control keys set directly) ---

TEST_F(AgentTest, DenyControlKeyRejectsToolClass) {
  Kernel kernel(QuietEngineOptions());
  kernel.store().Save(AgentDenyKey(ToolClass::kNet), Value(true));
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(1), 1, ToolClass::kNet, 1, false}),
            AgentAdmitVerdict::kDeny);
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(2), 1, ToolClass::kFile, 2, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovDenied), 1.0);
  // Denied calls are not published.
  EXPECT_EQ(LoadNum(kernel, kAgentKeyEvents), 1.0);
}

TEST_F(AgentTest, ThrottleCapsPerWindowAndDrains) {
  Kernel kernel(QuietEngineOptions());
  kernel.store().Save(kAgentCtlThrottleSession, Value(int64_t{7}));
  // Default budget: 8 calls per 1s window.
  for (int i = 0; i < 12; ++i) {
    const auto verdict = kernel.OnToolCall(
        {Milliseconds(10 * (i + 1)), 7, ToolClass::kFile,
         static_cast<uint64_t>(i), false});
    EXPECT_EQ(verdict, i < kAgentThrottleLimitDefault
                           ? AgentAdmitVerdict::kAllow
                           : AgentAdmitVerdict::kThrottle)
        << "call " << i;
  }
  // An unthrottled session is untouched.
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(130), 8, ToolClass::kFile, 99, false}),
            AgentAdmitVerdict::kAllow);
  // After the window drains the throttled session may call again.
  kernel.Run(Seconds(3));
  EXPECT_EQ(kernel.OnToolCall({Seconds(3), 7, ToolClass::kFile, 100, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovThrottled), 4.0);
}

TEST_F(AgentTest, KillControlKeyIsPermanent) {
  Kernel kernel(QuietEngineOptions());
  kernel.store().Save(kAgentCtlKillSession, Value(int64_t{5}));
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(1), 5, ToolClass::kFile, 1, false}),
            AgentAdmitVerdict::kKill);
  // The latch outlives the control key: even after it is redirected to
  // another session, session 5 stays dead.
  kernel.store().Save(kAgentCtlKillSession, Value(int64_t{0}));
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(2), 5, ToolClass::kNet, 2, false}),
            AgentAdmitVerdict::kKill);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyGovKilled), 1.0);  // counted once
  EXPECT_EQ(kernel.OnToolCall({Milliseconds(3), 6, ToolClass::kNet, 3, false}),
            AgentAdmitVerdict::kAllow);
}

// --- Determinism through the full kernel ---

TEST_F(AgentTest, ReplayIsBitIdentical) {
  SessionWorkloadOptions options;
  options.duration = Seconds(2);
  options.sessions_per_sec = 80.0;
  options.secret_fraction = 0.05;
  Harness harness(options, 1234);
  std::string first;
  for (int round = 0; round < 2; ++round) {
    Kernel kernel(QuietEngineOptions());
    ASSERT_TRUE(
        kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
    harness.Drive(kernel);
    kernel.Run(Seconds(3));
    const std::string bytes = SnapshotBytes(kernel);
    if (round == 0) {
      first = bytes;
    } else {
      EXPECT_EQ(first, bytes);
    }
  }
}

// --- Off == absent differentials ---

TEST_F(AgentTest, UnarmedAgentChaosSitesChangeNothing) {
  SessionWorkloadOptions options;
  options.duration = Seconds(1);
  Harness harness(options, 99);
  auto run = [&](bool attach_chaos) {
    Kernel kernel(QuietEngineOptions());
    ChaosEngine chaos(555);
    if (attach_chaos) {
      kernel.AttachChaos(&chaos);  // registers agent.* sites, leaves them off
    }
    EXPECT_TRUE(
        kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
    harness.Drive(kernel);
    return SnapshotBytes(kernel);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(AgentTest, NoToolCallsMeansNoAgentKeys) {
  // A kernel that never sees a tool call must not intern a single agent.*
  // key or evaluate anything agent-related: the domain is pay-as-you-go.
  Kernel kernel(QuietEngineOptions());
  kernel.store().Observe("io.lat", Milliseconds(1), 100.0);
  kernel.Callout("submit_io");
  kernel.Run(Seconds(1));
  for (size_t id = 0; id < kernel.store().key_count(); ++id) {
    EXPECT_EQ(kernel.store().KeyName(static_cast<KeyId>(id)).rfind("agent.", 0),
              std::string::npos);
  }
}

// --- Chaos sites ---

TEST_F(AgentTest, EventDropLosesEventsDeterministically) {
  SessionWorkloadOptions options;
  options.duration = Seconds(1);
  Harness harness(options, 321);
  auto run = [&](const char* chaos_spec) {
    Kernel kernel(QuietEngineOptions());
    ChaosEngine chaos(777);
    kernel.AttachChaos(&chaos);
    EXPECT_TRUE(
        kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
    if (chaos_spec != nullptr) {
      EXPECT_TRUE(kernel.LoadGuardrails(chaos_spec).ok());
    }
    harness.Drive(kernel);
    return std::make_pair(LoadNum(kernel, kAgentKeyEvents),
                          SnapshotBytes(kernel));
  };
  constexpr char kDropAll[] =
      "chaos { site agent.event_drop { mode = bernoulli, p = 1.0 } }";
  constexpr char kDropSome[] =
      "chaos { site agent.event_drop { mode = bernoulli, p = 0.3 } }";
  const auto baseline = run(nullptr);
  const auto all = run(kDropAll);
  EXPECT_EQ(all.first, 0.0);  // every event lost before admission
  const auto some_a = run(kDropSome);
  const auto some_b = run(kDropSome);
  EXPECT_GT(some_a.first, 0.0);
  EXPECT_LT(some_a.first, baseline.first);
  EXPECT_EQ(some_a.second, some_b.second);  // bit-identical replay
}

TEST_F(AgentTest, DupSessionDeliversGhostTwin) {
  Kernel kernel(QuietEngineOptions());
  ChaosEngine chaos(42);
  kernel.AttachChaos(&chaos);
  ASSERT_TRUE(
      kernel
          .LoadGuardrails(
              "chaos { site agent.dup_session { mode = bernoulli, p = 1.0 } }")
          .ok());
  kernel.OnToolCall({Milliseconds(1), 3, ToolClass::kFile, 1, false});
  // Both the original and its ghost twin were admitted and published.
  EXPECT_EQ(LoadNum(kernel, kAgentKeyEvents), 2.0);
  EXPECT_EQ(LoadNum(kernel, kAgentKeySessions), 2.0);
  const uint64_t ghost = 3ull ^ kAgentGhostSessionXor;
  EXPECT_TRUE(kernel.store().Contains(AgentSessionKey(ghost, "seen")));
}

// --- Reboot safety ---

TEST_F(AgentTest, ColdRebootForgetsGovernanceState) {
  Kernel kernel(QuietEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(ReadSpecFile("agent_governance.osg")).ok());
  ReplayTrace(kernel, MakeIncidentTrace());
  EXPECT_GT(LoadNum(kernel, kAgentKeyEvents), 0.0);
  kernel.Panic();
  auto recovery = kernel.Reboot();
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery.value().cold_start);
  // No persist manager: governance state is gone, and the callout path
  // still works against the rebuilt engine (no stale cached ids anywhere).
  EXPECT_EQ(LoadNum(kernel, kAgentKeyEvents), 0.0);
  EXPECT_EQ(kernel.OnToolCall({Seconds(5), 4, ToolClass::kNet, 9, false}),
            AgentAdmitVerdict::kAllow);
  EXPECT_EQ(LoadNum(kernel, kAgentKeyEvents), 1.0);
}

}  // namespace
}  // namespace osguard
