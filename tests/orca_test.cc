// Orca-style hybrid controller tests: structural clamping, two-timescale
// behavior, and composition with guardrails (the paper's §2 comparison —
// structural safety is narrow, guardrails generalize; both can coexist).

#include <gtest/gtest.h>

#include "src/properties/specs.h"
#include "src/sim/orca.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class OrcaTest : public ::testing::Test {
 protected:
  OrcaTest() { Logger::Global().set_level(LogLevel::kOff); }
  Kernel kernel_;
};

CcSignals MakeSignals(double rate, double rtt = 20.0, bool loss = false) {
  CcSignals signals;
  signals.current_rate_mbps = rate;
  signals.rtt_ms = rtt;
  signals.min_rtt_ms = 20.0;
  signals.delivered_mbps = rate;
  signals.loss = loss;
  return signals;
}

TEST_F(OrcaTest, BehavesLikeAimdBetweenAdjustments) {
  HybridPolicyConfig config;
  config.slow_period = 1000;  // learned path effectively off
  HybridRatePolicy hybrid([](const CcSignals&) { return 5.0; }, config);
  AimdPolicy aimd(config.aimd_increase_mbps);
  for (double rate : {10.0, 20.0, 55.5}) {
    EXPECT_DOUBLE_EQ(hybrid.NextRate(MakeSignals(rate)), aimd.NextRate(MakeSignals(rate)));
  }
  // Loss halves on both.
  EXPECT_DOUBLE_EQ(hybrid.NextRate(MakeSignals(80.0, 25.0, true)), 40.0);
}

TEST_F(OrcaTest, LearnedGainAppliesAtSlowPeriod) {
  HybridPolicyConfig config;
  config.slow_period = 4;
  HybridRatePolicy hybrid([](const CcSignals&) { return 1.5; }, config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(hybrid.current_gain(), 1.0);
    hybrid.NextRate(MakeSignals(10.0));
  }
  hybrid.NextRate(MakeSignals(10.0));  // 4th interval: adjust
  EXPECT_DOUBLE_EQ(hybrid.current_gain(), 1.5);
  EXPECT_EQ(hybrid.learned_adjustments(), 1u);
  // Post-adjustment rates are rescaled AIMD.
  EXPECT_DOUBLE_EQ(hybrid.NextRate(MakeSignals(10.0)), 11.0 * 1.5);
}

TEST_F(OrcaTest, StructuralClampBoundsLearnedInfluence) {
  HybridPolicyConfig config;
  config.slow_period = 1;
  config.min_gain = 0.5;
  config.max_gain = 2.0;
  // A wildly broken learned component.
  HybridRatePolicy hybrid([](const CcSignals&) { return 1000.0; }, config);
  hybrid.NextRate(MakeSignals(10.0));
  EXPECT_DOUBLE_EQ(hybrid.current_gain(), 2.0);
  EXPECT_EQ(hybrid.clamped_adjustments(), 1u);

  HybridRatePolicy negative([](const CcSignals&) { return -7.0; }, config);
  negative.NextRate(MakeSignals(10.0));
  EXPECT_DOUBLE_EQ(negative.current_gain(), 0.5);
}

TEST_F(OrcaTest, HybridConvergesOnThePathModel) {
  CongestionSim sim(kernel_);
  HybridPolicyConfig config;
  config.slow_period = 50;
  config.aimd_increase_mbps = 2.0;  // match the plain-AIMD convergence test
  // A sensible learned component: back off gain when loss is smelled,
  // otherwise push toward full utilization.
  auto model = [](const CcSignals& smoothed) { return smoothed.loss ? 1.0 : 1.15; };
  ASSERT_TRUE(kernel_.registry()
                  .Register(std::make_shared<HybridRatePolicy>(model, config))
                  .ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "cc_hybrid_orca").ok());
  sim.PumpFor(Seconds(30));
  kernel_.Run(Seconds(30));
  const double mean_util =
      kernel_.store().Aggregate("net.util", AggKind::kMean, Seconds(10), kernel_.now()).value();
  EXPECT_GT(mean_util, 0.55);
}

TEST_F(OrcaTest, GuardrailsComposeOnTopOfStructuralSafety) {
  // Even a clamped hybrid can misbehave *within* its clamp range (e.g. the
  // learned component pins gain at max during congestion); a quality
  // guardrail catches what the structural bound cannot express and falls
  // back to plain AIMD.
  CongestionConfig cc_config;
  cc_config.capacity_mbps = 50.0;
  cc_config.buffer_ms = 20.0;
  CongestionSim sim(kernel_, cc_config);

  HybridPolicyConfig config;
  config.slow_period = 5;
  // Pathological-but-in-bounds learned component: always max gain.
  auto model = [](const CcSignals&) { return 2.0; };
  ASSERT_TRUE(kernel_.registry()
                  .Register(std::make_shared<HybridRatePolicy>(model, config))
                  .ok());
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<AimdPolicy>()).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "cc_hybrid_orca").ok());

  // P4-style quality property over system behavior: loss rate bounded.
  PropertySpecOptions options;
  options.check_interval = Milliseconds(500);
  options.check_start = Seconds(2);
  options.window = Seconds(2);
  ASSERT_TRUE(kernel_
                  .LoadGuardrails(DecisionQualityAbsoluteSpec(
                      "low-loss", "net.no_loss", 0.8,
                      "REPLACE(cc_hybrid_orca, cc_aimd); REPORT(\"loss storm\")", options))
                  .ok());
  // Bridge: publish the satisfied form (1 - loss) the rule consumes.
  // (A kernel site would publish this directly; here an event loop does.)
  struct Publisher {
    Kernel* kernel;
    void operator()(SimTime now) const {
      const double loss =
          kernel->store().Aggregate("net.loss", AggKind::kMean, Milliseconds(500), now)
              .value_or(0.0);
      kernel->store().Observe("net.no_loss", now, 1.0 - loss);
      kernel->queue().ScheduleAt(now + Milliseconds(100), *this);
    }
  };
  kernel_.queue().ScheduleAt(0, Publisher{&kernel_});

  sim.PumpFor(Seconds(10));
  kernel_.Run(Seconds(10));
  EXPECT_EQ(kernel_.registry().Active("net.cc").value()->name(), "cc_aimd");
  EXPECT_GT(kernel_.engine().StatsFor("low-loss").value().violations, 0u);
}

}  // namespace
}  // namespace osguard
