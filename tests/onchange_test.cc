// ONCHANGE trigger tests: dependency-driven checking (the paper's §6
// "checked only when relevant system state changes" direction).

#include <gtest/gtest.h>

#include "src/runtime/engine.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class OnChangeTest : public ::testing::Test {
 protected:
  OnChangeTest() : engine_(&store_, &registry_) {
    Logger::Global().set_level(LogLevel::kOff);
    store_.SetWriteObserver(
        [this](const StoreWriteInfo& info, const std::string& key) {
          engine_.OnStoreWrite(info, key);
        });
  }

  void Load(const std::string& source) {
    Status status = engine_.LoadSource(source);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  MonitorStats Stats(const std::string& name) { return engine_.StatsFor(name).value(); }

  FeatureStore store_;
  PolicyRegistry registry_;
  Engine engine_;
};

constexpr char kWatcher[] = R"(
  guardrail watcher {
    trigger: { ONCHANGE(watched_key) },
    rule: { LOAD_OR(watched_key, 0) <= 10 },
    action: { INCR(fires) }
  }
)";

TEST_F(OnChangeTest, ParsesAndCompiles) {
  auto compiled = CompileSource(kWatcher);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled.value()[0].triggers.size(), 1u);
  EXPECT_EQ(compiled.value()[0].triggers[0].kind, TriggerKind::kOnChange);
  EXPECT_EQ(compiled.value()[0].triggers[0].watch_key, "watched_key");
}

TEST_F(OnChangeTest, FiresOnWatchedWriteOnly) {
  Load(kWatcher);
  store_.Save("unrelated", Value(99));
  EXPECT_EQ(Stats("watcher").evaluations, 0u);
  store_.Save("watched_key", Value(5));
  EXPECT_EQ(Stats("watcher").evaluations, 1u);
  EXPECT_EQ(Stats("watcher").violations, 0u);
}

TEST_F(OnChangeTest, DetectsViolationImmediatelyOnWrite) {
  Load(kWatcher);
  store_.Save("watched_key", Value(50));
  EXPECT_EQ(Stats("watcher").violations, 1u);
  EXPECT_EQ(store_.LoadOr("fires", Value(0)).NumericOr(0), 1.0);
}

TEST_F(OnChangeTest, NoPeriodicCostWhenKeyIsQuiet) {
  Load(kWatcher);
  engine_.AdvanceTo(Seconds(1000));  // a long quiet run
  EXPECT_EQ(Stats("watcher").evaluations, 0u);
  EXPECT_EQ(engine_.stats().change_firings, 0u);
}

TEST_F(OnChangeTest, IncrementAndObserveAlsoTrigger) {
  Load(R"(
    guardrail counter-watch {
      trigger: { ONCHANGE(counter) },
      rule: { LOAD_OR(counter, 0) <= 2 },
      action: { REPORT() }
    }
    guardrail series-watch {
      trigger: { ONCHANGE(latency_series) },
      rule: { COUNT(latency_series, 10s) <= 2 },
      action: { REPORT() }
    }
  )");
  store_.Increment("counter");
  store_.Increment("counter");
  store_.Increment("counter");
  EXPECT_EQ(Stats("counter-watch").evaluations, 3u);
  EXPECT_EQ(Stats("counter-watch").violations, 1u);

  engine_.AdvanceTo(Seconds(1));  // evaluations see samples at their own time
  store_.Observe("latency_series", Seconds(1), 1.0);
  store_.Observe("latency_series", Seconds(1), 2.0);
  store_.Observe("latency_series", Seconds(1), 3.0);
  EXPECT_EQ(Stats("series-watch").evaluations, 3u);
  EXPECT_EQ(Stats("series-watch").violations, 1u);
}

TEST_F(OnChangeTest, SelfWriteDoesNotRecurseUnbounded) {
  // The action writes the key it watches: the deferred-cascade machinery
  // must bound this instead of looping forever.
  Load(R"(
    guardrail self-feeding {
      trigger: { ONCHANGE(hot) },
      rule: { LOAD_OR(hot, 0) <= 0 },
      action: { SAVE(hot, LOAD_OR(hot, 0) + 1); INCR(fires) }
    }
  )");
  store_.Save("hot", Value(1));  // kicks off the cascade
  const double fires = store_.LoadOr("fires", Value(0)).NumericOr(0);
  EXPECT_GE(fires, 1.0);
  EXPECT_LE(fires, 70.0);  // bounded by the cascade budget
  EXPECT_GT(engine_.stats().change_cascade_suppressed, 0u);
}

TEST_F(OnChangeTest, MutualWritersAreBounded) {
  // Two guardrails, each watching the key the other writes (§6's loop).
  Load(R"(
    guardrail ping {
      trigger: { ONCHANGE(a) },
      rule: { false },
      action: { SAVE(b, 1); INCR(ping_fires) }
    }
    guardrail pong {
      trigger: { ONCHANGE(b) },
      rule: { false },
      action: { SAVE(a, 1); INCR(pong_fires) }
    }
  )");
  store_.Save("a", Value(1));
  const double total = store_.LoadOr("ping_fires", Value(0)).NumericOr(0) +
                       store_.LoadOr("pong_fires", Value(0)).NumericOr(0);
  EXPECT_GE(total, 2.0);
  EXPECT_LE(total, 70.0);
}

TEST_F(OnChangeTest, MixedWithTimerTrigger) {
  Load(R"(
    guardrail hybrid {
      trigger: { TIMER(1s, 1s), ONCHANGE(metric) },
      rule: { LOAD_OR(metric, 0) <= 10 },
      action: { REPORT() }
    }
  )");
  engine_.AdvanceTo(Seconds(2));          // 2 timer evals
  store_.Save("metric", Value(3));        // 1 change eval
  EXPECT_EQ(Stats("hybrid").evaluations, 3u);
}

TEST_F(OnChangeTest, DisabledMonitorIgnoresChanges) {
  Load(kWatcher);
  ASSERT_TRUE(engine_.SetEnabled("watcher", false).ok());
  store_.Save("watched_key", Value(50));
  EXPECT_EQ(Stats("watcher").evaluations, 0u);
}

TEST_F(OnChangeTest, UnloadRemovesWatch) {
  Load(kWatcher);
  ASSERT_TRUE(engine_.Unload("watcher").ok());
  store_.Save("watched_key", Value(50));  // must not crash or fire
  EXPECT_FALSE(engine_.StatsFor("watcher").ok());
}

TEST_F(OnChangeTest, KernelWiringWorksEndToEnd) {
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail oob {
      trigger: { ONCHANGE(ra.last_decision) },
      rule: { LOAD_OR(ra.last_decision, 0) <= 64 },
      action: { INCR(oob_detections) }
    }
  )").ok());
  kernel.store().Save("ra.last_decision", Value(32));
  kernel.store().Save("ra.last_decision", Value(100000));
  kernel.store().Save("ra.last_decision", Value(8));
  EXPECT_EQ(kernel.store().LoadOr("oob_detections", Value(0)).NumericOr(0), 1.0);
}

TEST_F(OnChangeTest, DetectionLatencyBeatsTimerPolling) {
  // The point of the extension: a violation between timer ticks is caught
  // instantly by ONCHANGE but only at the next tick by TIMER.
  Load(R"(
    guardrail timer-watch {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(metric, 0) <= 10 },
      action: { SAVE(timer_detected_at, LOAD_OR(timer_detected_at, NOW())) }
    }
    guardrail change-watch {
      trigger: { ONCHANGE(metric) },
      rule: { LOAD_OR(metric, 0) <= 10 },
      action: { SAVE(change_detected_at, LOAD_OR(change_detected_at, NOW())) }
    }
  )");
  engine_.AdvanceTo(Milliseconds(1100));
  store_.Save("metric", Value(50));  // violation at t=1.1s
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(store_.Load("change_detected_at").value().NumericOr(0), 1.1e9);
  EXPECT_EQ(store_.Load("timer_detected_at").value().NumericOr(0), 2e9);
}

TEST_F(OnChangeTest, CBackendEmitsOnChangeRegistration) {
  auto compiled = CompileSource(kWatcher);
  ASSERT_TRUE(compiled.ok());
  // Emitted C should carry the ONCHANGE registration macro.
  // (EmitKernelModuleSource is exercised fully in c_backend_test.)
  EXPECT_EQ(compiled.value()[0].triggers[0].kind, TriggerKind::kOnChange);
}

TEST_F(OnChangeTest, OnChangeWithEmptyHooksIsCheap) {
  // No guardrails loaded: the observer must be near-free.
  for (int i = 0; i < 1000; ++i) {
    store_.Save("any", Value(i));
  }
  EXPECT_EQ(engine_.stats().change_firings, 0u);
}

}  // namespace
}  // namespace osguard
