// Engine tests: trigger firing, violation protocol (hysteresis, cooldown,
// on_satisfy), runtime load/replace/unload, and crash-free error handling.

#include <gtest/gtest.h>

#include "src/runtime/engine.h"
#include "src/vm/compiler.h"

namespace osguard {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(&store_, &registry_, &task_control_) {}

  void Load(const std::string& source) {
    Status status = engine_.LoadSource(source);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  MonitorStats Stats(const std::string& name) {
    auto stats = engine_.StatsFor(name);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats.value_or(MonitorStats{});
  }

  FeatureStore store_;
  PolicyRegistry registry_;
  RecordingTaskControl task_control_;
  Engine engine_;
};

constexpr char kSimpleGuardrail[] = R"(
  guardrail simple {
    trigger: { TIMER(1s, 1s) },
    rule: { LOAD_OR(x, 0) <= 10 },
    action: { SAVE(tripped, true) }
  }
)";

TEST_F(EngineTest, TimerFiresAtConfiguredInterval) {
  Load(kSimpleGuardrail);
  engine_.AdvanceTo(Milliseconds(999));
  EXPECT_EQ(Stats("simple").evaluations, 0u);
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Stats("simple").evaluations, 1u);
  engine_.AdvanceTo(Seconds(5));
  EXPECT_EQ(Stats("simple").evaluations, 5u);
}

TEST_F(EngineTest, TimerStopTimeEndsChecks) {
  Load(R"(
    guardrail bounded {
      trigger: { TIMER(1s, 1s, 3s) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  engine_.AdvanceTo(Seconds(10));
  EXPECT_EQ(Stats("bounded").evaluations, 3u);  // t = 1, 2, 3
}

TEST_F(EngineTest, NextTimerDeadlineIsExposed) {
  Load(kSimpleGuardrail);
  ASSERT_TRUE(engine_.NextTimerDeadline().has_value());
  EXPECT_EQ(*engine_.NextTimerDeadline(), Seconds(1));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(*engine_.NextTimerDeadline(), Seconds(2));
}

TEST_F(EngineTest, ViolationRunsAction) {
  Load(kSimpleGuardrail);
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(1));
  const MonitorStats stats = Stats("simple");
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.action_firings, 1u);
  EXPECT_TRUE(store_.LoadOr("tripped", Value(false)).AsBool().value());
}

TEST_F(EngineTest, SatisfiedRuleDoesNotAct) {
  Load(kSimpleGuardrail);
  store_.Save("x", Value(5));
  engine_.AdvanceTo(Seconds(3));
  const MonitorStats stats = Stats("simple");
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.action_firings, 0u);
  EXPECT_FALSE(store_.Contains("tripped"));
}

TEST_F(EngineTest, ViolationReportIsRecorded) {
  Load(kSimpleGuardrail);
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(engine_.reporter().CountOfKind(ReportKind::kViolation), 1u);
  const auto records = engine_.reporter().RecordsFor("simple");
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0].time, Seconds(1));
}

TEST_F(EngineTest, HysteresisAbsorbsTransientViolations) {
  Load(R"(
    guardrail damped {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { SAVE(tripped, true) },
      meta: { hysteresis = 3 }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Stats("damped").action_firings, 0u);
  EXPECT_EQ(Stats("damped").suppressed_hysteresis, 2u);
  engine_.AdvanceTo(Seconds(3));  // third consecutive violation
  EXPECT_EQ(Stats("damped").action_firings, 1u);
}

TEST_F(EngineTest, HysteresisResetsOnSatisfaction) {
  Load(R"(
    guardrail damped {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { SAVE(tripped, true) },
      meta: { hysteresis = 2 }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(1));  // violation #1
  store_.Save("x", Value(0));
  engine_.AdvanceTo(Seconds(2));  // satisfied: counter resets
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(3));  // violation #1 again
  EXPECT_EQ(Stats("damped").action_firings, 0u);
  engine_.AdvanceTo(Seconds(4));  // violation #2 -> fire
  EXPECT_EQ(Stats("damped").action_firings, 1u);
}

TEST_F(EngineTest, CooldownRateLimitsActions) {
  Load(R"(
    guardrail cooled {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { INCR(fire_count) },
      meta: { cooldown = 3000000000 }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(7));  // violations at t=1..7
  // Fires at t=1, 4, 7 (3s cooldown).
  EXPECT_EQ(store_.LoadOr("fire_count", Value(0)).NumericOr(0), 3.0);
  EXPECT_EQ(Stats("cooled").suppressed_cooldown, 4u);
}

TEST_F(EngineTest, OnSatisfyFiresOnRecoveryEdge) {
  Load(R"(
    guardrail recovering {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { SAVE(state, "bad") },
      on_satisfy: { SAVE(state, "good"); INCR(recoveries) }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(store_.Load("state").value().AsString().value(), "bad");
  store_.Save("x", Value(0));
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(store_.Load("state").value().AsString().value(), "good");
  EXPECT_EQ(Stats("recovering").satisfy_firings, 1u);
  // Staying satisfied does not refire on_satisfy.
  engine_.AdvanceTo(Seconds(6));
  EXPECT_EQ(store_.LoadOr("recoveries", Value(0)).NumericOr(0), 1.0);
}

TEST_F(EngineTest, OnSatisfyNeedsPriorActionFiring) {
  Load(R"(
    guardrail quiet {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { REPORT() },
      on_satisfy: { INCR(recoveries) }
    }
  )");
  store_.Save("x", Value(0));
  engine_.AdvanceTo(Seconds(5));  // always satisfied: never "recovers"
  EXPECT_FALSE(store_.Contains("recoveries"));
}

TEST_F(EngineTest, RuleErrorIsContainedAndReported) {
  // LOAD of a missing key is nil; nil <= 10 faults. The engine must count
  // the error, report it, and not fire actions.
  Load(R"(
    guardrail faulty {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD(never_set) <= 10 },
      action: { SAVE(tripped, true) }
    }
  )");
  engine_.AdvanceTo(Seconds(2));
  const MonitorStats stats = Stats("faulty");
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.action_firings, 0u);
  EXPECT_FALSE(store_.Contains("tripped"));
  EXPECT_EQ(engine_.reporter().CountOfKind(ReportKind::kMonitorError), 2u);
}

TEST_F(EngineTest, FunctionTriggerFiresOnCallout) {
  Load(R"(
    guardrail hooked {
      trigger: { FUNCTION(submit_io) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { INCR(fire_count) }
    }
  )");
  engine_.OnFunctionCall("submit_io", Milliseconds(5));
  engine_.OnFunctionCall("submit_io", Milliseconds(6));
  engine_.OnFunctionCall("unrelated_fn", Milliseconds(7));
  EXPECT_EQ(Stats("hooked").evaluations, 2u);
}

TEST_F(EngineTest, MixedTriggersBothFire) {
  Load(R"(
    guardrail both {
      trigger: { TIMER(1s, 1s), FUNCTION(submit_io) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  engine_.OnFunctionCall("submit_io", Milliseconds(100));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Stats("both").evaluations, 2u);
}

TEST_F(EngineTest, DisabledMonitorDoesNotEvaluate) {
  Load(kSimpleGuardrail);
  ASSERT_TRUE(engine_.SetEnabled("simple", false).ok());
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(Stats("simple").evaluations, 0u);
  ASSERT_TRUE(engine_.SetEnabled("simple", true).ok());
  engine_.AdvanceTo(Seconds(4));
  EXPECT_EQ(Stats("simple").evaluations, 1u);
}

TEST_F(EngineTest, MetaEnabledFalseLoadsDisabled) {
  Load(R"(
    guardrail dormant {
      trigger: { TIMER(1s, 1s) },
      rule: { false },
      action: { REPORT() },
      meta: { enabled = false }
    }
  )");
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(Stats("dormant").evaluations, 0u);
}

TEST_F(EngineTest, UnloadStopsMonitor) {
  Load(kSimpleGuardrail);
  engine_.AdvanceTo(Seconds(1));
  ASSERT_TRUE(engine_.Unload("simple").ok());
  EXPECT_FALSE(engine_.Contains("simple"));
  engine_.AdvanceTo(Seconds(5));  // queued timer entries must be inert
  EXPECT_FALSE(engine_.StatsFor("simple").ok());
}

TEST_F(EngineTest, UnloadUnknownNameFails) {
  EXPECT_EQ(engine_.Unload("ghost").code(), ErrorCode::kNotFound);
}

TEST_F(EngineTest, HotReplaceSwapsRuleWithoutReboot) {
  Load(kSimpleGuardrail);
  store_.Save("x", Value(15));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Stats("simple").violations, 1u);  // 15 > 10

  // Runtime update (§6): same name, looser threshold.
  Load(R"(
    guardrail simple {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { SAVE(tripped, true) }
    }
  )");
  engine_.AdvanceTo(Seconds(3));
  const MonitorStats stats = Stats("simple");
  EXPECT_EQ(stats.violations, 0u);  // stats reset on replace; 15 <= 100 holds
  EXPECT_GE(stats.evaluations, 1u);
}

TEST_F(EngineTest, MonitorLoadedMidRunStartsFromCurrentTime) {
  engine_.AdvanceTo(Seconds(10));
  Load(kSimpleGuardrail);  // TIMER(1s, 1s) but it is already t=10
  engine_.AdvanceTo(Seconds(12));
  // Fires at t=11 and t=12, not 10 times retroactively.
  EXPECT_EQ(Stats("simple").evaluations, 2u);
}

TEST_F(EngineTest, IncrementalDeploymentAddsMonitors) {
  Load(kSimpleGuardrail);
  engine_.AdvanceTo(Seconds(1));
  Load(R"(
    guardrail second {
      trigger: { TIMER(1s, 1s) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(engine_.MonitorNames().size(), 2u);
  EXPECT_EQ(Stats("simple").evaluations, 3u);
  EXPECT_EQ(Stats("second").evaluations, 2u);
}

TEST_F(EngineTest, ActionsSeeEvaluationTimestamp) {
  Load(R"(
    guardrail stamper {
      trigger: { TIMER(2s, 1s) },
      rule: { false },
      action: { SAVE(fired_at, NOW()) }
    }
  )");
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(store_.Load("fired_at").value().NumericOr(0), 2e9);
}

TEST_F(EngineTest, DeprioritizeReachesTaskControl) {
  Load(R"(
    guardrail oom-ish {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(mem_pressure, 0) <= 0.9 },
      action: { DEPRIORITIZE({batch_job, background_scan}, {0.1, 0.2}) }
    }
  )");
  store_.Save("mem_pressure", Value(0.95));
  engine_.AdvanceTo(Seconds(1));
  const auto events = task_control_.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tasks, (std::vector<std::string>{"batch_job", "background_scan"}));
  EXPECT_EQ(events[0].priorities, (std::vector<double>{0.1, 0.2}));
}

TEST_F(EngineTest, ReplaceActionRebindsSlot) {
  struct NamedPolicy : Policy {
    std::string policy_name;
    bool learned;
    explicit NamedPolicy(std::string n, bool l) : policy_name(std::move(n)), learned(l) {}
    std::string name() const override { return policy_name; }
    bool is_learned() const override { return learned; }
  };
  ASSERT_TRUE(registry_.Register(std::make_shared<NamedPolicy>("learned_thing", true)).ok());
  ASSERT_TRUE(registry_.Register(std::make_shared<NamedPolicy>("safe_thing", false)).ok());
  ASSERT_TRUE(registry_.BindSlot("subsystem.decision", "learned_thing").ok());

  Load(R"(
    guardrail fallback {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(quality, 1) >= 0.5 },
      action: { REPLACE(learned_thing, safe_thing) }
    }
  )");
  store_.Save("quality", Value(0.1));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(registry_.Active("subsystem.decision").value()->name(), "safe_thing");
  ASSERT_EQ(registry_.replace_history().size(), 1u);
  EXPECT_EQ(registry_.replace_history()[0].old_policy, "learned_thing");
}

TEST_F(EngineTest, RetrainActionQueuesRequest) {
  Load(R"(
    guardrail drift {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(drift_score, 0) <= 0.2 },
      action: { RETRAIN(my_model, recent_window) }
    }
  )");
  store_.Save("drift_score", Value(0.8));
  engine_.AdvanceTo(Seconds(1));
  auto request = engine_.retrain_queue().Pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->model, "my_model");
  EXPECT_EQ(request->data_key, "recent_window");
}

TEST_F(EngineTest, EngineStatsAggregateAcrossMonitors) {
  Load(kSimpleGuardrail);
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(3));
  const EngineStats stats = engine_.stats();
  EXPECT_EQ(stats.timer_firings, 3u);
  EXPECT_EQ(stats.evaluations, 3u);
  EXPECT_EQ(stats.violations, 3u);
  EXPECT_GT(stats.total_wall_ns, 0);
}

TEST_F(EngineTest, LoadRejectsUnverifiableProgram) {
  CompiledGuardrail bad;
  bad.name = "bad";
  bad.rule.name = "bad.rule";
  bad.rule.register_count = 1;
  bad.rule.insns.push_back(Insn{Op::kRet, 63, 0, 0, 0});  // r63 out of range
  bad.action = bad.rule;
  EXPECT_EQ(engine_.Load(std::move(bad)).code(), ErrorCode::kVerifierError);
}

TEST_F(EngineTest, TwoTimersOnOneMonitorBothFire) {
  Load(R"(
    guardrail dual {
      trigger: { TIMER(1s, 2s), TIMER(2s, 2s) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  engine_.AdvanceTo(Seconds(4));
  // t = 1, 3 from the first timer; t = 2, 4 from the second.
  EXPECT_EQ(Stats("dual").evaluations, 4u);
}

}  // namespace
}  // namespace osguard
