// Overload governor + self-healing shard workers (docs/GOVERNOR.md), under
// `ctest -L governor`:
//   * ladder mechanics on a bare OverloadGovernor — escalation/de-escalation
//     with hysteresis dwell, deterministic best-effort sampling stride,
//     fail-static pinning once per episode, state export/restore;
//   * the spec-level `criticality` meta attribute (parse + validation);
//   * kernel integration — a callout storm walks the ladder up, the calm
//     tail walks it back down, critical monitors degrade to their corrective
//     default instead of being shed, and engine.governor.* keys track it;
//   * off == absent — a default-options engine interns no governor keys;
//   * watchdog containment — chaos-stalled and chaos-killed shard workers
//     are stolen from, quarantined, respawned, and re-admitted while the
//     sharded run stays bit-identical to the serial oracle.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/governor/governor.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/time.h"
#include "src/wl/stormgen.h"

namespace osguard {
namespace {

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() { Logger::Global().set_level(LogLevel::kOff); }
};

// Aggressive thresholds so a handful of synthetic callouts moves the ladder.
// alpha = 1.0 makes each callout's signal stand alone (no smoothing), so the
// dwell arithmetic below is exact: the priming callout already counts toward
// the streak, so each rung is climbed on the dwell_up'th hot callout.
GovernorOptions TightOptions() {
  GovernorOptions options;
  options.enabled = true;
  options.pressure_up = 10000.0;   // evals per simulated second
  options.pressure_down = 1000.0;
  options.depth_up = 1e18;         // keep the depth signal out of the way
  options.depth_down = 1e18 - 1;
  options.dwell_up = 2;
  options.dwell_down = 3;
  options.sample_every = 4;
  options.alpha = 1.0;
  return options;
}

// One "hot" callout: 100 evaluations within one simulated microsecond
// (1e8 evals/s, far over pressure_up).
void HotCallout(OverloadGovernor& governor, SimTime& now, uint64_t& evals) {
  now += Microseconds(1);
  evals += 100;
  governor.OnCalloutEnd(now, evals, 0);
}

// One "cold" callout: a single evaluation after a quiet second (1 eval/s,
// far under pressure_down).
void ColdCallout(OverloadGovernor& governor, SimTime& now, uint64_t& evals) {
  now += Seconds(1);
  evals += 1;
  governor.OnCalloutEnd(now, evals, 0);
}

TEST_F(GovernorTest, LadderEscalatesWithDwellAndDeescalatesWithHysteresis) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  EXPECT_EQ(governor.mode(), GovernorMode::kFull);

  SimTime now = 0;
  uint64_t evals = 0;
  // dwell_up = 2: one hot callout is not enough (hysteresis), two climb a
  // rung, and the streak resets at each transition.
  HotCallout(governor, now, evals);
  EXPECT_EQ(governor.mode(), GovernorMode::kFull);
  HotCallout(governor, now, evals);
  EXPECT_EQ(governor.mode(), GovernorMode::kSampled);
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  EXPECT_EQ(governor.mode(), GovernorMode::kCriticalOnly);
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  EXPECT_EQ(governor.mode(), GovernorMode::kFailStatic);
  EXPECT_EQ(governor.fail_static_epoch(), 1u);
  const uint64_t escalations = governor.stats().escalations;
  EXPECT_EQ(escalations, 3u);

  // Further overload cannot escalate past the last rung.
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  EXPECT_EQ(governor.mode(), GovernorMode::kFailStatic);
  EXPECT_EQ(governor.stats().escalations, escalations);

  // Recovery takes dwell_down = 3 consecutive unders per rung: 9 cold
  // callouts walk all the way back to full service.
  for (int i = 0; i < 9; ++i) {
    ColdCallout(governor, now, evals);
  }
  EXPECT_EQ(governor.mode(), GovernorMode::kFull);
  EXPECT_EQ(governor.stats().deescalations, 3u);
  EXPECT_EQ(governor.stats().transitions, 6u);
}

TEST_F(GovernorTest, MiddlingPressureInsideHysteresisBandHoldsTheRung) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  SimTime now = 0;
  uint64_t evals = 0;
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  ASSERT_EQ(governor.mode(), GovernorMode::kSampled);
  // ~3000 evals/s sits between pressure_down and pressure_up: neither
  // escalation nor recovery may fire, however long it lasts.
  for (int i = 0; i < 50; ++i) {
    now += Milliseconds(1);
    evals += 3;
    governor.OnCalloutEnd(now, evals, 0);
  }
  EXPECT_EQ(governor.mode(), GovernorMode::kSampled);
  EXPECT_EQ(governor.stats().transitions, 1u);
}

TEST_F(GovernorTest, SampledModeShedsBestEffortOnADeterministicStride) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  SimTime now = 0;
  uint64_t evals = 0;
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  ASSERT_EQ(governor.mode(), GovernorMode::kSampled);

  // Best-effort monitors evaluate on attempts 1, 5, 9, ... (stride 4).
  for (uint64_t attempt = 1; attempt <= 12; ++attempt) {
    const GovernorDecision decision =
        governor.Admit(Criticality::kBestEffort, attempt, 0);
    if ((attempt - 1) % 4 == 0) {
      EXPECT_EQ(decision, GovernorDecision::kEvaluate) << attempt;
    } else {
      EXPECT_EQ(decision, GovernorDecision::kShed) << attempt;
    }
  }
  EXPECT_EQ(governor.stats().sampled_evals, 3u);
  EXPECT_EQ(governor.stats().sheds_besteffort, 9u);
  // Standard and critical monitors are untouched in kSampled.
  EXPECT_EQ(governor.Admit(Criticality::kStandard, 1, 0), GovernorDecision::kEvaluate);
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 1, 0), GovernorDecision::kEvaluate);
}

TEST_F(GovernorTest, CriticalOnlyShedsEverythingElse) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  SimTime now = 0;
  uint64_t evals = 0;
  for (int i = 0; i < 4; ++i) {
    HotCallout(governor, now, evals);
  }
  ASSERT_EQ(governor.mode(), GovernorMode::kCriticalOnly);
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 1, 0), GovernorDecision::kEvaluate);
  EXPECT_EQ(governor.Admit(Criticality::kStandard, 1, 0), GovernorDecision::kShed);
  EXPECT_EQ(governor.Admit(Criticality::kBestEffort, 1, 0), GovernorDecision::kShed);
  EXPECT_EQ(governor.stats().sheds_standard, 1u);
  EXPECT_EQ(governor.stats().sheds_besteffort, 1u);
  EXPECT_EQ(governor.stats().critical_sheds, 0u);
}

TEST_F(GovernorTest, FailStaticPinsTheDefaultOncePerEpisode) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  SimTime now = 0;
  uint64_t evals = 0;
  for (int i = 0; i < 6; ++i) {
    HotCallout(governor, now, evals);
  }
  ASSERT_EQ(governor.mode(), GovernorMode::kFailStatic);
  const uint64_t episode = governor.fail_static_epoch();
  ASSERT_EQ(episode, 1u);

  // A critical monitor that has not pinned this episode's default gets
  // kStatic exactly once; after recording the episode it is suppressed.
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 1, 0), GovernorDecision::kStatic);
  governor.CountStaticApply();
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 2, episode), GovernorDecision::kShed);
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 3, episode), GovernorDecision::kShed);
  EXPECT_EQ(governor.stats().static_applies, 1u);
  EXPECT_EQ(governor.stats().static_suppressed, 2u);
  // The invariant the bench gate pins: critical monitors are never silently
  // shed without a pinned default.
  EXPECT_EQ(governor.stats().critical_sheds, 0u);

  // Recover, overload again: a NEW episode re-pins the default once.
  for (int i = 0; i < 9; ++i) {
    ColdCallout(governor, now, evals);
  }
  ASSERT_EQ(governor.mode(), GovernorMode::kFull);
  for (int i = 0; i < 6; ++i) {
    HotCallout(governor, now, evals);
  }
  ASSERT_EQ(governor.mode(), GovernorMode::kFailStatic);
  EXPECT_EQ(governor.fail_static_epoch(), 2u);
  EXPECT_EQ(governor.Admit(Criticality::kCritical, 4, episode), GovernorDecision::kStatic);
}

TEST_F(GovernorTest, ExportRestoreRoundTripsTheFullLadderState) {
  OverloadGovernor governor;
  governor.Configure(TightOptions(), nullptr);
  SimTime now = 0;
  uint64_t evals = 0;
  for (int i = 0; i < 4; ++i) {
    HotCallout(governor, now, evals);
  }
  ASSERT_EQ(governor.mode(), GovernorMode::kCriticalOnly);
  (void)governor.Admit(Criticality::kBestEffort, 1, 0);
  const GovernorImage image = governor.ExportState();

  OverloadGovernor restored;
  restored.Configure(TightOptions(), nullptr);
  restored.RestoreState(image);
  EXPECT_EQ(restored.mode(), governor.mode());
  EXPECT_EQ(restored.fail_static_epoch(), governor.fail_static_epoch());
  EXPECT_EQ(restored.stats().transitions, governor.stats().transitions);
  EXPECT_EQ(restored.stats().sheds_besteffort, governor.stats().sheds_besteffort);

  // The restored ladder continues exactly where the original does: the same
  // two hot callouts escalate both to kFailStatic.
  SimTime now2 = now;
  uint64_t evals2 = evals;
  HotCallout(governor, now, evals);
  HotCallout(governor, now, evals);
  HotCallout(restored, now2, evals2);
  HotCallout(restored, now2, evals2);
  EXPECT_EQ(governor.mode(), GovernorMode::kFailStatic);
  EXPECT_EQ(restored.mode(), governor.mode());
  EXPECT_EQ(restored.stats().transitions, governor.stats().transitions);
  EXPECT_EQ(restored.fail_static_epoch(), governor.fail_static_epoch());
}

// --- The spec-level criticality attribute ---

TEST_F(GovernorTest, CriticalityAttributeParsesAllThreeLevels) {
  Kernel kernel;
  EXPECT_TRUE(kernel
                  .LoadGuardrails(R"(
    guardrail c { trigger: { FUNCTION(f) }, rule: { 1 <= 2 }, action: { REPORT() },
                  meta: { criticality = critical } }
    guardrail s { trigger: { FUNCTION(f) }, rule: { 1 <= 2 }, action: { REPORT() },
                  meta: { criticality = standard } }
    guardrail b { trigger: { FUNCTION(f) }, rule: { 1 <= 2 }, action: { REPORT() },
                  meta: { criticality = besteffort } }
  )")
                  .ok());
  EXPECT_EQ(CriticalityName(Criticality::kCritical), "critical");
  EXPECT_EQ(CriticalityName(Criticality::kStandard), "standard");
  EXPECT_EQ(CriticalityName(Criticality::kBestEffort), "besteffort");
}

TEST_F(GovernorTest, CriticalityAttributeRejectsUnknownLevels) {
  Kernel kernel;
  const Status status = kernel.LoadGuardrails(R"(
    guardrail bad { trigger: { FUNCTION(f) }, rule: { 1 <= 2 }, action: { REPORT() },
                    meta: { criticality = extreme } }
  )");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("criticality"), std::string::npos);
}

// --- Kernel integration: storm -> degrade -> recover ---

constexpr char kGovSpec[] = R"(
  guardrail gov-critical {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.pressure, 0) <= 90 },
    action: { SAVE(ctl.safe_mode, true); REPORT("pressure high; safe mode") },
    meta: { severity = critical, criticality = critical }
  }
  guardrail gov-standard {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.pressure, 0) <= 95 },
    action: { REPORT("standard watch") }
  }
  guardrail gov-besteffort {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.load, 0) <= 1000000 },
    action: { REPORT("besteffort watch") },
    meta: { criticality = besteffort }
  }
)";

EngineOptions GovernedEngineOptions() {
  EngineOptions options;
  options.measure_wall_time = false;
  options.governor.enabled = true;
  // pressure_up sits well below the storm's critical-only residual rate
  // (1 eval / 100us = 10000/s), so even a fully degraded storm keeps the
  // ladder pinned at the bottom instead of stalling on the boundary.
  options.governor.pressure_up = 5000.0;
  options.governor.pressure_down = 500.0;
  options.governor.depth_up = 1e18;
  options.governor.depth_down = 1e18 - 1;
  options.governor.dwell_up = 2;
  options.governor.dwell_down = 3;
  options.governor.sample_every = 2;
  options.governor.alpha = 0.5;
  return options;
}

double GovKey(Kernel& kernel, const char* key) {
  return kernel.store().LoadOr(key, Value(int64_t{0})).NumericOr(0.0);
}

TEST_F(GovernorTest, StormDegradesAndCalmRecoversThroughTheKernel) {
  Kernel kernel(GovernedEngineOptions());
  ASSERT_TRUE(kernel.LoadGuardrails(kGovSpec).ok());
  OverloadGovernor& governor = kernel.engine().governor();

  // Storm: 3 evaluations per callout, one callout per simulated 100us ->
  // ~30k evals/s, well over pressure_up. The ladder must reach fail-static
  // at least once. (Shedding shrinks the cost signal, so deep in the storm
  // the ladder may oscillate between the bottom rungs — that is by design;
  // asserted is the reached depth, not the exact final rung.)
  SimTime t = Milliseconds(1);
  for (int i = 0; i < 40; ++i) {
    kernel.Run(t);
    kernel.Callout("hot_path");
    t += Microseconds(100);
  }
  EXPECT_GE(governor.fail_static_epoch(), 1u);
  EXPECT_NE(governor.mode(), GovernorMode::kFull);
  EXPECT_GT(governor.stats().sheds_besteffort, 0u);
  EXPECT_GT(governor.stats().sheds_standard, 0u);
  EXPECT_EQ(governor.stats().critical_sheds, 0u);

  // The critical monitor was not silently dropped: entering fail-static ran
  // its corrective action once as the pinned default (safe mode engaged),
  // with an explanatory report under the monitor's own name.
  EXPECT_GE(governor.stats().static_applies, 1u);
  EXPECT_NE(GovKey(kernel, "ctl.safe_mode"), 0.0);
  EXPECT_GE(kernel.engine().reporter().CountFor("gov-critical"), 1u);

  // Ladder state is exported to the store.
  EXPECT_GT(GovKey(kernel, "engine.governor.transitions"), 0.0);
  EXPECT_GT(GovKey(kernel, "engine.governor.sheds"), 0.0);
  EXPECT_GE(GovKey(kernel, "engine.governor.static_applies"), 1.0);

  // Calm tail: one callout per simulated second. Recovery to full service,
  // mirrored in the published mode key.
  for (int i = 0; i < 12; ++i) {
    t += Seconds(1);
    kernel.Run(t);
    kernel.Callout("hot_path");
  }
  EXPECT_EQ(governor.mode(), GovernorMode::kFull);
  EXPECT_EQ(GovKey(kernel, "engine.governor.mode"),
            static_cast<double>(static_cast<int>(GovernorMode::kFull)));
  EXPECT_GE(governor.stats().deescalations, 3u);
}

TEST_F(GovernorTest, DisabledGovernorInternsNoKeysAndShedsNothing) {
  EngineOptions options;
  options.measure_wall_time = false;  // governor stays default-disabled
  Kernel kernel(options);
  ASSERT_TRUE(kernel.LoadGuardrails(kGovSpec).ok());
  SimTime t = Milliseconds(1);
  for (int i = 0; i < 40; ++i) {
    kernel.Run(t);
    kernel.Callout("hot_path");
    t += Microseconds(100);
  }
  EXPECT_EQ(kernel.engine().governor().mode(), GovernorMode::kFull);
  EXPECT_EQ(kernel.engine().governor().stats().callouts, 0u);
  for (size_t id = 0; id < kernel.store().key_count(); ++id) {
    EXPECT_EQ(kernel.store().KeyName(static_cast<KeyId>(id)).rfind("engine.governor.", 0),
              std::string::npos);
  }
}

// --- Serial vs sharded identity with the governor active ---

std::string GovernedStormState(bool sharded, uint64_t seed) {
  ShardingOptions sharding;
  sharding.enabled = sharded;
  sharding.shards = 3;
  sharding.telemetry = false;
  Kernel kernel(GovernedEngineOptions(), sharding);
  EXPECT_TRUE(kernel.LoadGuardrails(kGovSpec).ok());

  StormWorkloadOptions storm;
  storm.calm = Milliseconds(50);
  storm.storm = Milliseconds(20);
  storm.tail = Milliseconds(100);
  storm.calm_rate = 100.0;
  storm.storm_rate = 40000.0;
  StormGenerator generator(storm, seed);
  for (const StormEvent& event : generator.Generate(Milliseconds(1))) {
    kernel.Run(event.at);
    kernel.store().Save("sys.pressure", Value(static_cast<int64_t>(event.storm ? 80 : 10)));
    kernel.Callout("hot_path");
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

TEST_F(GovernorTest, GovernedStormIsBitIdenticalSerialVsSharded) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ASSERT_EQ(GovernedStormState(false, seed), GovernedStormState(true, seed))
        << "seed=" << seed;
  }
}

// --- Watchdog: stalls, deaths, quarantine, re-admission ---

// Parallel-eligible spec (pure scalar reads, FUNCTION trigger, no
// cross-monitor hazards) so the sharded engine actually batches.
constexpr char kParallelSpec[] = R"(
  guardrail w0 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(a.v, 0) <= 50 },
                 action: { REPORT("w0") } }
  guardrail w1 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(b.v, 0) <= 50 },
                 action: { REPORT("w1") } }
  guardrail w2 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(c.v, 0) <= 50 },
                 action: { REPORT("w2") } }
  guardrail w3 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(d.v, 0) <= 50 },
                 action: { REPORT("w3") } }
)";

std::string WatchdogRunState(bool sharded, const char* chaos_spec,
                             ShardedStats* stats_out = nullptr,
                             int64_t watchdog_ns = Milliseconds(20)) {
  EngineOptions options;
  options.measure_wall_time = false;
  ShardingOptions sharding;
  sharding.enabled = sharded;
  sharding.shards = 2;
  sharding.telemetry = false;
  sharding.watchdog_ns = watchdog_ns;
  sharding.probe_batches = 2;
  sharding.probe_every = 2;
  Kernel kernel(options, sharding);
  ChaosEngine chaos(4242);
  if (chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kParallelSpec).ok());
  if (chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(chaos_spec).ok());
  }
  SimTime t = Milliseconds(1);
  for (int i = 0; i < 30; ++i) {
    kernel.Run(t);
    kernel.store().Save("a.v", Value(int64_t{i % 80}));
    kernel.Callout("f");
    t += Milliseconds(1);
  }
  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

TEST_F(GovernorTest, WorkerDeathIsContainedBitIdentically) {
  constexpr char kDieSpec[] =
      "chaos { site shard.worker_die { mode = bernoulli, p = 0.4 } }";
  ShardedStats stats;
  const std::string expect = WatchdogRunState(false, kDieSpec);
  const std::string actual = WatchdogRunState(true, kDieSpec, &stats);
  EXPECT_EQ(expect, actual);
  EXPECT_GT(stats.watchdog_timeouts, 0u);
  EXPECT_GT(stats.stolen_evals, 0u);
  EXPECT_GT(stats.worker_respawns, 0u);
}

TEST_F(GovernorTest, WorkerStallIsContainedBitIdentically) {
  constexpr char kStallSpec[] =
      "chaos { site shard.worker_stall { mode = bernoulli, p = 0.3, value = 1.0 } }";
  ShardedStats stats;
  const std::string expect = WatchdogRunState(false, kStallSpec);
  const std::string actual = WatchdogRunState(true, kStallSpec, &stats);
  EXPECT_EQ(expect, actual);
  EXPECT_GT(stats.watchdog_timeouts, 0u);
  EXPECT_GT(stats.stolen_evals, 0u);
}

TEST_F(GovernorTest, OneShotDeathQuarantinesThenReadmits) {
  // Exactly one injected death (the first draw), then a clean run: the
  // respawned worker must be probed and re-admitted to full service.
  constexpr char kOneDeath[] =
      "chaos { site shard.worker_die { mode = schedule, nth = {0} } }";
  ShardedStats stats;
  const std::string expect = WatchdogRunState(false, kOneDeath);
  const std::string actual = WatchdogRunState(true, kOneDeath, &stats);
  EXPECT_EQ(expect, actual);
  EXPECT_EQ(stats.worker_respawns, 1u);
  EXPECT_GT(stats.quarantine_evals, 0u);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GE(stats.readmissions, 1u);
}

TEST_F(GovernorTest, UnarmedWorkerSitesChangeNothing) {
  // Off == absent: with no chaos armed, the watchdog-enabled run, the
  // watchdog-disabled run, and the serial oracle all produce the same bytes.
  const std::string armed_watchdog = WatchdogRunState(true, nullptr);
  const std::string no_watchdog =
      WatchdogRunState(true, nullptr, nullptr, /*watchdog_ns=*/0);
  EXPECT_EQ(armed_watchdog, no_watchdog);
  EXPECT_EQ(WatchdogRunState(false, nullptr), armed_watchdog);
}

}  // namespace
}  // namespace osguard
