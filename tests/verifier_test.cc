// Verifier tests: every rejection class, plus acceptance of well-formed
// programs. These are the safety arguments for loading monitors in-kernel.

#include <gtest/gtest.h>

#include "src/dsl/parser.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"

namespace osguard {
namespace {

// Minimal valid program: ldc r0, <nil>; ret r0.
Program MinimalProgram() {
  Program program;
  program.name = "minimal";
  program.register_count = 1;
  program.consts.push_back(Value());
  program.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0});
  program.insns.push_back(Insn{Op::kRet, 0, 0, 0, 0});
  return program;
}

TEST(VerifierTest, MinimalProgramVerifies) {
  EXPECT_TRUE(Verify(MinimalProgram()).ok());
}

TEST(VerifierTest, EmptyProgramRejected) {
  Program program;
  program.name = "empty";
  program.register_count = 1;
  const Status status = Verify(program);
  EXPECT_EQ(status.code(), ErrorCode::kVerifierError);
  EXPECT_NE(status.message().find("empty"), std::string::npos);
}

TEST(VerifierTest, TooManyInstructionsRejected) {
  Program program = MinimalProgram();
  program.insns.assign(static_cast<size_t>(kMaxInstructions) + 1,
                       Insn{Op::kLoadConst, 0, 0, 0, 0});
  program.insns.push_back(Insn{Op::kRet, 0, 0, 0, 0});
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, BadRegisterCountRejected) {
  Program program = MinimalProgram();
  program.register_count = 0;
  EXPECT_FALSE(Verify(program).ok());
  program.register_count = kMaxRegisters + 1;
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, DestinationRegisterOutOfRangeRejected) {
  Program program = MinimalProgram();
  program.insns[0].a = 5;  // register_count is 1
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(VerifierTest, SourceRegisterOutOfRangeRejected) {
  Program program = MinimalProgram();
  program.register_count = 2;
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kMov, 1, 9, 0, 0});
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, ConstantIndexOutOfRangeRejected) {
  Program program = MinimalProgram();
  program.insns[0].imm = 7;  // only one constant
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, BackwardJumpRejected) {
  Program program = MinimalProgram();
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kJump, 0, 0, 0, -1});
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("non-forward"), std::string::npos);
}

TEST(VerifierTest, ZeroOffsetJumpRejected) {
  // pc += 0 would loop forever; forward-only means offset >= 1.
  Program program = MinimalProgram();
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kJump, 0, 0, 0, 0});
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, JumpPastEndRejected) {
  Program program = MinimalProgram();
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kJump, 0, 0, 0, 100});
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(VerifierTest, FallOffEndRejected) {
  Program program;
  program.name = "no-ret";
  program.register_count = 1;
  program.consts.push_back(Value(1));
  program.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0});  // falls off
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("fall off"), std::string::npos);
}

TEST(VerifierTest, UseBeforeDefinitionRejected) {
  Program program;
  program.name = "undef";
  program.register_count = 2;
  program.insns.push_back(Insn{Op::kRet, 1, 0, 0, 0});  // r1 never written
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("before definition"), std::string::npos);
}

TEST(VerifierTest, UseBeforeDefinitionOnOnePathRejected) {
  // r1 is defined only on the fall-through path; the join must reject.
  //   0: ldc r0, true
  //   1: jnz r0, +1 (-> 3)
  //   2: ldc r1, true
  //   3: ret r1          <- r1 undefined if the jump was taken
  Program program;
  program.name = "one-path";
  program.register_count = 2;
  program.consts.push_back(Value(true));
  program.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0});
  program.insns.push_back(Insn{Op::kJumpIfTrue, 0, 0, 0, 1});
  program.insns.push_back(Insn{Op::kLoadConst, 1, 0, 0, 0});
  program.insns.push_back(Insn{Op::kRet, 1, 0, 0, 0});
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("before definition"), std::string::npos);
}

TEST(VerifierTest, DefinitionOnBothPathsAccepted) {
  //   0: ldc r0, true
  //   1: ldc r1, true    <- defined before the branch
  //   2: jnz r0, +1 (-> 4)
  //   3: ldc r1, true
  //   4: ret r1
  Program program;
  program.name = "both-paths";
  program.register_count = 2;
  program.consts.push_back(Value(true));
  program.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0});
  program.insns.push_back(Insn{Op::kLoadConst, 1, 0, 0, 0});
  program.insns.push_back(Insn{Op::kJumpIfTrue, 0, 0, 0, 1});
  program.insns.push_back(Insn{Op::kLoadConst, 1, 0, 0, 0});
  program.insns.push_back(Insn{Op::kRet, 1, 0, 0, 0});
  EXPECT_TRUE(Verify(program).ok());
}

TEST(VerifierTest, UnknownHelperRejected) {
  Program program = MinimalProgram();
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kCall, 0, 0, 0, 9999});
  const Status status = Verify(program);
  EXPECT_NE(status.message().find("unknown helper"), std::string::npos);
}

TEST(VerifierTest, HelperArityRejected) {
  Program program = MinimalProgram();
  // LOAD takes exactly one argument; call it with none.
  program.insns.insert(program.insns.begin() + 1,
                       Insn{Op::kCall, 0, 0, 0, static_cast<int32_t>(HelperId::kLoad)});
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, HelperArgWindowOutOfRangeRejected) {
  Program program = MinimalProgram();
  // LOAD(r0) but with the arg window starting at the last register and
  // spilling past the file.
  Insn call{Op::kCall, 0, 0, 2, static_cast<int32_t>(HelperId::kLoadOr)};
  program.insns.insert(program.insns.begin() + 1, call);
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, ActionHelperRejectedInRuleMode) {
  Program program = MinimalProgram();
  Insn call{Op::kCall, 0, 0, 0, static_cast<int32_t>(HelperId::kReport)};
  program.insns.insert(program.insns.begin() + 1, call);
  const Status status = Verify(program, VerifyOptions{.allow_actions = false});
  EXPECT_NE(status.message().find("not allowed in a rule"), std::string::npos);
  EXPECT_TRUE(Verify(program, VerifyOptions{.allow_actions = true}).ok());
}

TEST(VerifierTest, MutatingHelperRejectedInRuleMode) {
  Program program;
  program.name = "save-in-rule";
  program.register_count = 2;
  program.consts.push_back(Value("key"));
  program.consts.push_back(Value(1));
  program.insns.push_back(Insn{Op::kLoadConst, 0, 0, 0, 0});
  program.insns.push_back(Insn{Op::kLoadConst, 1, 0, 0, 1});
  program.insns.push_back(Insn{Op::kCall, 0, 0, 2, static_cast<int32_t>(HelperId::kSave)});
  program.insns.push_back(Insn{Op::kRet, 0, 0, 0, 0});
  EXPECT_FALSE(Verify(program, VerifyOptions{.allow_actions = false}).ok());
  EXPECT_TRUE(Verify(program, VerifyOptions{.allow_actions = true}).ok());
}

TEST(VerifierTest, MakeListWindowChecked) {
  Program program = MinimalProgram();
  program.insns.insert(program.insns.begin() + 1, Insn{Op::kMakeList, 0, 0, 0, 50});
  EXPECT_FALSE(Verify(program).ok());
}

TEST(VerifierTest, UnknownOpcodeRejected) {
  Program program = MinimalProgram();
  Insn bogus;
  bogus.op = static_cast<Op>(200);
  program.insns.insert(program.insns.begin() + 1, bogus);
  EXPECT_FALSE(Verify(program).ok());
}

// Every program the compiler emits must verify — sweep across language
// features.
class CompiledProgramsVerifyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompiledProgramsVerifyTest, CompilerOutputAlwaysVerifies) {
  auto expr = ParseExprSource(GetParam());
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto program = CompileExpr(*expr.value(), "sweep");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(Verify(program.value()).ok());
  EXPECT_LE(program.value().register_count, kMaxRegisters);
}

INSTANTIATE_TEST_SUITE_P(
    LanguageFeatures, CompiledProgramsVerifyTest,
    ::testing::Values("1", "x", "LOAD(key)", "a + b * c - d / e % f",
                      "a < b && c > d || !e", "MEAN(lat, 10s) <= P99(lat, 1s)",
                      "CLAMP(LOAD_OR(x, 0), 0, 100) == 50",
                      "EXISTS(a) && EXISTS(b) && EXISTS(c)",
                      "NOW() > 1s || COUNT(k, 1s) == 0",
                      "(a || b) && (c || d) && (e || f)",
                      "SQRT(ABS(x)) + LOG(EXP(1)) * POW(2, 3)"));

}  // namespace
}  // namespace osguard
