// VM tests: opcode semantics, fault containment, and execution statistics,
// driven through hand-assembled programs with a scripted helper context.

#include <gtest/gtest.h>

#include "src/vm/vm.h"

namespace osguard {
namespace {

// Helper context that records calls and returns scripted values.
class FakeHelperContext : public HelperContext {
 public:
  Result<Value> CallHelper(HelperId id, std::span<const Value> args) override {
    calls.push_back({id, {args.begin(), args.end()}});
    if (fail_next) {
      fail_next = false;
      return ExecutionError("scripted failure");
    }
    return next_result;
  }
  SimTime now() const override { return 0; }

  struct Call {
    HelperId id;
    std::vector<Value> args;
  };
  std::vector<Call> calls;
  Value next_result;
  bool fail_next = false;
};

class VmTest : public ::testing::Test {
 protected:
  // Builds a program with the given instructions and constants.
  Program Make(std::vector<Insn> insns, std::vector<Value> consts, int regs = 8) {
    Program program;
    program.name = "vm-test";
    program.insns = std::move(insns);
    program.consts = std::move(consts);
    program.register_count = regs;
    return program;
  }

  Result<Value> Run(const Program& program) { return vm_.Execute(program, context_); }

  Vm vm_;
  FakeHelperContext context_;
};

TEST_F(VmTest, LoadConstAndReturn) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0}, {Op::kRet, 0, 0, 0, 0}}, {Value(42)}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().AsInt().value(), 42);
}

TEST_F(VmTest, MovCopies) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kMov, 1, 0, 0, 0},
                          {Op::kRet, 1, 0, 0, 0}},
                         {Value("text")}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().AsString().value(), "text");
}

TEST_F(VmTest, IntOverflowWrapsWithoutFault) {
  // Arithmetic on int64 max must not crash (two's-complement wrap is the
  // kernel-friendly behavior).
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kAdd, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(int64_t{1}), Value(INT64_MAX)}));
  ASSERT_TRUE(result.ok());
}

TEST_F(VmTest, DivisionByZeroFaultsCleanly) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kDiv, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(1), Value(0)}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError);
  EXPECT_NE(result.status().message().find("division by zero"), std::string::npos);
}

TEST_F(VmTest, ModuloByZeroFaults) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kMod, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(7), Value(0)}));
  EXPECT_FALSE(result.ok());
}

TEST_F(VmTest, ArithmeticOnStringFaults) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kAdd, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value("a"), Value(1)}));
  EXPECT_FALSE(result.ok());
}

TEST_F(VmTest, OrderedComparisonOnNilFaults) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kCmpLe, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(), Value(10)}));
  EXPECT_FALSE(result.ok());
}

TEST_F(VmTest, EqualityOnMixedTypesIsFalseNotFault) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kCmpEq, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value("a"), Value(1)}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().AsBool().value());
}

TEST_F(VmTest, StringOrderedComparisonIsLexicographic) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kCmpLt, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value("apple"), Value("banana")}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().AsBool().value());
}

TEST_F(VmTest, NegInt) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kNeg, 1, 0, 0, 0},
                          {Op::kRet, 1, 0, 0, 0}},
                         {Value(5)}));
  EXPECT_EQ(result.value().AsInt().value(), -5);
}

TEST_F(VmTest, NotTruthiness) {
  for (const auto& [input, expected] :
       std::vector<std::pair<Value, bool>>{{Value(), true},
                                           {Value(0), true},
                                           {Value(1), false},
                                           {Value(0.0), true},
                                           {Value(false), true},
                                           {Value(""), true},
                                           {Value("x"), false},
                                           {Value(std::vector<Value>{}), true}}) {
    auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                            {Op::kNot, 1, 0, 0, 0},
                            {Op::kRet, 1, 0, 0, 0}},
                           {input}));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().AsBool().value(), expected) << input.ToString();
  }
}

TEST_F(VmTest, TruthyValueFunctionMatchesVm) {
  EXPECT_FALSE(TruthyValue(Value()));
  EXPECT_FALSE(TruthyValue(Value(0)));
  EXPECT_TRUE(TruthyValue(Value(-1)));
  EXPECT_TRUE(TruthyValue(Value(0.5)));
  EXPECT_FALSE(TruthyValue(Value(false)));
  EXPECT_TRUE(TruthyValue(Value("x")));
  EXPECT_FALSE(TruthyValue(Value(std::vector<Value>{})));
  EXPECT_TRUE(TruthyValue(Value(std::vector<Value>{Value(0)})));
}

TEST_F(VmTest, JumpSkipsInstructions) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},   // r0 = 1
                          {Op::kJump, 0, 0, 0, 1},        // skip next
                          {Op::kLoadConst, 0, 0, 0, 1},   // r0 = 2 (skipped)
                          {Op::kRet, 0, 0, 0, 0}},
                         {Value(1), Value(2)}));
  EXPECT_EQ(result.value().AsInt().value(), 1);
}

TEST_F(VmTest, ConditionalJumps) {
  // if r0 (false): skip r1=1. r1 stays 2.
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},   // r0 = false
                          {Op::kLoadConst, 1, 0, 0, 2},   // r1 = 2
                          {Op::kJumpIfFalse, 0, 0, 0, 1},
                          {Op::kLoadConst, 1, 0, 0, 1},   // r1 = 1 (skipped)
                          {Op::kRet, 1, 0, 0, 0}},
                         {Value(false), Value(1), Value(2)}));
  EXPECT_EQ(result.value().AsInt().value(), 2);
}

TEST_F(VmTest, MakeListCollectsRegisters) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kMakeList, 2, 0, 0, 2},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(1), Value("two")}));
  ASSERT_TRUE(result.ok());
  const auto list = result.value().AsList().value();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].AsInt().value(), 1);
  EXPECT_EQ(list[1].AsString().value(), "two");
}

TEST_F(VmTest, HelperCallPassesArgsAndStoresResult) {
  context_.next_result = Value(123);
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kCall, 2, 0, 2, static_cast<int32_t>(HelperId::kLoadOr)},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value("key"), Value(7)}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().AsInt().value(), 123);
  ASSERT_EQ(context_.calls.size(), 1u);
  EXPECT_EQ(context_.calls[0].id, HelperId::kLoadOr);
  ASSERT_EQ(context_.calls[0].args.size(), 2u);
  EXPECT_EQ(context_.calls[0].args[0].AsString().value(), "key");
}

TEST_F(VmTest, HelperFailureBecomesExecutionError) {
  context_.fail_next = true;
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kCall, 1, 0, 1, static_cast<int32_t>(HelperId::kLoad)},
                          {Op::kRet, 1, 0, 0, 0}},
                         {Value("key")}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kExecutionError);
  EXPECT_NE(result.status().message().find("scripted failure"), std::string::npos);
}

TEST_F(VmTest, StatsCountInsnsAndHelperCalls) {
  vm_.ResetStats();
  Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
            {Op::kCall, 1, 0, 1, static_cast<int32_t>(HelperId::kLoad)},
            {Op::kRet, 1, 0, 0, 0}},
           {Value("key")}));
  EXPECT_EQ(vm_.stats().insns_executed, 3);
  EXPECT_EQ(vm_.stats().helper_calls, 1);
  Run(Make({{Op::kLoadConst, 0, 0, 0, 0}, {Op::kRet, 0, 0, 0, 0}}, {Value(1)}));
  EXPECT_EQ(vm_.stats().insns_executed, 5);  // cumulative
}

TEST_F(VmTest, FloatIntMixedArithmeticPromotes) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kMul, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(3), Value(0.5)}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().type(), ValueType::kFloat);
  EXPECT_DOUBLE_EQ(result.value().AsFloat().value(), 1.5);
}

TEST_F(VmTest, BoolsActAsNumbersInArithmetic) {
  auto result = Run(Make({{Op::kLoadConst, 0, 0, 0, 0},
                          {Op::kLoadConst, 1, 0, 0, 1},
                          {Op::kAdd, 2, 0, 1, 0},
                          {Op::kRet, 2, 0, 0, 0}},
                         {Value(true), Value(true)}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().NumericOr(-1), 2.0);
}

}  // namespace
}  // namespace osguard
