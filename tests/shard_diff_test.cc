// Differential replay: the serial engine is the oracle, the sharded engine
// must be bit-identical to it. Each seed drives the same randomized workload
// through two kernels — one serial, one sharded — and compares the full
// observable state (feature-store slots with series internals, the report
// ring, the engine state image) byte for byte via the persist codec.
//
// The campaign covers 1000 seeds per run, split across four regimes (every
// regime's spec mix includes a live ONCHANGE watcher, so key-scoped
// eligibility is exercised throughout; the native-tier and timer-storm
// regimes live in shard_native_diff_test.cc / shard_timer_diff_test.cc):
//   * 400 clean seeds            (randomized workload + mid-run probation
//                                 deploy that rolls back)
//   * 400 chaos seeds            (callout drop/delay, budget exhaustion,
//                                 probe failures, dispatch failures)
//   * 100 helper-fail seeds      (armed runtime.helper_fail forces the
//                                 global-serial fallback every callout)
//   * 100 persist seeds          (mid-run panic + warm restart on both sides)
//   * 100 retention seeds        (boundary reclamation's Erase racing the
//                                 ONCHANGE cascade its telemetry publish
//                                 triggers; the retention-heavy 1000-seed
//                                 campaign lives in retention_diff_test.cc)
// OSGUARD_CHAOS_SEED offsets the seed base so CI matrices explore fresh
// seeds without code changes.
//
// Determinism requirements baked into the comparison:
//   * measure_wall_time = false — per-eval wall_ns is host noise and is
//     encoded in the state image;
//   * sharding telemetry = false — engine.shard.* keys are the one store
//     surface where a sharded run legitimately diverges from serial.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/retention.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {
namespace {

namespace fs = std::filesystem;

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

// The workload spec: pure-read parallel rules over scalars, windowed
// aggregates and a quantile, a serial-classified monitor (trip_watch reads
// lat.trips, which lat_mean's action writes), a supervised monitor, a
// deliberately error-prone rule on a second hook, a TIMER monitor, and an
// ONCHANGE watcher on a workload-written key (cfg_watch) — its cascade's
// write set (cfg.trips) is disjoint from every rule's reads, so the
// key-scoped classifier keeps the FUNCTION monitors batching while the
// cascades replay inline on both sides.
constexpr char kDiffSpec[] = R"(
  guardrail cfg_watch {
    trigger: { ONCHANGE(probe.value) },
    rule: { LOAD_OR(probe.value, 0) <= 75 },
    action: { INCR(cfg.trips) }
  }
  guardrail lat_mean {
    trigger: { FUNCTION(submit_io) },
    rule: { COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 2000000 },
    action: { INCR(lat.trips), REPORT("mean high") }
  }
  guardrail lat_p9 {
    trigger: { FUNCTION(submit_io) },
    rule: { COUNT(io.lat, 100ms) == 0 || QUANTILE(io.lat, 0.9, 100ms) <= 5000000 },
    action: { SAVE(lat.flag, true) },
    on_satisfy: { SAVE(lat.flag, false) }
  }
  guardrail err_gate {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(err.rate, 0.0) <= 0.7 },
    action: { INCR(err.trips), REPORT() },
    meta: { hysteresis = 2, cooldown = 30ms }
  }
  guardrail trip_watch {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(lat.trips, 0) <= 8 },
    action: { REPORT("too many trips") }
  }
  guardrail budgeted {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(probe.value, 0) <= 60 },
    action: { REPORT("probe high") },
    health: { budget_steps = 64, quarantine = 6 }
  }
  guardrail flaky {
    trigger: { FUNCTION(complete_io) },
    rule: { LOAD(probe.value) <= 40 },
    action: { INCR(flaky.trips) }
  }
  guardrail periodic {
    trigger: { TIMER(15ms, 15ms) },
    rule: { LOAD_OR(step.counter, 0) <= 30 },
    action: { REPORT("counter high") }
  }
)";

// Mid-run staged deploy of `budgeted`: every eval blows the 1-step budget,
// quarantine trips inside probation, and the supervisor rolls back to the
// spec above — all of which must replay identically under sharding.
constexpr char kProbationDeploy[] = R"(
  guardrail budgeted {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(probe.value, 0) <= 55 },
    action: { REPORT("probe high v2") },
    health: { budget_steps = 1, quarantine = 2, probation = 60s }
  }
)";

constexpr char kChaosSpec[] = R"(
  chaos {
    site engine.callout_drop { mode = bernoulli, p = 0.05 },
    site engine.callout_delay { mode = bernoulli, p = 0.05, latency = 3ms },
    site vm.budget_exhaust { mode = bernoulli, p = 0.1 },
    site supervisor.probe_fail { mode = bernoulli, p = 0.5 },
    site actions.dispatch_fail { mode = bernoulli, p = 0.1 }
  }
)";

constexpr char kHelperFailSpec[] = R"(
  chaos { site runtime.helper_fail { mode = bernoulli, p = 0.2 } }
)";

// Retention reclamation is an Erase at the callout boundary, and its own
// telemetry publish (store.retention.reclaimed) triggers an ONCHANGE
// cascade whose write target (ret.trips) is READ by a FUNCTION rule — so
// the key-scoped classifier must put ret_gate's evals on the serial path
// and the cascade must replay at its exact serial position while tmp.*
// keys churn through TTL reclaims and LRU quota evictions underneath.
constexpr char kRetentionRaceSpec[] = R"(
  retention {
    scan_chunk = 8
    namespace "tmp." { max_keys = 6, idle_ttl = 40ms }
  }
  guardrail ret_watch {
    trigger: { ONCHANGE(store.retention.reclaimed) },
    rule: { LOAD_OR(store.retention.reclaimed, 0) <= 2 },
    action: { INCR(ret.trips) }
  }
  guardrail ret_gate {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(ret.trips, 0) <= 4 },
    action: { REPORT("retention cascade") }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 3;
  const char* chaos_spec = nullptr;      // extra source arming chaos sites
  const char* retention_spec = nullptr;  // extra source with a retention block
  bool reboot = false;                   // panic + warm restart at mid-run
  std::string persist_dir;               // set iff reboot
};

EngineOptions DiffEngineOptions() {
  EngineOptions options;
  options.measure_wall_time = false;
  return options;
}

// Runs the (seed, config) workload to completion and returns the wire-encoded
// observable state. Everything the workload does is derived from `seed`, so
// serial and sharded runs of the same seed see identical inputs.
std::string RunWorkload(uint64_t seed, const RunConfig& config,
                        ShardedStats* stats_out = nullptr,
                        RetentionStats* retention_out = nullptr) {
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  Kernel kernel(DiffEngineOptions(), sharding);

  ChaosEngine chaos(seed);
  if (config.chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  std::unique_ptr<PersistManager> persist;
  if (config.reboot) {
    PersistOptions persist_options;
    persist_options.dir = config.persist_dir;
    persist = std::make_unique<PersistManager>(persist_options);
    kernel.AttachPersist(persist.get());
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kDiffSpec).ok());
  if (config.retention_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.retention_spec).ok());
  }
  if (config.chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.chaos_spec).ok());
  }
  if (persist != nullptr) {
    EXPECT_TRUE(persist->Open().ok());
  }

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  constexpr int kSteps = 24;
  for (int step = 1; step <= kSteps; ++step) {
    kernel.Run(Milliseconds(10) * step);
    const SimTime now = kernel.now();
    const int observations = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < observations; ++i) {
      const double sample =
          rng.Bernoulli(0.2) ? rng.Uniform(2.0e6, 8.0e6) : rng.Uniform(1.0e5, 1.5e6);
      kernel.store().Observe("io.lat", now, sample);
    }
    if (rng.Bernoulli(0.4)) {
      kernel.store().Save("err.rate", Value(rng.Uniform(0.0, 1.0)));
    }
    if (rng.Bernoulli(0.3)) {
      kernel.store().Save("probe.value", Value(rng.Uniform(0.0, 90.0)));
    }
    if (rng.Bernoulli(0.25)) {
      kernel.store().Increment("step.counter", 1.0);
    }
    if (config.retention_spec != nullptr && rng.Bernoulli(0.6)) {
      // Churn a governed key family in bursts: 13 possible keys against a
      // budget of 6 and a 40ms TTL, several writes per step so the live
      // population outruns the TTL and the quota pass actually trips.
      const int burst = static_cast<int>(rng.UniformInt(2, 5));
      for (int k = 0; k < burst; ++k) {
        kernel.store().Save("tmp.k" + std::to_string(rng.UniformInt(0, 12)),
                            Value(rng.Uniform(0.0, 1.0)));
      }
    }
    kernel.Callout("submit_io");
    if (rng.Bernoulli(0.35)) {
      kernel.Callout("complete_io");
    }
    if (step == kSteps / 3) {
      // Staged deploy that will regress and roll back a few callouts later.
      EXPECT_TRUE(kernel.LoadGuardrails(kProbationDeploy).ok());
    }
    if (config.reboot && step == kSteps / 2) {
      kernel.Panic();
      auto recovery = kernel.Reboot();
      EXPECT_TRUE(recovery.ok());
      EXPECT_FALSE(recovery.value().cold_start);
    }
  }

  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  if (retention_out != nullptr) {
    *retention_out = kernel.engine().retention().stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class ShardDiffTest : public ::testing::Test {
 protected:
  ShardDiffTest() { Logger::Global().set_level(LogLevel::kOff); }

  fs::path FreshDir(const std::string& name) {
    fs::path dir = fs::temp_directory_path() / ("osguard_shard_diff_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  }
};

TEST_F(ShardDiffTest, CleanRandomSeeds) {
  const uint64_t base = SeedBase();
  uint64_t parallel_evals = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
  }
  // The equivalence is only meaningful if the sharded runs actually took the
  // parallel path.
  EXPECT_GT(parallel_evals, 0u);
}

TEST_F(ShardDiffTest, ChaosRandomSeeds) {
  const uint64_t base = SeedBase() + 0x10000;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kChaosSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded)) << "seed=" << seed;
  }
}

TEST_F(ShardDiffTest, HelperFailSeedsForceGlobalSerial) {
  const uint64_t base = SeedBase() + 0x20000;
  uint64_t serial_callouts = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kHelperFailSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    // An armed runtime.helper_fail site can bite mid-batch on a worker, so
    // batching is disabled wholesale while it is armed.
    EXPECT_EQ(stats.parallel_evals, 0u) << "seed=" << seed;
    serial_callouts += stats.serial_callouts;
  }
  EXPECT_GT(serial_callouts, 0u);
}

TEST_F(ShardDiffTest, PersistWarmRestartSeeds) {
  const uint64_t base = SeedBase() + 0x30000;
  const fs::path serial_dir = FreshDir("serial");
  const fs::path sharded_dir = FreshDir("sharded");
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.reboot = true;
    serial.persist_dir = (serial_dir / std::to_string(seed)).string();
    RunConfig sharded = serial;
    sharded.sharded = true;
    sharded.persist_dir = (sharded_dir / std::to_string(seed)).string();
    fs::create_directories(serial.persist_dir);
    fs::create_directories(sharded.persist_dir);
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded)) << "seed=" << seed;
  }
  fs::remove_all(serial_dir);
  fs::remove_all(sharded_dir);
}

TEST_F(ShardDiffTest, RetentionEraseVsOnchangeCascadeSeeds) {
  const uint64_t base = SeedBase() + 0x50000;
  uint64_t reclaims = 0;
  uint64_t cascades = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.retention_spec = kRetentionRaceSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    RetentionStats stats;
    const std::string expect = RunWorkload(seed, serial, nullptr, &stats);
    ASSERT_EQ(expect, RunWorkload(seed, sharded)) << "seed=" << seed;
    reclaims += stats.reclaimed_idle + stats.reclaimed_quota;
    cascades += stats.quota_breaches;
  }
  // The equivalence is only meaningful if boundaries actually erased keys
  // (firing the ONCHANGE cascade) on the serial oracle.
  EXPECT_GT(reclaims, 0u);
  EXPECT_GT(cascades, 0u);
}

// The shard count is a scheduling detail: any width must reproduce the
// serial bytes, including the degenerate single-worker layout.
TEST_F(ShardDiffTest, ShardWidthSweep) {
  const uint64_t seed = SeedBase() + 0x40000;
  RunConfig serial;
  const std::string expect = RunWorkload(seed, serial);
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    RunConfig config;
    config.sharded = true;
    config.shards = shards;
    ASSERT_EQ(expect, RunWorkload(seed, config)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace osguard
