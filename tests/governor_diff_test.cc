// Differential replay for the overload governor and the shard-worker
// watchdog: the serial engine is the oracle, the sharded engine must stay
// bit-identical while workers are stalled, killed, quarantined, respawned,
// and re-admitted underneath it. Each seed drives the same storm-shaped
// workload (osguard::wl::StormGenerator) through two kernels and compares
// the full observable state (store slots, report ring, engine image —
// including the governor ladder) byte for byte via the persist codec.
//
// The campaign covers 1000 seeds per run, split across five regimes:
//   * 300 storm seeds        (governor walks the ladder up and back down)
//   * 250 worker-stall seeds (chaos-stalled workers, watchdog steals)
//   * 250 worker-die seeds   (chaos-killed workers, respawn + re-admission)
//   * 150 restart seeds      (panic + warm restart mid-storm: the ladder
//                             state, stride positions, and pinned episodes
//                             must resume identically)
//   *  50 combined seeds     (storm + stall + death at once)
// OSGUARD_CHAOS_SEED offsets the seed base so CI matrices explore fresh
// seeds without code changes.
//
// Watchdog events are wall-clock scheduling decisions, which is exactly why
// they may not leak into the observable state: a stolen task re-runs the
// same pure rule against the same sealed batch, so WHERE it ran is the only
// difference. The comparisons here are the proof. The governor, in turn,
// runs on simulated-time signals only (measure_wall_time = false), so its
// transitions replay bit-identically on both engines.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/governor/governor.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/time.h"
#include "src/wl/stormgen.h"

namespace osguard {
namespace {

namespace fs = std::filesystem;

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

// Criticality-rich spec: four parallel-eligible rules (so batches exist to
// steal), a serial-classified monitor (reads a key the actions write), a
// windowed aggregate, and a TIMER monitor for the AdvanceTo path.
constexpr char kGovDiffSpec[] = R"(
  guardrail crit_gate {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.pressure, 0) <= 75 },
    action: { SAVE(ctl.safe_mode, true); INCR(crit.trips); REPORT("pressure high") },
    meta: { severity = critical, criticality = critical }
  }
  guardrail std_mean {
    trigger: { FUNCTION(hot_path) },
    rule: { COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 2000000 },
    action: { REPORT("mean high") }
  }
  guardrail std_err {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(err.rate, 0.0) <= 0.7 },
    action: { REPORT() },
    meta: { hysteresis = 2, cooldown = 10ms }
  }
  guardrail be_load {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.load, 0) <= 800 },
    action: { REPORT("load high") },
    meta: { criticality = besteffort }
  }
  guardrail be_probe {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(probe.value, 0) <= 60 },
    action: { REPORT("probe high") },
    meta: { criticality = besteffort }
  }
  guardrail trip_watch {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(crit.trips, 0) <= 12 },
    action: { REPORT("too many trips") }
  }
  guardrail periodic {
    trigger: { TIMER(15ms, 15ms) },
    rule: { LOAD_OR(sys.load, 0) <= 900 },
    action: { REPORT("periodic load high") },
    meta: { criticality = besteffort }
  }
)";

constexpr char kStallChaos[] = R"(
  chaos { site shard.worker_stall { mode = bernoulli, p = 0.1, value = 1.0 } }
)";

constexpr char kDieChaos[] = R"(
  chaos { site shard.worker_die { mode = bernoulli, p = 0.1 } }
)";

constexpr char kCombinedChaos[] = R"(
  chaos {
    site shard.worker_stall { mode = bernoulli, p = 0.08, value = 1.0 },
    site shard.worker_die { mode = bernoulli, p = 0.08 }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 2;
  const char* chaos_spec = nullptr;  // extra source arming chaos sites
  bool reboot = false;               // panic + warm restart at mid-trace
  std::string persist_dir;           // set iff reboot
};

// Governor tuned so realistic storm rates actually walk the ladder.
EngineOptions GovDiffEngineOptions() {
  EngineOptions options;
  options.measure_wall_time = false;
  options.governor.enabled = true;
  options.governor.pressure_up = 8000.0;
  options.governor.pressure_down = 800.0;
  options.governor.depth_up = 1e18;
  options.governor.depth_down = 1e18 - 1;
  options.governor.dwell_up = 2;
  options.governor.dwell_down = 3;
  options.governor.sample_every = 3;
  options.governor.alpha = 0.4;
  return options;
}

// Per-seed storm shape: rates and phase lengths vary so the campaign sweeps
// gentle storms the ladder barely notices and violent ones that bottom out.
StormWorkloadOptions StormFor(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 23);
  StormWorkloadOptions options;
  options.calm = Milliseconds(static_cast<int64_t>(rng.UniformInt(8, 20)));
  options.storm = Milliseconds(static_cast<int64_t>(rng.UniformInt(5, 15)));
  options.tail = Milliseconds(static_cast<int64_t>(rng.UniformInt(20, 40)));
  options.cycles = 1;
  options.calm_rate = rng.Uniform(200.0, 600.0);
  options.storm_rate = rng.Uniform(4000.0, 12000.0);
  return options;
}

// Runs the (seed, config) storm to completion and returns the wire-encoded
// observable state. Everything the workload does is derived from `seed`, so
// serial and sharded runs of the same seed see identical inputs.
std::string RunStorm(uint64_t seed, const RunConfig& config,
                     ShardedStats* stats_out = nullptr,
                     GovernorStats* gov_out = nullptr) {
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  // Short deadline so injected stalls/deaths are caught quickly; a clean
  // worker finishes a batch in microseconds, far inside it.
  sharding.watchdog_ns = Milliseconds(2);
  sharding.probe_batches = 2;
  sharding.probe_every = 2;
  Kernel kernel(GovDiffEngineOptions(), sharding);

  ChaosEngine chaos(seed);
  if (config.chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  std::unique_ptr<PersistManager> persist;
  if (config.reboot) {
    PersistOptions persist_options;
    persist_options.dir = config.persist_dir;
    persist = std::make_unique<PersistManager>(persist_options);
    kernel.AttachPersist(persist.get());
  }
  EXPECT_TRUE(kernel.LoadGuardrails(kGovDiffSpec).ok());
  if (config.chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.chaos_spec).ok());
  }
  if (persist != nullptr) {
    EXPECT_TRUE(persist->Open().ok());
  }

  StormGenerator generator(StormFor(seed), seed);
  const std::vector<StormEvent> events = generator.Generate(Milliseconds(1));
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 5);
  const size_t panic_at = config.reboot ? events.size() / 2 : events.size() + 1;
  for (size_t i = 0; i < events.size(); ++i) {
    const StormEvent& event = events[i];
    kernel.Run(event.at);
    const SimTime now = kernel.now();
    if (rng.Bernoulli(0.3)) {
      kernel.store().Observe("io.lat", now,
                             rng.Bernoulli(0.2) ? rng.Uniform(2.0e6, 8.0e6)
                                                : rng.Uniform(1.0e5, 1.5e6));
    }
    if (rng.Bernoulli(0.2)) {
      kernel.store().Save("err.rate", Value(rng.Uniform(0.0, 1.0)));
    }
    if (rng.Bernoulli(0.2)) {
      kernel.store().Save("probe.value", Value(rng.Uniform(0.0, 90.0)));
    }
    kernel.store().Save("sys.pressure",
                        Value(static_cast<int64_t>(event.storm ? 80 : 10)));
    kernel.store().Save("sys.load",
                        Value(static_cast<int64_t>(rng.UniformInt(0, 1000))));
    kernel.Callout("hot_path");
    if (i == panic_at) {
      // Crash mid-storm: the governor is typically mid-ladder here, so the
      // warm restart must resume the same rung, stride positions, and
      // pinned fail-static episodes on both engines.
      kernel.Panic();
      auto recovery = kernel.Reboot();
      EXPECT_TRUE(recovery.ok());
      if (recovery.ok()) {
        EXPECT_FALSE(recovery.value().cold_start);
      }
    }
  }

  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  if (gov_out != nullptr) {
    *gov_out = kernel.engine().governor().stats();
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class GovernorDiffTest : public ::testing::Test {
 protected:
  GovernorDiffTest() { Logger::Global().set_level(LogLevel::kOff); }

  fs::path FreshDir(const std::string& name) {
    fs::path dir = fs::temp_directory_path() / ("osguard_gov_diff_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  }
};

TEST_F(GovernorDiffTest, StormSeeds) {
  const uint64_t base = SeedBase();
  uint64_t parallel_evals = 0;
  uint64_t transitions = 0;
  uint64_t critical_sheds = 0;
  for (uint64_t i = 0; i < 300; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    ShardedStats stats;
    GovernorStats gov;
    const std::string expect = RunStorm(seed, serial);
    const std::string actual = RunStorm(seed, sharded, &stats, &gov);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
    transitions += gov.transitions;
    critical_sheds += gov.critical_sheds;
  }
  // The equivalence is only meaningful if the sharded runs actually took the
  // parallel path and the governor actually moved.
  EXPECT_GT(parallel_evals, 0u);
  EXPECT_GT(transitions, 0u);
  EXPECT_EQ(critical_sheds, 0u);
}

TEST_F(GovernorDiffTest, WorkerStallSeeds) {
  const uint64_t base = SeedBase() + 0x50000;
  uint64_t timeouts = 0;
  uint64_t stolen = 0;
  for (uint64_t i = 0; i < 250; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kStallChaos;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunStorm(seed, serial);
    const std::string actual = RunStorm(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    timeouts += stats.watchdog_timeouts;
    stolen += stats.stolen_evals;
  }
  EXPECT_GT(timeouts, 0u);
  EXPECT_GT(stolen, 0u);
}

TEST_F(GovernorDiffTest, WorkerDeathSeeds) {
  const uint64_t base = SeedBase() + 0x60000;
  uint64_t respawns = 0;
  uint64_t readmissions = 0;
  for (uint64_t i = 0; i < 250; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kDieChaos;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunStorm(seed, serial);
    const std::string actual = RunStorm(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    respawns += stats.worker_respawns;
    readmissions += stats.readmissions;
  }
  EXPECT_GT(respawns, 0u);
  EXPECT_GT(readmissions, 0u);
}

TEST_F(GovernorDiffTest, PanicWarmRestartSeeds) {
  const uint64_t base = SeedBase() + 0x70000;
  const fs::path serial_dir = FreshDir("serial");
  const fs::path sharded_dir = FreshDir("sharded");
  for (uint64_t i = 0; i < 150; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.reboot = true;
    serial.persist_dir = (serial_dir / std::to_string(seed)).string();
    RunConfig sharded = serial;
    sharded.sharded = true;
    sharded.persist_dir = (sharded_dir / std::to_string(seed)).string();
    fs::create_directories(serial.persist_dir);
    fs::create_directories(sharded.persist_dir);
    ASSERT_EQ(RunStorm(seed, serial), RunStorm(seed, sharded)) << "seed=" << seed;
  }
  fs::remove_all(serial_dir);
  fs::remove_all(sharded_dir);
}

TEST_F(GovernorDiffTest, CombinedStallAndDeathSeeds) {
  const uint64_t base = SeedBase() + 0x80000;
  uint64_t timeouts = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kCombinedChaos;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunStorm(seed, serial);
    const std::string actual = RunStorm(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    timeouts += stats.watchdog_timeouts;
  }
  EXPECT_GT(timeouts, 0u);
}

}  // namespace
}  // namespace osguard
