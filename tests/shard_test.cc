// Sharded-engine tests: the SPSC ring primitive, the lock-free feature-store
// ReadView, sharded-vs-serial equivalence on targeted workloads, the
// global-serial fallback, engine.shard.* telemetry, per-shard partition
// assignment, and the rollback report-order pin referenced by
// src/actions/report.h (RollbackReportOrder).
//
// The broad randomized equivalence campaign lives in tests/shard_diff_test.cc;
// these tests pin specific mechanisms with hand-built workloads.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/dsl/builtins.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/store/feature_store.h"
#include "src/support/logging.h"
#include "src/support/spsc_ring.h"
#include "src/support/time.h"
#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"
#include "src/vm/native_aot.h"

namespace osguard {
namespace {

// --- SpscRing ---

TEST(SpscRingTest, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));  // empty pop fails
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full push fails
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(SpscRingTest, WraparoundKeepsFifoOrder) {
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  // Push/pop far more elements than the capacity so the indices wrap many
  // times; FIFO order must survive every wrap.
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.TryPush(next_push++));
    ASSERT_TRUE(ring.TryPush(next_push++));
    ASSERT_TRUE(ring.TryPush(next_push++));
    for (int i = 0; i < 3; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_EQ(out, next_pop++);
    }
  }
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(250).capacity(), 256u);
}

TEST(SpscRingTest, ThreadedHandoffPreservesSequence) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 100000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t out = 0;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- FeatureStore::ReadView ---

TEST(ReadViewTest, MatchesLockedAccessors) {
  FeatureStore store;
  store.Save("int_key", Value(int64_t{42}));
  store.Save("float_key", Value(3.25));
  store.Save("bool_key", Value(true));
  store.Save("string_key", Value("hello"));
  store.Save("nil_key", Value());
  for (int i = 1; i <= 20; ++i) {
    store.Observe("series", Milliseconds(i), static_cast<double>(i));
  }
  const SimTime now = Milliseconds(20);

  FeatureStore::ReadView view(&store);
  EXPECT_EQ(view.key_count(), store.key_count());
  for (KeyId id = 0; id < store.key_count(); ++id) {
    EXPECT_EQ(view.Contains(id), store.Contains(id)) << store.KeyName(id);
    EXPECT_EQ(view.LoadOr(id, Value(-1)), store.LoadOr(id, Value(-1))) << store.KeyName(id);
  }
  const KeyId series = store.FindKey("series");
  ASSERT_NE(series, kInvalidKeyId);
  for (AggKind kind : {AggKind::kCount, AggKind::kMean, AggKind::kMin, AggKind::kMax,
                       AggKind::kSum, AggKind::kStdDev}) {
    auto locked = store.Aggregate(series, kind, Milliseconds(10), now);
    auto lockfree = view.Aggregate(series, kind, Milliseconds(10), now);
    ASSERT_EQ(locked.ok(), lockfree.ok());
    if (locked.ok()) {
      // Bit-exact, not approximately equal: the view must run the same
      // arithmetic over the same samples as the locked path.
      EXPECT_EQ(locked.value(), lockfree.value()) << static_cast<int>(kind);
    }
  }
  auto locked_q = store.AggregateQuantile(series, 0.9, Milliseconds(15), now);
  auto view_q = view.AggregateQuantile(series, 0.9, Milliseconds(15), now);
  ASSERT_EQ(locked_q.ok(), view_q.ok());
  EXPECT_EQ(locked_q.value(), view_q.value());
  // No writer ran during the reads: the optimistic path never retried.
  EXPECT_EQ(view.retries(), 0u);
}

TEST(ReadViewTest, SetKeyCountBoundsTheVisibleSlotSpace) {
  FeatureStore store;
  store.Save("a", Value(1));
  FeatureStore::ReadView view(&store);
  EXPECT_EQ(view.key_count(), 1u);
  // The coordinator stamps a fresh key_count per batch; the view reflects it
  // without re-reading the store.
  store.Save("b", Value(2));
  view.set_key_count(store.key_count());
  EXPECT_EQ(view.key_count(), 2u);
  const KeyId b = store.FindKey("b");
  ASSERT_NE(b, kInvalidKeyId);
  EXPECT_EQ(view.LoadOr(b, Value(-1)), Value(2));
}

// --- Sharded vs serial equivalence on targeted workloads ---

// A mixed spec: pure-read parallel rules (scalar, windowed aggregates,
// quantile), a monitor classified serial because its rule reads a key the
// batch's actions write (lat.trips), a supervised monitor with a step
// budget, on_satisfy, hysteresis/cooldown meta, a second hook, and a TIMER
// monitor for the AdvanceTo path.
constexpr char kMixedSpec[] = R"(
  guardrail lat_mean {
    trigger: { FUNCTION(submit_io) },
    rule: { COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 2000000 },
    action: { INCR(lat.trips), REPORT("mean high") }
  }
  guardrail lat_p9 {
    trigger: { FUNCTION(submit_io) },
    rule: { COUNT(io.lat, 100ms) == 0 || QUANTILE(io.lat, 0.9, 100ms) <= 5000000 },
    action: { SAVE(lat.flag, true) },
    on_satisfy: { SAVE(lat.flag, false) }
  }
  guardrail err_gate {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(err.rate, 0.0) <= 0.7 },
    action: { INCR(err.trips), REPORT() },
    meta: { hysteresis = 2, cooldown = 30ms }
  }
  guardrail trip_watch {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(lat.trips, 0) <= 5 },
    action: { REPORT("too many trips") }
  }
  guardrail budgeted {
    trigger: { FUNCTION(submit_io) },
    rule: { LOAD_OR(probe.value, 0) <= 60 },
    action: { REPORT("probe high") },
    health: { budget_steps = 64, quarantine = 50 }
  }
  guardrail flaky {
    trigger: { FUNCTION(complete_io) },
    rule: { LOAD(probe.value) <= 40 },
    action: { INCR(flaky.trips) }
  }
  guardrail periodic {
    trigger: { TIMER(15ms, 15ms) },
    rule: { LOAD_OR(step.counter, 0) <= 30 },
    action: { REPORT("counter high") }
  }
)";

std::string Fingerprint(Kernel& kernel) {
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

// Drives the same deterministic workload through `kernel`.
void DriveMixedWorkload(Kernel& kernel) {
  for (int step = 1; step <= 40; ++step) {
    const SimTime t = Milliseconds(10) * step;
    kernel.Run(t);
    kernel.store().Observe("io.lat", t, 1.0e6 * ((step % 7) + 0.5));
    if (step % 3 == 0) {
      kernel.store().Save("err.rate", Value(0.1 * (step % 11)));
    }
    if (step % 4 == 0) {
      kernel.store().Save("probe.value", Value(static_cast<double>(step * 2 % 90)));
    }
    if (step % 5 == 0) {
      kernel.store().Increment("step.counter", 1.0);
    }
    kernel.Callout("submit_io");
    if (step % 2 == 0) {
      kernel.Callout("complete_io");
    }
  }
}

ShardingOptions DiffSharding(size_t shards) {
  ShardingOptions sharding;
  sharding.enabled = true;
  sharding.shards = shards;
  // Telemetry keys are the one legitimate store divergence; differential
  // comparisons must run without them.
  sharding.telemetry = false;
  return sharding;
}

EngineOptions DiffEngineOptions() {
  EngineOptions options;
  // wall_ns fields are host-nondeterministic and encoded in the image.
  options.measure_wall_time = false;
  return options;
}

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  ShardEquivalenceTest() { Logger::Global().set_level(LogLevel::kOff); }
};

TEST_F(ShardEquivalenceTest, MixedWorkloadBitIdentical) {
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(3));
  ASSERT_TRUE(serial.LoadGuardrails(kMixedSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kMixedSpec).ok());
  DriveMixedWorkload(serial);
  DriveMixedWorkload(sharded);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  // The run must actually have used the parallel path: the serial-classified
  // trip_watch accounts for the serial_evals, everything else batches.
  ASSERT_NE(sharded.sharded_engine(), nullptr);
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  EXPECT_GT(stats.parallel_evals, 0u);
  EXPECT_GT(stats.serial_evals, 0u);  // trip_watch evaluates inline
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.serial_callouts, 0u);
}

// A loaded ONCHANGE watcher used to drop every callout to global serial.
// The key-scoped plan only pins monitors whose store traffic intersects the
// watched-key set: here the hooked monitor's reads ({x}) and writes (none)
// are disjoint from the watched key (err.rate) and the cascade's write set
// (watch.trips), so it keeps batching.
TEST_F(ShardEquivalenceTest, OnChangeDisjointSetsParallelize) {
  constexpr char kOnChangeSpec[] = R"(
    guardrail watcher {
      trigger: { ONCHANGE(err.rate) },
      rule: { LOAD_OR(err.rate, 0.0) <= 0.5 },
      action: { INCR(watch.trips) }
    }
    guardrail hooked {
      trigger: { FUNCTION(submit_io) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { REPORT() }
    }
  )";
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(2));
  ASSERT_TRUE(serial.LoadGuardrails(kOnChangeSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kOnChangeSpec).ok());
  for (Kernel* kernel : {&serial, &sharded}) {
    for (int step = 1; step <= 10; ++step) {
      kernel->Run(Milliseconds(step));
      kernel->store().Save("err.rate", Value(0.1 * step));  // fires the cascade
      kernel->store().Save("x", Value(step));
      kernel->Callout("submit_io");
    }
  }
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  EXPECT_GT(stats.parallel_evals, 0u);
  EXPECT_EQ(stats.serial_callouts, 0u);
}

// The two key-scoped ONCHANGE hazards, in one topology: a monitor whose rule
// reads a key the cascade writes (`reader`) and a monitor whose action writes
// the watched key (`writer`) are pinned serial; a monitor disjoint from both
// sets (`indie`) still batches; no callout falls back to global serial.
TEST_F(ShardEquivalenceTest, OnChangeCascadeIntersectionsStaySerial) {
  constexpr char kCascadeSpec[] = R"(
    guardrail watcher {
      trigger: { ONCHANGE(cascade.sig) },
      rule: { LOAD_OR(cascade.sig, 0) <= 3 },
      action: { INCR(cascade.out) }
    }
    guardrail reader {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(cascade.out, 0) <= 2 },
      action: { REPORT("cascade output high") }
    }
    guardrail writer {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(drive.level, 0) <= 4 },
      action: { SAVE(cascade.sig, 9) }
    }
    guardrail indie {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(other.key, 0) <= 50 },
      action: { REPORT("other high") }
    }
  )";
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(2));
  ASSERT_TRUE(serial.LoadGuardrails(kCascadeSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kCascadeSpec).ok());
  for (Kernel* kernel : {&serial, &sharded}) {
    for (int step = 1; step <= 12; ++step) {
      kernel->Run(Milliseconds(step));
      // drive.level > 4 makes `writer`'s action store the watched key
      // mid-callout, so the cascade (and its INCR of cascade.out) fires
      // inside the inline eval — the exact interleaving the serial engine
      // produces.
      kernel->store().Save("drive.level", Value(step % 8));
      kernel->store().Save("other.key", Value(step * 7 % 60));
      kernel->Callout("fn");
    }
  }
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  EXPECT_GT(stats.parallel_evals, 0u);  // indie keeps batching
  EXPECT_GT(stats.serial_evals, 0u);    // reader + writer pinned inline
  EXPECT_EQ(stats.serial_callouts, 0u);
  // The cascade actually ran (the hazard was live, not vacuous).
  EXPECT_GT(sharded.store().LoadOr("cascade.out", Value()).NumericOr(0), 0.0);
}

// A cascade whose action names its store key only at runtime defeats the
// read/write-set analysis, so the plan must fall back to global serial. The
// DSL requires literal keys, so the dynamic write is produced by patching
// the compiled action's bytecode: a register self-move between the key
// constant and the SAVE call hides the constant from the load-time keyed-
// call rewrite, leaving a dynamic (string-path) kCall.
TEST_F(ShardEquivalenceTest, DynamicKeyOnChangeCascadeForcesGlobalSerial) {
  constexpr char kDynamicSpec[] = R"(
    guardrail watcher {
      trigger: { ONCHANGE(dyn.sig) },
      rule: { LOAD_OR(dyn.sig, 0) <= 3 },
      action: { SAVE(dyn.out, 1) }
    }
    guardrail hooked {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { REPORT() }
    }
  )";
  auto load_patched = [&](Kernel& kernel) {
    auto spec = ParseSpecSource(kDynamicSpec);
    ASSERT_TRUE(spec.ok());
    auto analyzed = Analyze(std::move(spec).value());
    ASSERT_TRUE(analyzed.ok());
    auto compiled = CompileSpec(analyzed.value());
    ASSERT_TRUE(compiled.ok());
    bool patched = false;
    for (CompiledGuardrail& guardrail : compiled.value()) {
      if (guardrail.name != "watcher") {
        continue;
      }
      std::vector<Insn>& insns = guardrail.action.insns;
      for (size_t pc = 0; pc < insns.size(); ++pc) {
        if (insns[pc].op == Op::kCall &&
            static_cast<HelperId>(insns[pc].imm) == HelperId::kSave) {
          // r[b] holds the key; a self-move makes it a non-constant reaching
          // definition, so RewriteKeyedCalls leaves the call dynamic.
          Insn mov;
          mov.op = Op::kMov;
          mov.a = insns[pc].b;
          mov.b = insns[pc].b;
          insns.insert(insns.begin() + static_cast<ptrdiff_t>(pc), mov);
          patched = true;
          break;
        }
      }
    }
    ASSERT_TRUE(patched);
    for (CompiledGuardrail& guardrail : compiled.value()) {
      ASSERT_TRUE(kernel.engine().Load(std::move(guardrail)).ok());
    }
  };
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(2));
  load_patched(serial);
  load_patched(sharded);
  for (Kernel* kernel : {&serial, &sharded}) {
    for (int step = 1; step <= 10; ++step) {
      kernel->Run(Milliseconds(step));
      kernel->store().Save("dyn.sig", Value(step % 6));
      kernel->store().Save("x", Value(step));
      kernel->Callout("fn");
    }
  }
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  EXPECT_EQ(stats.parallel_evals, 0u);
  EXPECT_GT(stats.serial_callouts, 0u);
}

// --- Native-tier composition ---

bool NativeAvailable() {
  static const bool available = [] {
    if (!NativeAot::CompiledIn()) {
      return false;
    }
    NativeAot aot;
    return aot.Available();
  }();
  return available;
}

#define SKIP_IF_NO_NATIVE()                                                  \
  do {                                                                       \
    if (!NativeAvailable()) {                                                \
      GTEST_SKIP() << "native tier unavailable; interp-only composition is " \
                      "covered by the other equivalence tests";              \
    }                                                                        \
  } while (0)

// Promoted monitors run their cached native rule bodies on shard workers and
// stay bit-identical to the serial engine (whose tier counters land in the
// fingerprint, so tier parity is enforced, not just result parity). A
// probation deploy then pins the replaced monitor inline — probation holdouts
// never run native, and never run on a worker — while the untouched monitor
// keeps batching.
TEST_F(ShardEquivalenceTest, NativeTierRunsOnWorkersAndProbationStaysInline) {
  SKIP_IF_NO_NATIVE();
  constexpr char kTierSpec[] = R"(
    guardrail hot {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(x, 0) <= 5 },
      action: { REPORT("x high") }
    }
    guardrail cold {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(y, 0) <= 50 },
      action: { REPORT("y high") }
    }
  )";
  constexpr char kHotV2[] = R"(
    guardrail hot {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(x, 0) <= 4 },
      action: { REPORT("x high v2") },
      health: { probation = 60s, quarantine = 50 }
    }
  )";
  EngineOptions options = DiffEngineOptions();
  options.tier.enabled = true;
  options.tier.promote_after = 2;
  Kernel serial(options);
  Kernel sharded(options, DiffSharding(2));
  ASSERT_TRUE(serial.LoadGuardrails(kTierSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kTierSpec).ok());
  auto drive = [](Kernel& kernel, int base) {
    for (int step = 1; step <= 10; ++step) {
      kernel.Run(Milliseconds(base + step));
      kernel.store().Save("x", Value((base + step) % 9));
      kernel.store().Save("y", Value((base + step) * 3 % 80));
      kernel.Callout("fn");
    }
  };
  drive(serial, 0);
  drive(sharded, 0);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  EXPECT_GT(stats.parallel_evals, 0u);
  EXPECT_EQ(stats.serial_callouts, 0u);
  // Promotion actually kicked in: native bodies ran (on workers, given the
  // assertions above).
  EXPECT_GT(sharded.store().LoadOr("engine.tier.native_evals", Value()).NumericOr(-1), 0.0);

  // Probation deploy of `hot` v2: the holdout evaluates inline until the
  // probation window closes; `cold` keeps its worker-side native tier.
  ASSERT_TRUE(serial.LoadGuardrails(kHotV2).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kHotV2).ok());
  const uint64_t serial_before = stats.serial_evals;
  const uint64_t parallel_before = stats.parallel_evals;
  drive(serial, 10);
  drive(sharded, 10);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  EXPECT_GT(stats.serial_evals, serial_before);      // hot pinned inline
  EXPECT_GT(stats.parallel_evals, parallel_before);  // cold still batches
  EXPECT_EQ(stats.serial_callouts, 0u);
}

// --- Telemetry ---

TEST(ShardTelemetryTest, PublishesEngineShardKeys) {
  Logger::Global().set_level(LogLevel::kOff);
  ShardingOptions sharding;
  sharding.enabled = true;
  sharding.shards = 2;
  sharding.telemetry = true;
  Kernel kernel(EngineOptions{}, sharding);
  ASSERT_TRUE(kernel.LoadGuardrails(kMixedSpec).ok());
  DriveMixedWorkload(kernel);

  FeatureStore& store = kernel.store();
  EXPECT_EQ(store.LoadOr("engine.shard.count", Value()).NumericOr(-1), 2.0);
  const double parallel = store.LoadOr("engine.shard.parallel_evals", Value()).NumericOr(-1);
  const double batches = store.LoadOr("engine.shard.batches", Value()).NumericOr(-1);
  EXPECT_GT(parallel, 0.0);
  EXPECT_GT(batches, 0.0);
  EXPECT_TRUE(store.Contains("engine.shard.serial_evals"));
  EXPECT_TRUE(store.Contains("engine.shard.merge_ns"));

  ShardedEngine* sharded = kernel.sharded_engine();
  ASSERT_NE(sharded, nullptr);
  ASSERT_EQ(sharded->shard_count(), 2u);
  uint64_t eval_sum = 0;
  for (size_t i = 0; i < sharded->shard_count(); ++i) {
    const std::string prefix = "engine.shard." + std::to_string(i);
    EXPECT_EQ(store.LoadOr(prefix + ".evals", Value()).NumericOr(-1),
              static_cast<double>(sharded->ShardEvals(i)));
    EXPECT_EQ(store.LoadOr(prefix + ".ring_hwm", Value()).NumericOr(-1),
              static_cast<double>(sharded->RingHighWater(i)));
    EXPECT_GT(sharded->RingHighWater(i), 0u);
    eval_sum += sharded->ShardEvals(i);
  }
  // Every parallel evaluation ran on exactly one shard.
  EXPECT_EQ(eval_sum, sharded->stats().parallel_evals);
  EXPECT_EQ(static_cast<double>(sharded->stats().parallel_evals), parallel);
}

// --- Partition / quarantine isolation ---

TEST(ShardPartitionTest, RoundRobinAssignmentAndQuarantineIsolation) {
  Logger::Global().set_level(LogLevel::kOff);
  constexpr char kFourSpec[] = R"(
    guardrail aa { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(x, 0) <= 10 },
                   action: { REPORT() }, health: { quarantine = 50 } }
    guardrail bb { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(x, 0) <= 20 },
                   action: { REPORT() }, health: { quarantine = 50 } }
    guardrail cc { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(x, 0) <= 30 },
                   action: { REPORT() }, health: { quarantine = 50 } }
    guardrail dd {
      trigger: { FUNCTION(fn) },
      rule: { LOAD_OR(x, 0) <= 40 },
      action: { REPORT() },
      health: { budget_steps = 1, quarantine = 2 }
    }
  )";
  ShardingOptions sharding;
  sharding.enabled = true;
  sharding.shards = 2;
  Kernel kernel(EngineOptions{}, sharding);
  ASSERT_TRUE(kernel.LoadGuardrails(kFourSpec).ok());
  for (int i = 1; i <= 6; ++i) {
    kernel.Run(Milliseconds(i));
    kernel.Callout("fn");
  }
  // Batch-eligible monitors are assigned round-robin in sorted-name order
  // (the evaluation order): aa->0, bb->1, cc->0, dd->1.
  const GuardrailSupervisor& supervisor = kernel.engine().supervisor();
  ASSERT_NE(supervisor.Find("aa"), nullptr);
  EXPECT_EQ(supervisor.Find("aa")->shard_id, 0u);
  EXPECT_EQ(supervisor.Find("bb")->shard_id, 1u);
  EXPECT_EQ(supervisor.Find("cc")->shard_id, 0u);
  EXPECT_EQ(supervisor.Find("dd")->shard_id, 1u);
  // dd blew its 1-step budget twice and is quarantined; the gate skips it on
  // the coordinator, so the other monitors' shards never see its tasks.
  EXPECT_EQ(supervisor.Find("dd")->state, BreakerState::kOpen);
  const uint64_t dd_evals = kernel.engine().StatsFor("dd").value().evaluations;
  const uint64_t aa_evals = kernel.engine().StatsFor("aa").value().evaluations;
  EXPECT_EQ(dd_evals, 2u);
  EXPECT_EQ(aa_evals, 6u);
  // Quarantine must not leak into the healthy shards' telemetry counters:
  // evaluations continue every callout after dd went dark.
  kernel.Run(Milliseconds(7));
  kernel.Callout("fn");
  EXPECT_EQ(kernel.engine().StatsFor("aa").value().evaluations, 7u);
}

// --- Rollback report order (pinned by src/actions/report.h) ---

// Replace/rollback records are emitted in rollback-queue insertion order,
// which is evaluation order — NOT name order. On the timer path, deadline
// order decides: zz_early (deadline 1s) regresses before aa_late (deadline
// 2s), so zz_early's rollback report must precede aa_late's even though
// "aa_late" sorts first.
TEST(RollbackReportOrderTest, RollbackReportOrder) {
  Logger::Global().set_level(LogLevel::kOff);
  auto v1 = [](const std::string& name, const std::string& timer) {
    return "guardrail " + name + " { trigger: { TIMER(" + timer + ", 10s) }, " +
           "rule: { LOAD_OR(x, 0) <= 100 }, action: { REPORT(\"v1\") }, " +
           "health: { quarantine = 5 } }";
  };
  auto v2 = [](const std::string& name, const std::string& timer) {
    // Every eval blows the 1-step budget; quarantine = 1 trips at the first
    // tick inside probation and queues a rollback.
    return "guardrail " + name + " { trigger: { TIMER(" + timer + ", 10s) }, " +
           "rule: { LOAD_OR(x, 0) <= 99 }, action: { REPORT(\"v2\") }, " +
           "health: { budget_steps = 1, quarantine = 1, probation = 60s } }";
  };
  const std::string v1_spec = v1("zz_early", "1s") + "\n" + v1("aa_late", "2s");
  const std::string v2_spec = v2("zz_early", "1s") + "\n" + v2("aa_late", "2s");

  auto run = [&](Kernel& kernel) {
    EXPECT_TRUE(kernel.LoadGuardrails(v1_spec).ok());
    EXPECT_TRUE(kernel.LoadGuardrails(v2_spec).ok());
    kernel.Run(Seconds(3));
  };
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(2));
  run(serial);
  run(sharded);

  EXPECT_EQ(serial.engine().supervisor().stats().rollbacks, 2u);
  std::vector<const ReportRecord*> rollbacks;
  std::vector<ReportRecord> records = serial.engine().reporter().Records();
  for (const ReportRecord& record : records) {
    if (record.message.find("rolled back") != std::string::npos) {
      rollbacks.push_back(&record);
    }
  }
  ASSERT_EQ(rollbacks.size(), 2u);
  EXPECT_EQ(rollbacks[0]->guardrail, "zz_early");  // evaluation order, not name order
  EXPECT_EQ(rollbacks[1]->guardrail, "aa_late");
  EXPECT_LT(rollbacks[0]->sequence, rollbacks[1]->sequence);
  // The stream is totally ordered by `sequence`, and the sharded engine
  // reproduces it byte for byte.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].sequence, records[i].sequence);
  }
  EXPECT_EQ(serial.engine().EncodeReportRing(), sharded.engine().EncodeReportRing());
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
}

// Two probation monitors regressing inside the same FUNCTION callout: both
// rollbacks are queued during the batch and applied at the callout boundary,
// in evaluation order, identically under sharding.
TEST(RollbackReportOrderTest, TwoRollbacksInOneCallout) {
  Logger::Global().set_level(LogLevel::kOff);
  auto spec = [](const std::string& health) {
    std::string out;
    for (const char* name : {"one", "two"}) {
      out += "guardrail " + std::string(name) + " { trigger: { FUNCTION(fn) }, " +
             "rule: { LOAD_OR(x, 0) <= 50 }, action: { REPORT() }, " +
             "health: { " + health + " } }\n";
    }
    return out;
  };
  auto run = [&](Kernel& kernel) {
    EXPECT_TRUE(kernel.LoadGuardrails(spec("quarantine = 5")).ok());
    kernel.Run(Milliseconds(1));
    kernel.Callout("fn");
    EXPECT_TRUE(
        kernel.LoadGuardrails(spec("budget_steps = 1, quarantine = 1, probation = 60s")).ok());
    kernel.Run(Milliseconds(2));
    kernel.Callout("fn");  // both blow the budget, quarantine, and roll back
    kernel.Run(Milliseconds(3));
    kernel.Callout("fn");  // restored v1 evaluates normally again
  };
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), DiffSharding(2));
  run(serial);
  run(sharded);
  EXPECT_EQ(serial.engine().supervisor().stats().rollbacks, 2u);
  EXPECT_EQ(sharded.engine().supervisor().stats().rollbacks, 2u);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
}

// --- Warm restart rebuilds the sharded layer ---

TEST(ShardRebootTest, ShardedLayerSurvivesReboot) {
  Logger::Global().set_level(LogLevel::kOff);
  ShardingOptions sharding;
  sharding.enabled = true;
  sharding.shards = 2;
  Kernel kernel(EngineOptions{}, sharding);
  ASSERT_TRUE(kernel.LoadGuardrails(kMixedSpec).ok());
  for (int i = 1; i <= 5; ++i) {
    kernel.Run(Milliseconds(10) * i);
    kernel.store().Observe("io.lat", kernel.now(), 1.0e6);
    kernel.Callout("submit_io");
  }
  ASSERT_NE(kernel.sharded_engine(), nullptr);
  EXPECT_GT(kernel.sharded_engine()->stats().parallel_evals, 0u);

  kernel.Panic();
  ASSERT_TRUE(kernel.Reboot().ok());
  // A fresh layer wraps the rebuilt engine (counters start over); callouts
  // keep batching and the telemetry keys re-intern against the restored slot
  // table without a stale KeyId in sight.
  ShardedEngine* after = kernel.sharded_engine();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->stats().batches, 0u);
  for (int i = 6; i <= 10; ++i) {
    kernel.Run(Milliseconds(10) * i);
    kernel.store().Observe("io.lat", kernel.now(), 1.0e6);
    kernel.Callout("submit_io");
  }
  EXPECT_GT(after->stats().parallel_evals, 0u);
  EXPECT_EQ(kernel.store().LoadOr("engine.shard.count", Value()).NumericOr(-1), 2.0);
}

// --- Ring-capacity validation and full-ring early flush ---

TEST(ShardRingOptionsTest, ZeroRingCapacityIsRejectedAtConstruction) {
  Logger::Global().set_level(LogLevel::kOff);
  ShardingOptions sharding = DiffSharding(2);
  sharding.ring_capacity = 0;  // invalid: substituted with the minimum of 2
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), sharding);
  ASSERT_TRUE(serial.LoadGuardrails(kMixedSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kMixedSpec).ok());
  DriveMixedWorkload(serial);
  DriveMixedWorkload(sharded);
  // The engine must come up on the minimum capacity and stay correct, not
  // spin on a ring that can never admit a task.
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  EXPECT_GT(sharded.sharded_engine()->stats().parallel_evals, 0u);
}

TEST(ShardRingOptionsTest, FullRingFlushesEarlyInsteadOfBlocking) {
  Logger::Global().set_level(LogLevel::kOff);
  // Eight parallel-eligible monitors against capacity-2 rings on two shards:
  // a single callout cannot fit in one flush, so the coordinator must seal
  // and merge mid-callout (early flush) rather than wait on a full ring.
  constexpr char kEightSpec[] = R"(
    guardrail m0 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k0, 0) <= 5 }, action: { REPORT() } }
    guardrail m1 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k1, 0) <= 5 }, action: { REPORT() } }
    guardrail m2 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k2, 0) <= 5 }, action: { REPORT() } }
    guardrail m3 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k3, 0) <= 5 }, action: { REPORT() } }
    guardrail m4 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k4, 0) <= 5 }, action: { REPORT() } }
    guardrail m5 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k5, 0) <= 5 }, action: { REPORT() } }
    guardrail m6 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k6, 0) <= 5 }, action: { REPORT() } }
    guardrail m7 { trigger: { FUNCTION(fn) }, rule: { LOAD_OR(k7, 0) <= 5 }, action: { REPORT() } }
  )";
  ShardingOptions tiny = DiffSharding(2);
  tiny.ring_capacity = 2;
  Kernel serial(DiffEngineOptions());
  Kernel sharded(DiffEngineOptions(), tiny);
  ASSERT_TRUE(serial.LoadGuardrails(kEightSpec).ok());
  ASSERT_TRUE(sharded.LoadGuardrails(kEightSpec).ok());
  constexpr int kCallouts = 10;
  for (Kernel* kernel : {&serial, &sharded}) {
    for (int i = 1; i <= kCallouts; ++i) {
      kernel->Run(Milliseconds(i));
      kernel->store().Save("k0", Value(i % 9));
      kernel->Callout("fn");
    }
  }
  EXPECT_EQ(Fingerprint(serial), Fingerprint(sharded));
  const ShardedStats& stats = sharded.sharded_engine()->stats();
  // 8 tasks per callout over 2 shards x capacity 2 forces >= 2 flushes per
  // callout; all 8 evaluations still run on workers.
  EXPECT_GT(stats.batches, static_cast<uint64_t>(kCallouts));
  EXPECT_EQ(stats.parallel_evals, static_cast<uint64_t>(8 * kCallouts));
}

}  // namespace
}  // namespace osguard
