// ML substrate tests: datasets, normalization, MLP training dynamics,
// logistic regression, and metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/linear.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"

namespace osguard {
namespace {

// Linearly separable binary dataset: label = x0 + x1 > 0.
Dataset MakeLinearDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    data.Add({x0, x1}, x0 + x1 > 0 ? 1.0 : 0.0);
  }
  return data;
}

// XOR-ish dataset that a linear model cannot fit.
Dataset MakeXorDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    data.Add({x0, x1}, (x0 > 0) != (x1 > 0) ? 1.0 : 0.0);
  }
  return data;
}

double BinaryAccuracy(const Mlp& model, const Dataset& data) {
  ConfusionMatrix matrix;
  for (size_t i = 0; i < data.size(); ++i) {
    matrix.Add(model.PredictBinary(data.features[i]), data.labels[i] >= 0.5);
  }
  return matrix.accuracy();
}

// --- Dataset / Normalizer ---

TEST(DatasetTest, SplitPreservesAllRows) {
  Dataset data = MakeLinearDataset(100, 1);
  Rng rng(2);
  auto [train, test] = data.Split(0.7, rng);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_EQ(train.feature_dim(), 2u);
}

TEST(DatasetTest, SplitIsDeterministicPerSeed) {
  Dataset data = MakeLinearDataset(50, 1);
  Rng rng_a(3);
  Rng rng_b(3);
  auto [train_a, test_a] = data.Split(0.5, rng_a);
  auto [train_b, test_b] = data.Split(0.5, rng_b);
  EXPECT_EQ(train_a.features, train_b.features);
}

TEST(NormalizerTest, ZScoresTrainingData) {
  Dataset data;
  data.Add({10.0, 100.0}, 0);
  data.Add({20.0, 200.0}, 0);
  data.Add({30.0, 300.0}, 0);
  Normalizer normalizer;
  normalizer.Fit(data);
  EXPECT_DOUBLE_EQ(normalizer.mean()[0], 20.0);
  EXPECT_DOUBLE_EQ(normalizer.mean()[1], 200.0);
  const auto normalized = normalizer.Apply(data);
  // Mean of normalized features is ~0.
  double sum0 = 0;
  for (const auto& row : normalized.features) {
    sum0 += row[0];
  }
  EXPECT_NEAR(sum0, 0.0, 1e-12);
}

TEST(NormalizerTest, ConstantFeaturePassesThrough) {
  Dataset data;
  data.Add({5.0}, 0);
  data.Add({5.0}, 1);
  Normalizer normalizer;
  normalizer.Fit(data);
  EXPECT_EQ(normalizer.Apply({5.0})[0], 0.0);
  EXPECT_EQ(normalizer.Apply({6.0})[0], 1.0);  // stddev clamped to 1
}

// --- MLP ---

TEST(MlpTest, CreateValidatesConfig) {
  MlpConfig config;
  config.layer_sizes = {2};
  EXPECT_FALSE(Mlp::Create(config).ok());
  config.layer_sizes = {2, 0, 1};
  EXPECT_FALSE(Mlp::Create(config).ok());
  config.layer_sizes = {2, 4, 1};
  config.learning_rate = -1;
  EXPECT_FALSE(Mlp::Create(config).ok());
  config.learning_rate = 0.1;
  config.loss = LossKind::kBinaryCrossEntropy;
  config.output_activation = Activation::kIdentity;
  EXPECT_FALSE(Mlp::Create(config).ok());
}

TEST(MlpTest, DeterministicInitPerSeed) {
  MlpConfig config;
  config.layer_sizes = {3, 8, 1};
  auto a = Mlp::Create(config);
  auto b = Mlp::Create(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().GetWeights(), b.value().GetWeights());
  config.seed = 99;
  auto c = Mlp::Create(config);
  EXPECT_NE(a.value().GetWeights(), c.value().GetWeights());
}

TEST(MlpTest, ParameterCountIsCorrect) {
  MlpConfig config;
  config.layer_sizes = {4, 8, 2};
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  // (4*8 + 8) + (8*2 + 2) = 40 + 18
  EXPECT_EQ(model.value().ParameterCount(), 58u);
  EXPECT_EQ(model.value().GetWeights().size(), 58u);
}

TEST(MlpTest, SetWeightsRoundTrips) {
  MlpConfig config;
  config.layer_sizes = {2, 4, 1};
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  std::vector<double> weights = model.value().GetWeights();
  weights[0] = 123.0;
  ASSERT_TRUE(model.value().SetWeights(weights).ok());
  EXPECT_EQ(model.value().GetWeights()[0], 123.0);
  weights.pop_back();
  EXPECT_FALSE(model.value().SetWeights(weights).ok());
}

TEST(MlpTest, TrainRejectsBadData) {
  MlpConfig config;
  config.layer_sizes = {2, 4, 1};
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().Train(Dataset{}).ok());
  Dataset wrong_dim;
  wrong_dim.Add({1.0, 2.0, 3.0}, 1.0);
  EXPECT_FALSE(model.value().Train(wrong_dim).ok());
}

TEST(MlpTest, LossDecreasesDuringTraining) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.epochs = 15;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  const Dataset data = MakeLinearDataset(500, 5);
  auto report = model.value().Train(data);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().epoch_losses.size(), 15u);
  EXPECT_LT(report.value().final_loss, report.value().epoch_losses.front() * 0.8);
}

TEST(MlpTest, LearnsLinearlySeparableData) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.epochs = 20;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value().Train(MakeLinearDataset(1000, 7)).ok());
  EXPECT_GT(BinaryAccuracy(model.value(), MakeLinearDataset(500, 8)), 0.93);
}

TEST(MlpTest, LearnsXorWhereLinearCannot) {
  MlpConfig config;
  config.layer_sizes = {2, 16, 16, 1};
  config.epochs = 60;
  config.learning_rate = 0.1;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value().Train(MakeXorDataset(2000, 9)).ok());
  EXPECT_GT(BinaryAccuracy(model.value(), MakeXorDataset(500, 10)), 0.9);

  // Logistic regression on the same data stays near chance.
  LogisticConfig logistic_config;
  logistic_config.feature_dim = 2;
  logistic_config.epochs = 60;
  auto logistic = LogisticRegression::Create(logistic_config);
  ASSERT_TRUE(logistic.ok());
  ASSERT_TRUE(logistic.value().Train(MakeXorDataset(2000, 9)).ok());
  ConfusionMatrix matrix;
  const Dataset test = MakeXorDataset(500, 10);
  for (size_t i = 0; i < test.size(); ++i) {
    matrix.Add(logistic.value().PredictBinary(test.features[i]), test.labels[i] >= 0.5);
  }
  EXPECT_LT(matrix.accuracy(), 0.7);
}

TEST(MlpTest, EvaluateMatchesLossScale) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.epochs = 20;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  const Dataset data = MakeLinearDataset(500, 11);
  const double before = model.value().Evaluate(data);
  ASSERT_TRUE(model.value().Train(data).ok());
  const double after = model.value().Evaluate(data);
  EXPECT_LT(after, before);
}

TEST(MlpTest, RegressionWithMseLoss) {
  MlpConfig config;
  config.layer_sizes = {1, 16, 1};
  config.output_activation = Activation::kIdentity;
  config.loss = LossKind::kMse;
  config.epochs = 200;
  config.learning_rate = 0.02;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  // Fit y = 2x - 1 on [0, 1].
  Dataset data;
  Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble();
    data.Add({x}, 2.0 * x - 1.0);
  }
  ASSERT_TRUE(model.value().Train(data).ok());
  EXPECT_NEAR(model.value().PredictScalar({0.5}), 0.0, 0.15);
  EXPECT_NEAR(model.value().PredictScalar({1.0}), 1.0, 0.2);
}

TEST(MlpTest, ContinuedTrainingRefinesModel) {
  MlpConfig config;
  config.layer_sizes = {2, 8, 1};
  config.epochs = 5;
  auto model = Mlp::Create(config);
  ASSERT_TRUE(model.ok());
  const Dataset data = MakeLinearDataset(500, 15);
  ASSERT_TRUE(model.value().Train(data).ok());
  const std::vector<double> after_first = model.value().GetWeights();
  ASSERT_TRUE(model.value().Train(data).ok());  // retraining continues
  EXPECT_NE(model.value().GetWeights(), after_first);
}

// --- LogisticRegression ---

TEST(LogisticTest, CreateValidates) {
  EXPECT_FALSE(LogisticRegression::Create(LogisticConfig{.feature_dim = 0}).ok());
  EXPECT_TRUE(LogisticRegression::Create(LogisticConfig{.feature_dim = 3}).ok());
}

TEST(LogisticTest, LearnsLinearData) {
  LogisticConfig config;
  config.feature_dim = 2;
  config.epochs = 30;
  auto model = LogisticRegression::Create(config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value().Train(MakeLinearDataset(1000, 17)).ok());
  ConfusionMatrix matrix;
  const Dataset test = MakeLinearDataset(500, 18);
  for (size_t i = 0; i < test.size(); ++i) {
    matrix.Add(model.value().PredictBinary(test.features[i]), test.labels[i] >= 0.5);
  }
  EXPECT_GT(matrix.accuracy(), 0.95);
}

// --- Metrics ---

TEST(ConfusionMatrixTest, CountsAndDerivedMetrics) {
  ConfusionMatrix matrix;
  matrix.Add(true, true);    // tp
  matrix.Add(true, true);    // tp
  matrix.Add(true, false);   // fp
  matrix.Add(false, true);   // fn
  matrix.Add(false, false);  // tn
  EXPECT_EQ(matrix.true_positive, 2u);
  EXPECT_EQ(matrix.false_positive, 1u);
  EXPECT_EQ(matrix.false_negative, 1u);
  EXPECT_EQ(matrix.true_negative, 1u);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(matrix.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(matrix.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(matrix.f1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(matrix.miss_rate(), 0.2);
}

TEST(ConfusionMatrixTest, EmptyAndDegenerateCases) {
  ConfusionMatrix matrix;
  EXPECT_EQ(matrix.accuracy(), 0.0);
  EXPECT_EQ(matrix.precision(), 0.0);
  EXPECT_EQ(matrix.recall(), 0.0);
  EXPECT_EQ(matrix.f1(), 0.0);
  matrix.Add(false, false);
  EXPECT_EQ(matrix.precision(), 0.0);  // no positive predictions
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0);
}

TEST(MetricsTest, ErrorMeasures) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {2, 2, 5}), 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_EQ(MeanAbsoluteError({}, {}), 0.0);
}

}  // namespace
}  // namespace osguard
