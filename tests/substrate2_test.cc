// Tests for the congestion-control (P2) and cache (P4) substrates, including
// end-to-end guardrail stories on each.

#include <gtest/gtest.h>

#include "src/properties/specs.h"
#include "src/sim/cache.h"
#include "src/sim/congestion.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class CongestionTest : public ::testing::Test {
 protected:
  CongestionTest() { Logger::Global().set_level(LogLevel::kOff); }
  Kernel kernel_;
};

TEST_F(CongestionTest, AimdConvergesNearCapacity) {
  CongestionSim sim(kernel_);
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<AimdPolicy>(2.0)).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "cc_aimd").ok());
  sim.PumpFor(Seconds(30));
  kernel_.Run(Seconds(30));
  // Sawtooth around capacity: utilization well above half, some losses.
  const double mean_util =
      kernel_.store().Aggregate("net.util", AggKind::kMean, Seconds(10), kernel_.now()).value();
  EXPECT_GT(mean_util, 0.6);
  EXPECT_GT(sim.stats().losses, 0u);
  EXPECT_LT(sim.current_rate_mbps(), sim.config().capacity_mbps * 2.0);
}

TEST_F(CongestionTest, NoPolicyHoldsInitialRate) {
  CongestionSim sim(kernel_);
  const double initial = sim.current_rate_mbps();
  sim.PumpFor(Seconds(1));
  kernel_.Run(Seconds(1));
  EXPECT_EQ(sim.current_rate_mbps(), initial);
}

TEST_F(CongestionTest, QueueBuildsRttAndOverflowIsLoss) {
  CongestionConfig config;
  config.capacity_mbps = 10.0;
  config.buffer_ms = 20.0;
  CongestionSim sim(kernel_, config);
  struct Blast : RatePolicy {
    std::string name() const override { return "blast"; }
    double NextRate(const CcSignals&) override { return 100.0; }  // 10x capacity
  };
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<Blast>()).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "blast").ok());
  sim.PumpFor(Seconds(2));
  kernel_.Run(Seconds(2));
  EXPECT_GT(sim.stats().losses, 0u);
  EXPECT_NEAR(sim.queue_ms(), config.buffer_ms, 1.0);  // pinned at the buffer cap
  const double mean_rtt =
      kernel_.store().Aggregate("net.rtt_ms", AggKind::kMean, Seconds(1), kernel_.now()).value();
  EXPECT_GT(mean_rtt, config.base_rtt_ms + config.buffer_ms * 0.8);
}

TEST_F(CongestionTest, BrokenRateClampedButVisible) {
  CongestionSim sim(kernel_);
  struct Negative : RatePolicy {
    std::string name() const override { return "negative"; }
    bool is_learned() const override { return true; }
    double NextRate(const CcSignals&) override { return -50.0; }
  };
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<Negative>()).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "negative").ok());
  sim.PumpFor(Milliseconds(100));
  kernel_.Run(Milliseconds(100));
  EXPECT_GE(sim.current_rate_mbps(), 0.1);  // clamped
  // Raw decision series carries the illegal value for P3-style guardrails.
  const double raw_min =
      kernel_.store()
          .Aggregate("net.rate_mbps", AggKind::kMin, Seconds(1), kernel_.now())
          .value();
  EXPECT_EQ(raw_min, -50.0);
}

// A fragile learned controller: overreacts to RTT noise (the P2 failure).
class JitterySensitivePolicy : public RatePolicy {
 public:
  std::string name() const override { return "cc_learned_fragile"; }
  bool is_learned() const override { return true; }
  double NextRate(const CcSignals& signals) override {
    // Amplifies the RTT measurement delta into a huge rate swing.
    const double delta = signals.rtt_ms - last_rtt_;
    last_rtt_ = signals.rtt_ms;
    return std::max(1.0, signals.current_rate_mbps - delta * 40.0);
  }

 private:
  double last_rtt_ = 20.0;
};

TEST_F(CongestionTest, P2GuardrailCatchesNoiseSensitivityAndFallsBack) {
  CongestionConfig config;
  config.rtt_noise_ms = 2.0;  // noisy measurements
  CongestionSim sim(kernel_, config);
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<JitterySensitivePolicy>()).ok());
  ASSERT_TRUE(kernel_.registry().Register(std::make_shared<AimdPolicy>()).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("net.cc", "cc_learned_fragile").ok());

  PropertySpecOptions options;
  options.check_interval = Milliseconds(250);
  options.check_start = Milliseconds(500);
  options.window = Milliseconds(500);
  // Output (rate) variance must not exceed 2x input (rtt) variance.
  ASSERT_TRUE(kernel_
                  .LoadGuardrails(RobustnessSpec("cc-robust", "net.rtt_ms", "net.rate_mbps",
                                                 2.0, "REPLACE(cc_learned_fragile, cc_aimd)",
                                                 options))
                  .ok());
  sim.PumpFor(Seconds(5));
  kernel_.Run(Seconds(5));
  EXPECT_EQ(kernel_.registry().Active("net.cc").value()->name(), "cc_aimd");
  EXPECT_GT(kernel_.engine().StatsFor("cc-robust").value().violations, 0u);
}

// --- CacheSim ---

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() { Logger::Global().set_level(LogLevel::kOff); }

  void BindPolicy(std::shared_ptr<EvictionPolicy> policy) {
    ASSERT_TRUE(kernel_.registry().Register(policy).ok());
    ASSERT_TRUE(kernel_.registry().BindSlot("cache.evict", policy->name()).ok());
  }

  // Zipf-skewed accesses over a key space larger than the cache.
  void DriveZipf(CacheSim& cache, int accesses, uint64_t space, double skew,
                 uint64_t seed = 3) {
    Rng rng(seed);
    for (int i = 0; i < accesses; ++i) {
      kernel_.Run(kernel_.now() + Microseconds(10));
      cache.Access(rng.Zipf(space, skew));
    }
  }

  Kernel kernel_;
};

TEST_F(CacheTest, HitsAndMissesTracked) {
  CacheSim cache(kernel_, CacheConfig{.capacity = 4});
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(1));
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(cache.Resident(1));
}

TEST_F(CacheTest, CapacityEnforcedViaEviction) {
  CacheSim cache(kernel_, CacheConfig{.capacity = 3});
  BindPolicy(std::make_shared<LruEvictionPolicy>());
  for (uint64_t key = 0; key < 10; ++key) {
    kernel_.Run(kernel_.now() + Microseconds(10));
    cache.Access(key);
  }
  EXPECT_LE(cache.resident_count(), 3u);
  EXPECT_EQ(cache.stats().evictions, 7u);
}

TEST_F(CacheTest, LruEvictsColdestKey) {
  CacheSim cache(kernel_, CacheConfig{.capacity = 2});
  BindPolicy(std::make_shared<LruEvictionPolicy>());
  kernel_.Run(Microseconds(10));
  cache.Access(1);
  kernel_.Run(Microseconds(20));
  cache.Access(2);
  kernel_.Run(Microseconds(30));
  cache.Access(1);  // 1 is now hotter than 2
  kernel_.Run(Microseconds(40));
  cache.Access(3);  // evicts 2
  EXPECT_TRUE(cache.Resident(1));
  EXPECT_FALSE(cache.Resident(2));
}

TEST_F(CacheTest, LruBeatsRandomBeatsMruOnSkewedWorkload) {
  auto hit_rate = [this](std::shared_ptr<EvictionPolicy> policy) {
    Kernel kernel;
    Logger::Global().set_level(LogLevel::kOff);
    (void)kernel.registry().Register(policy);
    (void)kernel.registry().BindSlot("cache.evict", policy->name());
    CacheSim cache(kernel, CacheConfig{.capacity = 128});
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
      kernel.Run(kernel.now() + Microseconds(10));
      cache.Access(rng.Zipf(4096, 1.0));
    }
    return cache.stats().hit_rate();
  };
  const double lru = hit_rate(std::make_shared<LruEvictionPolicy>());
  const double random = hit_rate(std::make_shared<RandomEvictionPolicy>());
  const double mru = hit_rate(std::make_shared<MruEvictionPolicy>());
  EXPECT_GT(lru, random + 0.02);
  EXPECT_GT(random, mru + 0.02);
}

TEST_F(CacheTest, ShadowLruMatchesRealLru) {
  CacheSim cache(kernel_, CacheConfig{.capacity = 64});
  BindPolicy(std::make_shared<LruEvictionPolicy>());
  DriveZipf(cache, 5000, 1024, 0.9);
  // Primary runs LRU, shadow runs LRU: identical hit counts.
  EXPECT_EQ(cache.stats().hits, cache.stats().shadow_hits);
}

TEST_F(CacheTest, BadVictimIndexClampedAndCounted) {
  CacheSim cache(kernel_, CacheConfig{.capacity = 2});
  struct Broken : EvictionPolicy {
    std::string name() const override { return "broken"; }
    bool is_learned() const override { return true; }
    size_t PickVictim(const EvictionContext&) override { return 9999; }
  };
  BindPolicy(std::make_shared<Broken>());
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);  // miss -> eviction with an out-of-range pick
  EXPECT_EQ(cache.stats().bad_victim_indices, 1u);
  EXPECT_LE(cache.resident_count(), 2u);
}

TEST_F(CacheTest, P4GuardrailReplacesCollapsedLearnedPolicy) {
  // "Learned" MRU policy collapses hit rate below the shadow-LRU baseline;
  // the quality guardrail swaps LRU in and hit rate recovers.
  CacheSim cache(kernel_, CacheConfig{.capacity = 128});
  auto learned = std::make_shared<MruEvictionPolicy>();
  auto baseline = std::make_shared<LruEvictionPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(learned).ok());
  ASSERT_TRUE(kernel_.registry().Register(baseline).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("cache.evict", "cache_mru").ok());

  PropertySpecOptions options;
  options.check_interval = Milliseconds(20);
  options.check_start = Milliseconds(40);
  options.window = Milliseconds(40);
  ASSERT_TRUE(kernel_
                  .LoadGuardrails(DecisionQualitySpec(
                      "cache-quality", "cache.hit", "cache.shadow_hit", 0.8,
                      "REPLACE(cache_mru, cache_lru); REPORT(\"hit rate collapsed\")",
                      options))
                  .ok());
  DriveZipf(cache, 20000, 4096, 1.0);
  EXPECT_EQ(kernel_.registry().Active("cache.evict").value()->name(), "cache_lru");
  EXPECT_GT(kernel_.engine().StatsFor("cache-quality").value().violations, 0u);

  // After the swap the primary tracks the shadow again.
  const uint64_t hits_at_swap = cache.stats().hits;
  const uint64_t shadow_at_swap = cache.stats().shadow_hits;
  DriveZipf(cache, 20000, 4096, 1.0, /*seed=*/4);
  const double primary_after =
      static_cast<double>(cache.stats().hits - hits_at_swap) / 20000.0;
  const double shadow_after =
      static_cast<double>(cache.stats().shadow_hits - shadow_at_swap) / 20000.0;
  EXPECT_GT(primary_after, shadow_after * 0.9);
}

}  // namespace
}  // namespace osguard
