// Supervisor tests: runtime budgets, circuit-breaker quarantine, staged
// deployment with auto-rollback, and the supervisor's chaos-determinism
// contract.
//
// Contract properties:
//   1. Budgets — a rule that exceeds its `budget_steps` is aborted mid-eval
//      and classified as a budget failure (never a violation).
//   2. Breaker — failure events walk closed -> open -> half-open -> closed
//      deterministically; an open breaker skips evals and applies the
//      corrective action once as the quarantine default.
//   3. Probation — a replace-by-name deploy that quarantines or regresses is
//      rolled back atomically to the bit-identical pre-deploy program; a
//      clean deploy commits.
//   4. Off == absent — a guardrail whose health block never trips behaves
//      exactly like the same guardrail without one (differential baseline).
//   5. Seed replay — supervisor decisions under chaos are a pure function of
//      the seed (1000-seed sweep, like tests/chaos_test.cc; the
//      OSGUARD_CHAOS_SEED env var offsets the seed base so CI matrix jobs
//      sweep disjoint ranges).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/actions/dispatcher.h"
#include "src/chaos/chaos.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/engine.h"
#include "src/supervisor/supervisor.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

uint64_t HashMix(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() : engine_(&store_, &registry_, &task_control_) {
    Logger::Global().set_level(LogLevel::kOff);
  }

  void Load(const std::string& source) {
    Status status = engine_.LoadSource(source);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  MonitorStats Stats(const std::string& name) {
    auto stats = engine_.StatsFor(name);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats.value_or(MonitorStats{});
  }

  FeatureStore store_;
  PolicyRegistry registry_;
  RecordingTaskControl task_control_;
  Engine engine_;
};

// --- health { } sema ---

TEST(SupervisorDslTest, HealthBlockParsesAndAnalyzes) {
  auto spec = ParseSpecSource(R"(
    guardrail h {
      trigger: { TIMER(1s, 1s) },
      rule: { true },
      action: { REPORT() },
      health: {
        budget_steps = 500,
        budget_ns = 2ms,
        flap_window = 30s,
        flap_threshold = 4,
        quarantine = 2,
        probe_every = 5,
        reinstate = 3,
        probation = 60s,
        ewma_alpha = 0.5
      }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto analyzed = Analyze(std::move(spec).value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().message();
  const GuardrailHealth& health = analyzed.value().guardrails[0].meta.health;
  EXPECT_TRUE(health.supervised);
  EXPECT_EQ(health.budget_steps, 500);
  EXPECT_EQ(health.budget_ns, Milliseconds(2));
  EXPECT_EQ(health.flap_window, Seconds(30));
  EXPECT_EQ(health.flap_threshold, 4);
  EXPECT_EQ(health.quarantine, 2);
  EXPECT_EQ(health.probe_every, 5);
  EXPECT_EQ(health.reinstate, 3);
  EXPECT_EQ(health.probation, Seconds(60));
  EXPECT_EQ(health.ewma_alpha, 0.5);

  // An empty block supervises with defaults; no block means unsupervised.
  auto defaults = Analyze(
      ParseSpecSource("guardrail d { trigger: { TIMER(1s, 1s) }, rule: { true }, "
                      "action: { REPORT() }, health: { } }")
          .value());
  ASSERT_TRUE(defaults.ok()) << defaults.status().message();
  EXPECT_TRUE(defaults.value().guardrails[0].meta.health.supervised);
  auto absent = Analyze(
      ParseSpecSource("guardrail a { trigger: { TIMER(1s, 1s) }, rule: { true }, "
                      "action: { REPORT() } }")
          .value());
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent.value().guardrails[0].meta.health.supervised);
}

TEST(SupervisorDslTest, BadHealthBlocksFailCleanly) {
  const char* bad[] = {
      "health: { budget_steps = -1 }",  "health: { flap_window = 0 }",
      "health: { flap_threshold = 0 }", "health: { quarantine = 0 }",
      "health: { probe_every = 0 }",    "health: { reinstate = 0 }",
      "health: { probation = -1s }",    "health: { ewma_alpha = 1.5 }",
      "health: { ewma_alpha = 0 }",     "health: { teapot = 4 }",
  };
  for (const char* block : bad) {
    const std::string source = std::string("guardrail b { trigger: { TIMER(1s, 1s) }, "
                                           "rule: { true }, action: { REPORT() }, ") +
                               block + " }";
    auto spec = ParseSpecSource(source);
    if (!spec.ok()) {
      continue;  // rejected at parse (e.g. negative literals): fine, it's clean
    }
    auto analyzed = Analyze(std::move(spec).value());
    EXPECT_FALSE(analyzed.ok()) << source;
    EXPECT_FALSE(analyzed.status().message().empty()) << source;
  }
}

// --- Property 1: runtime budgets ---

TEST_F(SupervisorTest, BudgetStepsAbortsRunawayRule) {
  // budget_steps = 1: any real rule exceeds it on its very first eval.
  // quarantine is high so this test isolates the kill switch from the breaker.
  Load(R"(
    guardrail runaway {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { SAVE(tripped, true) },
      health: { budget_steps = 1, quarantine = 1000 }
    }
  )");
  engine_.AdvanceTo(Seconds(3));
  const MonitorStats stats = Stats("runaway");
  EXPECT_EQ(stats.evaluations, 3u);
  EXPECT_EQ(stats.errors, 3u);  // budget aborts are contained monitor errors
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_FALSE(store_.Contains("tripped"));
  EXPECT_EQ(engine_.supervisor().stats().budget_aborts, 3u);
  EXPECT_EQ(engine_.vm().stats().budget_aborts, 3);
  const GuardHealth* guard = engine_.supervisor().Find("runaway");
  ASSERT_NE(guard, nullptr);
  EXPECT_EQ(guard->budget_aborts, 3u);
  EXPECT_GT(guard->fail_ewma, 0.0);
  // The abort is visible through the store-exported health score.
  EXPECT_LT(store_.LoadOr("supervisor.runaway.health", Value(1.0)).NumericOr(1.0), 1.0);
}

TEST_F(SupervisorTest, GenerousBudgetNeverFires) {
  Load(R"(
    guardrail roomy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { REPORT() },
      health: { budget_steps = 100000 }
    }
  )");
  engine_.AdvanceTo(Seconds(5));
  EXPECT_EQ(Stats("roomy").errors, 0u);
  EXPECT_EQ(engine_.supervisor().stats().budget_aborts, 0u);
}

// --- Property 2: the breaker cycle, deterministic from one chaos schedule ---

constexpr char kBreakerSpec[] = R"(
  guardrail breaker-demo {
    trigger: { TIMER(1s, 1s) },
    rule: { LOAD_OR(x, 0) <= 100 },
    action: { REPORT("corrective") },
    health: { quarantine = 3, probe_every = 4, reinstate = 2 }
  }
  chaos { site vm.budget_exhaust { mode = schedule, nth = {0, 1, 2} } }
)";

TEST_F(SupervisorTest, BreakerWalksFullCycleDeterministically) {
  ChaosEngine chaos(7);
  engine_.SetChaos(&chaos);
  Load(kBreakerSpec);
  const GuardHealth* guard = engine_.supervisor().Find("breaker-demo");
  ASSERT_NE(guard, nullptr);

  // t=1..3: injected budget aborts -> streak hits quarantine=3 -> open.
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(guard->state, BreakerState::kOpen);
  EXPECT_EQ(guard->quarantines, 1u);
  EXPECT_EQ(guard->budget_aborts, 3u);

  // The corrective action ran exactly once as the quarantine default.
  EXPECT_EQ(engine_.reporter().CountOfKind(ReportKind::kActionPayload), 1u);
  bool saw_quarantine_report = false;
  for (const ReportRecord& record : engine_.reporter().RecordsFor("breaker-demo")) {
    if (record.message.find("quarantined by supervisor") != std::string::npos) {
      saw_quarantine_report = true;
    }
  }
  EXPECT_TRUE(saw_quarantine_report);

  // t=4..6 skipped; t=7 is the 4th suppressed trigger -> half-open probe.
  // The schedule is exhausted, so the probe is clean; one more at t=11
  // reaches reinstate=2 and closes the breaker.
  engine_.AdvanceTo(Seconds(6));
  EXPECT_EQ(guard->state, BreakerState::kOpen);
  EXPECT_EQ(guard->skipped, 3u);
  engine_.AdvanceTo(Seconds(7));
  EXPECT_EQ(guard->probes, 1u);
  EXPECT_EQ(guard->state, BreakerState::kOpen);  // 1 clean probe < reinstate
  engine_.AdvanceTo(Seconds(11));
  EXPECT_EQ(guard->probes, 2u);
  EXPECT_EQ(guard->state, BreakerState::kClosed);
  EXPECT_EQ(guard->reinstatements, 1u);

  // Reinstated: evals resume and the skip counter stops moving.
  const uint64_t skipped_at_reinstate = guard->skipped;
  engine_.AdvanceTo(Seconds(14));
  EXPECT_EQ(guard->skipped, skipped_at_reinstate);
  EXPECT_EQ(Stats("breaker-demo").evaluations, 3u + 2u + 3u);

  // Exported state tracked the transitions.
  EXPECT_EQ(store_.LoadOr("supervisor.breaker-demo.state", Value(-1)).AsInt().value(),
            static_cast<int64_t>(BreakerState::kClosed));
  EXPECT_EQ(store_.LoadOr("supervisor.quarantines", Value(0)).AsInt().value(), 1);
  EXPECT_EQ(store_.LoadOr("supervisor.reinstatements", Value(0)).AsInt().value(), 1);
}

TEST_F(SupervisorTest, ChaosProbeFailureKeepsBreakerOpen) {
  ChaosEngine chaos(7);
  engine_.SetChaos(&chaos);
  Load(R"(
    guardrail stuck {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 100 },
      action: { REPORT() },
      health: { quarantine = 2, probe_every = 2, reinstate = 1 }
    }
    chaos {
      site vm.budget_exhaust { mode = schedule, nth = {0, 1} },
      site supervisor.probe_fail { mode = schedule, nth = {0, 1, 2} }
    }
  )");
  const GuardHealth* guard = engine_.supervisor().Find("stuck");
  ASSERT_NE(guard, nullptr);
  // Two injected aborts quarantine; the first three probes are failed by
  // chaos, so the breaker never closes in this window.
  engine_.AdvanceTo(Seconds(8));
  EXPECT_EQ(guard->quarantines, 1u);
  EXPECT_GE(guard->probes, 3u);
  EXPECT_EQ(guard->probe_failures, 3u);
  EXPECT_EQ(guard->state, BreakerState::kOpen);
  EXPECT_EQ(guard->reinstatements, 0u);
}

// --- Flap detector ---

TEST_F(SupervisorTest, TripFlappingOpensTheBreaker) {
  // The guardrail's own programs oscillate the watched value, so the rule
  // flips violated <-> satisfied every tick; hysteresis = 1 so each flip is a
  // protocol edge. flap_threshold = 4 within a 60s window, and quarantine = 1:
  // the first flap overflow quarantines the guardrail.
  Load(R"(
    guardrail flappy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) >= 1 },
      action: { SAVE(x, 1) },
      on_satisfy: { SAVE(x, 0) },
      health: { flap_window = 60s, flap_threshold = 4, quarantine = 1 }
    }
  )");
  engine_.AdvanceTo(Seconds(20));
  const GuardHealth* guard = engine_.supervisor().Find("flappy");
  ASSERT_NE(guard, nullptr);
  EXPECT_GE(guard->flap_events, 1u);
  EXPECT_EQ(guard->state, BreakerState::kOpen);
  EXPECT_EQ(engine_.supervisor().stats().quarantines, 1u);
}

// --- Property 3: probation deploys ---

constexpr char kStableV1[] = R"(
  guardrail deploy {
    trigger: { TIMER(1s, 1s) },
    rule: { LOAD_OR(x, 0) <= 100 },
    action: { REPORT("v1") },
    health: { quarantine = 3 }
  }
)";

TEST_F(SupervisorTest, QuarantineInProbationRollsBackToOldProgram) {
  Load(kStableV1);
  engine_.AdvanceTo(Seconds(3));
  const std::string v1_rule = engine_.FindGuardrail("deploy")->rule.Disassemble();

  // v2: every eval blows its 1-step budget; quarantine = 2 trips inside the
  // probation window.
  Load(R"(
    guardrail deploy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 99 },
      action: { REPORT("v2") },
      health: { budget_steps = 1, quarantine = 2, probation = 60s }
    }
  )");
  const GuardHealth* staged = engine_.supervisor().Find("deploy");
  ASSERT_NE(staged, nullptr);
  EXPECT_TRUE(staged->in_probation);

  engine_.AdvanceTo(Seconds(10));
  EXPECT_EQ(engine_.supervisor().stats().rollbacks, 1u);
  // The restored program is bit-identical to the pre-deploy version and back
  // in service: evaluations resume with no further errors.
  ASSERT_NE(engine_.FindGuardrail("deploy"), nullptr);
  EXPECT_EQ(engine_.FindGuardrail("deploy")->rule.Disassemble(), v1_rule);
  const GuardHealth* restored = engine_.supervisor().Find("deploy");
  ASSERT_NE(restored, nullptr);
  EXPECT_FALSE(restored->in_probation);  // restored versions are trusted
  EXPECT_EQ(restored->state, BreakerState::kClosed);
  const uint64_t evals_after_rollback = Stats("deploy").evaluations;
  engine_.AdvanceTo(Seconds(15));
  EXPECT_EQ(Stats("deploy").evaluations, evals_after_rollback + 5u);
  EXPECT_EQ(engine_.supervisor().stats().budget_aborts, 2u);  // v2 only

  bool saw_rollback_report = false;
  for (const ReportRecord& record : engine_.reporter().RecordsFor("deploy")) {
    if (record.message.find("rolled back by supervisor") != std::string::npos) {
      saw_rollback_report = true;
    }
  }
  EXPECT_TRUE(saw_rollback_report);
}

TEST_F(SupervisorTest, RegressionAtProbationEndRollsBack) {
  Load(kStableV1);
  engine_.AdvanceTo(Seconds(3));
  const std::string v1_rule = engine_.FindGuardrail("deploy")->rule.Disassemble();

  // v2 faults on every eval (LOAD of a missing key is nil; nil <= 10 errors)
  // but quarantine is too high to trip: only the end-of-window regression
  // check against the v1 baseline can catch it.
  Load(R"(
    guardrail deploy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD(never_set) <= 10 },
      action: { REPORT("v2") },
      health: { quarantine = 1000, probation = 5s }
    }
  )");
  engine_.AdvanceTo(Seconds(12));
  EXPECT_EQ(engine_.supervisor().stats().rollbacks, 1u);
  EXPECT_EQ(engine_.supervisor().stats().commits, 0u);
  EXPECT_EQ(engine_.FindGuardrail("deploy")->rule.Disassemble(), v1_rule);
}

TEST_F(SupervisorTest, CleanProbationCommits) {
  Load(kStableV1);
  engine_.AdvanceTo(Seconds(3));

  Load(R"(
    guardrail deploy {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 99 },
      action: { REPORT("v2") },
      health: { quarantine = 3, probation = 5s }
    }
  )");
  const std::string v2_rule = engine_.FindGuardrail("deploy")->rule.Disassemble();
  engine_.AdvanceTo(Seconds(12));
  EXPECT_EQ(engine_.supervisor().stats().rollbacks, 0u);
  EXPECT_EQ(engine_.supervisor().stats().commits, 1u);
  const GuardHealth* guard = engine_.supervisor().Find("deploy");
  ASSERT_NE(guard, nullptr);
  EXPECT_FALSE(guard->in_probation);
  EXPECT_EQ(engine_.FindGuardrail("deploy")->rule.Disassemble(), v2_rule);
}

// --- Replace-by-name carry-over (explicit policy; see docs/DSL.md) ---

TEST_F(SupervisorTest, CooldownSurvivesReplace) {
  Load(R"(
    guardrail cool {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { REPORT() },
      meta: { cooldown = 30s }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Stats("cool").action_firings, 1u);

  // Hot replace while the cooldown is running: the clock persists, so the
  // new version cannot re-fire inside the old version's cooldown.
  Load(R"(
    guardrail cool {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 11 },
      action: { REPORT() },
      meta: { cooldown = 30s }
    }
  )");
  engine_.AdvanceTo(Seconds(10));
  const MonitorStats stats = Stats("cool");
  EXPECT_EQ(stats.action_firings, 0u);  // counters reset with the new version
  EXPECT_GE(stats.suppressed_cooldown, 8u);
  EXPECT_EQ(stats.last_action_time, Seconds(1));
}

TEST_F(SupervisorTest, SatisfiedEdgeSurvivesReplace) {
  Load(kStableV1);
  store_.Save("x", Value(500));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_TRUE(Stats("deploy").in_violation);

  Load(kStableV1);  // replace with an identical version mid-violation
  EXPECT_TRUE(Stats("deploy").in_violation);
  store_.Save("x", Value(0));
  engine_.AdvanceTo(Seconds(2));
  // The new version inherited the violation and emits the satisfied edge.
  EXPECT_EQ(Stats("deploy").satisfy_firings, 1u);
  EXPECT_FALSE(Stats("deploy").in_violation);
}

// --- Property 4: off == absent differential baseline ---

// A workload with violations, recoveries, and actions; `health_block` is
// spliced in supervised runs.
std::string DifferentialSpec(const std::string& health_block) {
  return R"(
    guardrail diff {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(load, 0) <= 10 },
      action: { INCR(trips) },
      on_satisfy: { INCR(recoveries) },
      meta: { hysteresis = 2, cooldown = 3s }
    )" +
         health_block + "}";
}

struct DifferentialTrace {
  MonitorStats monitor;
  uint64_t timer_firings = 0;
  uint64_t evaluations = 0;
  uint64_t violations = 0;
  uint64_t action_firings = 0;
  uint64_t errors = 0;
  double trips = 0;
  double recoveries = 0;
  std::vector<std::pair<int, std::string>> reports;  // (kind, message)
};

DifferentialTrace RunDifferential(const std::string& health_block) {
  FeatureStore store;
  PolicyRegistry registry;
  RecordingTaskControl task_control;
  Engine engine(&store, &registry, &task_control);
  EXPECT_TRUE(engine.LoadSource(DifferentialSpec(health_block)).ok());
  for (int t = 1; t <= 40; ++t) {
    // Deterministic sawtooth: above threshold in bursts, recovering between.
    store.Save("load", Value((t / 5) % 2 == 0 ? 0 : 50));
    engine.AdvanceTo(Seconds(t));
  }
  DifferentialTrace trace;
  trace.monitor = engine.StatsFor("diff").value_or(MonitorStats{});
  trace.timer_firings = engine.stats().timer_firings;
  trace.evaluations = engine.stats().evaluations;
  trace.violations = engine.stats().violations;
  trace.action_firings = engine.stats().action_firings;
  trace.errors = engine.stats().errors;
  trace.trips = store.LoadOr("trips", Value(0)).NumericOr(0);
  trace.recoveries = store.LoadOr("recoveries", Value(0)).NumericOr(0);
  for (const ReportRecord& record : engine.reporter().Records()) {
    trace.reports.emplace_back(static_cast<int>(record.kind), record.message);
  }
  return trace;
}

TEST(SupervisorDifferentialTest, UntrippedHealthBlockMatchesAbsentBaseline) {
  const DifferentialTrace baseline = RunDifferential("");
  // Generous limits: supervised, but nothing ever trips.
  const DifferentialTrace supervised = RunDifferential(
      ", health: { budget_steps = 1000000, quarantine = 1000000, "
      "flap_threshold = 1000000 }");

  EXPECT_EQ(supervised.monitor.evaluations, baseline.monitor.evaluations);
  EXPECT_EQ(supervised.monitor.violations, baseline.monitor.violations);
  EXPECT_EQ(supervised.monitor.action_firings, baseline.monitor.action_firings);
  EXPECT_EQ(supervised.monitor.satisfy_firings, baseline.monitor.satisfy_firings);
  EXPECT_EQ(supervised.monitor.errors, baseline.monitor.errors);
  EXPECT_EQ(supervised.monitor.suppressed_hysteresis,
            baseline.monitor.suppressed_hysteresis);
  EXPECT_EQ(supervised.monitor.suppressed_cooldown, baseline.monitor.suppressed_cooldown);
  EXPECT_EQ(supervised.monitor.in_violation, baseline.monitor.in_violation);
  EXPECT_EQ(supervised.monitor.consecutive_violations,
            baseline.monitor.consecutive_violations);
  EXPECT_EQ(supervised.monitor.last_action_time, baseline.monitor.last_action_time);
  EXPECT_EQ(supervised.timer_firings, baseline.timer_firings);
  EXPECT_EQ(supervised.evaluations, baseline.evaluations);
  EXPECT_EQ(supervised.violations, baseline.violations);
  EXPECT_EQ(supervised.action_firings, baseline.action_firings);
  EXPECT_EQ(supervised.errors, baseline.errors);
  EXPECT_EQ(supervised.trips, baseline.trips);
  EXPECT_EQ(supervised.recoveries, baseline.recoveries);
  EXPECT_EQ(supervised.reports, baseline.reports);

  // Sanity: a health block that *does* trip diverges — the differential can
  // actually detect supervision.
  const DifferentialTrace tripped =
      RunDifferential(", health: { budget_steps = 1, quarantine = 1 }");
  EXPECT_NE(tripped.monitor.errors, baseline.monitor.errors);
}

// --- Property 5: 1000-seed bit-identical replay under chaos ---

constexpr char kReplaySpec[] = R"(
  guardrail storm {
    trigger: { TIMER(1s, 1s) },
    rule: { LOAD_OR(x, 0) <= 100 },
    action: { REPORT("storm") },
    health: { quarantine = 2, probe_every = 3, reinstate = 2, ewma_alpha = 0.25 }
  }
  chaos {
    site vm.budget_exhaust { mode = bernoulli, p = 0.3 },
    site supervisor.probe_fail { mode = bernoulli, p = 0.5 }
  }
)";

uint64_t SupervisorTraceFingerprint(uint64_t seed) {
  FeatureStore store;
  PolicyRegistry registry;
  RecordingTaskControl task_control;
  Engine engine(&store, &registry, &task_control);
  ChaosEngine chaos(seed);
  engine.SetChaos(&chaos);
  EXPECT_TRUE(engine.LoadSource(kReplaySpec).ok());
  uint64_t h = 0xcbf29ce484222325ull;
  for (int t = 1; t <= 60; ++t) {
    engine.AdvanceTo(Seconds(t));
    const GuardHealth* guard = engine.supervisor().Find("storm");
    if (guard == nullptr) {
      continue;
    }
    h = HashMix(h, static_cast<uint64_t>(guard->state));
    h = HashMix(h, guard->evals);
    h = HashMix(h, guard->budget_aborts);
    h = HashMix(h, guard->skipped);
    h = HashMix(h, guard->probes);
    h = HashMix(h, guard->probe_failures);
    h = HashMix(h, guard->quarantines);
    h = HashMix(h, guard->reinstatements);
    uint64_t ewma_bits = 0;
    std::memcpy(&ewma_bits, &guard->fail_ewma, sizeof(ewma_bits));
    h = HashMix(h, ewma_bits);
  }
  const SupervisorStats& stats = engine.supervisor().stats();
  h = HashMix(h, stats.quarantines);
  h = HashMix(h, stats.probes);
  h = HashMix(h, stats.probe_failures);
  h = HashMix(h, stats.reinstatements);
  h = HashMix(h, stats.skipped_evals);
  h = HashMix(h, stats.budget_aborts);
  h = HashMix(h, engine.reporter().total_reports());
  return h;
}

TEST(SupervisorReplayTest, ThousandSeedsReplayBitIdentically) {
  const uint64_t base = SeedBase();
  std::set<uint64_t> distinct;
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t seed = base + i;
    const uint64_t first = SupervisorTraceFingerprint(seed);
    const uint64_t second = SupervisorTraceFingerprint(seed);
    ASSERT_EQ(first, second) << "seed " << seed << " did not replay";
    distinct.insert(first);
  }
  // Different seeds exercise genuinely different breaker trajectories.
  EXPECT_GT(distinct.size(), 500u);
}

// --- Dispatcher latency satellite ---

TEST_F(SupervisorTest, DispatchLatencyGaugesArePublished) {
  Load(R"(
    guardrail latency {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { REPORT("fired") }
    }
  )");
  store_.Save("x", Value(50));
  engine_.AdvanceTo(Seconds(3));
  const ActionStats stats = engine_.dispatcher().stats();
  ASSERT_GE(stats.dispatches, 1u);
  EXPECT_GE(stats.latency_min_ns, 0);
  EXPECT_GE(stats.latency_max_ns, stats.latency_min_ns);
  EXPECT_GE(stats.latency_total_ns, stats.latency_max_ns);
  const int64_t mean =
      store_.LoadOr(kActionLatencyMeanKey, Value(-1)).AsInt().value();
  EXPECT_EQ(store_.LoadOr(kActionLatencyMinKey, Value(-1)).AsInt().value(),
            stats.latency_min_ns);
  EXPECT_EQ(store_.LoadOr(kActionLatencyMaxKey, Value(-1)).AsInt().value(),
            stats.latency_max_ns);
  EXPECT_GE(mean, stats.latency_min_ns);
  EXPECT_LE(mean, stats.latency_max_ns);
}

}  // namespace
}  // namespace osguard
