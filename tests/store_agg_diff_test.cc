// Differential test for the feature store's incremental window aggregates.
//
// The store answers Aggregate() queries from rolling prefix sums and
// monotonic extrema deques (O(log n) per query). This test replays the same
// randomized observe/query stream against a deliberately naive shadow model
// (a plain vector recomputing every aggregate by full scan) and demands the
// answers agree, including eviction behaviour at the max_age / max_samples
// edges and out-of-order timestamp clamping.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {
namespace {

// Mirrors the store's retention semantics with none of its incremental state.
struct ShadowSeries {
  struct Sample {
    SimTime time;
    double value;
  };

  std::vector<Sample> samples;
  SeriesOptions options;

  void Observe(SimTime t, double value) {
    if (!samples.empty() && t < samples.back().time) {
      t = samples.back().time;  // the store clamps out-of-order samples
    }
    samples.push_back({t, value});
    const SimTime cutoff = t - options.max_age;
    size_t drop = 0;
    while (drop < samples.size() && samples[drop].time < cutoff) {
      ++drop;
    }
    if (samples.size() - drop > options.max_samples) {
      drop = samples.size() - options.max_samples;
    }
    samples.erase(samples.begin(), samples.begin() + static_cast<ptrdiff_t>(drop));
  }

  // Retained samples with time in (now - window, now], by full scan.
  std::vector<double> Window(Duration window, SimTime now) const {
    std::vector<double> out;
    const SimTime cutoff = now - window;
    for (const Sample& s : samples) {
      if (s.time > cutoff && s.time <= now) {
        out.push_back(s.value);
      }
    }
    return out;
  }

  // Naive recompute; returns false when the store should answer kNotFound.
  bool Aggregate(AggKind kind, Duration window, SimTime now, double* out) const {
    const std::vector<double> w = Window(window, now);
    const bool empty_ok =
        kind == AggKind::kCount || kind == AggKind::kSum || kind == AggKind::kRate;
    if (w.empty()) {
      if (empty_ok) {
        *out = 0.0;
        return true;
      }
      return false;
    }
    const double count = static_cast<double>(w.size());
    double sum = 0.0;
    for (double v : w) {
      sum += v;
    }
    switch (kind) {
      case AggKind::kCount:
        *out = count;
        return true;
      case AggKind::kSum:
        *out = sum;
        return true;
      case AggKind::kMean:
        *out = sum / count;
        return true;
      case AggKind::kMin:
        *out = *std::min_element(w.begin(), w.end());
        return true;
      case AggKind::kMax:
        *out = *std::max_element(w.begin(), w.end());
        return true;
      case AggKind::kStdDev: {
        if (w.size() < 2) {
          *out = 0.0;
          return true;
        }
        const double mean = sum / count;
        double ss = 0.0;
        for (double v : w) {
          ss += (v - mean) * (v - mean);
        }
        *out = std::sqrt(ss / (count - 1.0));
        return true;
      }
      case AggKind::kRate:
        *out = window <= 0 ? 0.0 : count / ToSeconds(window);
        return true;
      case AggKind::kNewest:
        *out = w.back();
        return true;
      case AggKind::kOldest:
        *out = w.front();
        return true;
    }
    return false;
  }
};

constexpr AggKind kAllKinds[] = {
    AggKind::kCount, AggKind::kSum,  AggKind::kMean,   AggKind::kMin,   AggKind::kMax,
    AggKind::kStdDev, AggKind::kRate, AggKind::kNewest, AggKind::kOldest,
};

// Exact for order statistics and counts; tolerant for the prefix-difference
// kinds, where the incremental and naive formulas round differently.
void ExpectAggEq(AggKind kind, double expected, double actual, const std::string& context) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kNewest:
    case AggKind::kOldest:
      EXPECT_EQ(expected, actual) << context;
      break;
    default: {
      const double tol = 1e-6 * std::max(1.0, std::abs(expected));
      EXPECT_NEAR(expected, actual, tol) << context;
    }
  }
}

struct Config {
  const char* name;
  SeriesOptions options;
  Duration max_step;     // upper bound on random time advance per observe
  Duration max_window;   // upper bound on random query window
};

TEST(StoreAggDiffTest, RandomizedIncrementalMatchesNaive) {
  // Each config stresses a different eviction regime: age-bound churn,
  // sample-count churn, both at once, and a tiny window with frequent
  // empty-window queries.
  const Config configs[] = {
      {"age_bound", {.max_samples = 1u << 20, .max_age = Milliseconds(50)},
       Milliseconds(2), Milliseconds(80)},
      {"count_bound", {.max_samples = 7, .max_age = Seconds(300)},
       Milliseconds(1), Milliseconds(40)},
      {"both_bounds", {.max_samples = 16, .max_age = Milliseconds(20)},
       Milliseconds(3), Milliseconds(30)},
      {"sparse", {.max_samples = 64, .max_age = Milliseconds(10)},
       Milliseconds(6), Milliseconds(4)},
  };

  constexpr int kRoundsPerConfig = 2500;  // 4 configs x 2500 = 10k rounds
  std::mt19937 rng(0x05975ead);

  for (const Config& config : configs) {
    FeatureStore store;
    ShadowSeries shadow;
    shadow.options = config.options;
    store.SetSeriesOptions("lat", config.options);
    const KeyId id = store.FindKey("lat");
    ASSERT_NE(id, kInvalidKeyId);

    std::uniform_int_distribution<Duration> step(0, config.max_step);
    std::uniform_int_distribution<Duration> window(0, config.max_window);
    std::uniform_real_distribution<double> value(-1e3, 1e3);
    std::uniform_int_distribution<int> action(0, 99);
    std::uniform_int_distribution<int> kind_index(0, std::size(kAllKinds) - 1);

    SimTime now = 0;
    for (int round = 0; round < kRoundsPerConfig; ++round) {
      const int roll = action(rng);
      if (roll < 60) {
        now += step(rng);
        SimTime t = now;
        if (roll < 6) {
          t -= step(rng);  // out-of-order: the store clamps, so must the shadow
        }
        const double v = value(rng);
        store.Observe(id, t, v);
        shadow.Observe(t, v);
      } else {
        const AggKind kind = kAllKinds[kind_index(rng)];
        const Duration w = window(rng);
        // Mostly query at the current time (the engine's access pattern);
        // sometimes strictly in the past, which forces the store off its
        // suffix fast path for min/max.
        const SimTime query_now = roll < 90 ? now : now - step(rng);
        double expected = 0.0;
        const bool have = shadow.Aggregate(kind, w, query_now, &expected);
        const Result<double> got = store.Aggregate(id, kind, w, query_now);
        const std::string context = std::string(config.name) + " round=" +
                                    std::to_string(round) + " kind=" +
                                    std::string(AggKindName(kind)) +
                                    " window=" + std::to_string(w) +
                                    " now=" + std::to_string(query_now);
        if (have) {
          ASSERT_TRUE(got.ok()) << context << " store said: " << got.status().ToString();
          ExpectAggEq(kind, expected, got.value(), context);
        } else {
          EXPECT_FALSE(got.ok()) << context << " store returned " << got.value()
                                 << " but the naive window is empty";
        }
      }
    }

    // Cross-check the retained sample vectors once per config as well: the
    // window copy is the substrate for quantiles and distribution tests.
    const std::vector<double> got = store.WindowSamples(id, config.max_window, now);
    std::vector<double> expected;
    for (double v : shadow.Window(config.max_window, now)) {
      expected.push_back(v);
    }
    EXPECT_EQ(expected, got) << config.name;
  }
}

TEST(StoreAggDiffTest, MaxSamplesOneKeepsNewest) {
  FeatureStore store;
  store.SetSeriesOptions("k", {.max_samples = 1, .max_age = Seconds(300)});
  for (int i = 0; i < 100; ++i) {
    store.Observe("k", Milliseconds(i), static_cast<double>(i));
    const Result<double> newest =
        store.Aggregate("k", AggKind::kNewest, Seconds(1), Milliseconds(i));
    const Result<double> count =
        store.Aggregate("k", AggKind::kCount, Seconds(1), Milliseconds(i));
    const Result<double> min =
        store.Aggregate("k", AggKind::kMin, Seconds(1), Milliseconds(i));
    ASSERT_TRUE(newest.ok());
    ASSERT_TRUE(count.ok());
    ASSERT_TRUE(min.ok());
    EXPECT_EQ(static_cast<double>(i), newest.value());
    EXPECT_EQ(1.0, count.value());
    EXPECT_EQ(static_cast<double>(i), min.value());
  }
}

TEST(StoreAggDiffTest, AgeEvictionDropsWholeWindow) {
  FeatureStore store;
  store.SetSeriesOptions("k", {.max_samples = 1024, .max_age = Milliseconds(10)});
  for (int i = 0; i < 10; ++i) {
    store.Observe("k", Milliseconds(i), 1.0);
  }
  // A write far in the future evicts everything older than now - max_age;
  // the old samples must vanish from aggregates and extrema alike.
  store.Observe("k", Seconds(5), 42.0);
  const SimTime now = Seconds(5);
  const Result<double> count = store.Aggregate("k", AggKind::kCount, Seconds(10), now);
  const Result<double> max = store.Aggregate("k", AggKind::kMax, Seconds(10), now);
  const Result<double> sum = store.Aggregate("k", AggKind::kSum, Seconds(10), now);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(max.ok());
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(1.0, count.value());
  EXPECT_EQ(42.0, max.value());
  EXPECT_EQ(42.0, sum.value());
}

}  // namespace
}  // namespace osguard
