// Lexer tests: token classification, literals, comments, and diagnostics.

#include <gtest/gtest.h>

#include "src/dsl/lexer.h"
#include "src/support/time.h"

namespace osguard {
namespace {

std::vector<Token> Lex(const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

Status LexError(const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.Tokenize();
  EXPECT_FALSE(tokens.ok()) << "expected lex failure for: " << source;
  return tokens.ok() ? OkStatus() : tokens.status();
}

std::vector<TokenKind> Kinds(const std::string& source) {
  std::vector<TokenKind> kinds;
  for (const Token& token : Lex(source)) {
    kinds.push_back(token.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(Kinds("guardrail trigger rule action on_satisfy meta true false"),
            (std::vector<TokenKind>{TokenKind::kGuardrail, TokenKind::kTrigger,
                                    TokenKind::kRule, TokenKind::kAction,
                                    TokenKind::kOnSatisfy, TokenKind::kMeta, TokenKind::kTrue,
                                    TokenKind::kFalse, TokenKind::kEof}));
}

TEST(LexerTest, IdentifiersIncludeUnderscoresAndDigits) {
  const auto tokens = Lex("false_submit_rate x1 _private");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "false_submit_rate");
  EXPECT_EQ(tokens[1].text, "x1");
  EXPECT_EQ(tokens[2].text, "_private");
}

TEST(LexerTest, KeywordPrefixedIdentifierIsIdent) {
  const auto tokens = Lex("ruler guardrails truex");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kIdent) << tokens[i].text;
  }
}

TEST(LexerTest, IntegerLiterals) {
  const auto tokens = Lex("0 42 1000000");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 1000000);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIntLiteral);
}

TEST(LexerTest, FloatLiterals) {
  const auto tokens = Lex("0.05 3.14 2.5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 0.05);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.14);
}

TEST(LexerTest, ScientificNotation) {
  const auto tokens = Lex("1e9 2.5e3 1E-2 3e+4");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1e9);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 2500.0);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.01);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 30000.0);
}

TEST(LexerTest, DurationLiterals) {
  const auto tokens = Lex("10ns 5us 250ms 1s 2m");
  EXPECT_EQ(tokens[0].kind, TokenKind::kDurationLiteral);
  EXPECT_EQ(tokens[0].int_value, 10);
  EXPECT_EQ(tokens[1].int_value, 5000);
  EXPECT_EQ(tokens[2].int_value, 250000000);
  EXPECT_EQ(tokens[3].int_value, 1000000000);
  EXPECT_EQ(tokens[4].int_value, 120000000000);
}

TEST(LexerTest, FractionalDurations) {
  const auto tokens = Lex("1.5s 0.5ms");
  EXPECT_EQ(tokens[0].int_value, 1500000000);
  EXPECT_EQ(tokens[1].int_value, 500000);
}

TEST(LexerTest, DurationSuffixMustTerminate) {
  // `5str` is not a duration followed by `tr`; it's 5 then identifier str.
  const auto tokens = Lex("5str");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "str");
}

TEST(LexerTest, MsNotConfusedWithM) {
  const auto tokens = Lex("5ms 5m");
  EXPECT_EQ(tokens[0].int_value, 5 * kMillisecond);
  EXPECT_EQ(tokens[1].int_value, 5 * kMinute);
}

TEST(LexerTest, StringLiterals) {
  const auto tokens = Lex(R"("hello" "with \"escape\"" "line\nbreak")");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "with \"escape\"");
  EXPECT_EQ(tokens[2].text, "line\nbreak");
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Kinds("+ - * / % < <= > >= == != && || ! ="),
            (std::vector<TokenKind>{
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar, TokenKind::kSlash,
                TokenKind::kPercent, TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                TokenKind::kGe, TokenKind::kEq, TokenKind::kNe, TokenKind::kAndAnd,
                TokenKind::kOrOr, TokenKind::kBang, TokenKind::kAssign, TokenKind::kEof}));
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(Kinds("{ } ( ) , : ;"),
            (std::vector<TokenKind>{TokenKind::kLBrace, TokenKind::kRBrace,
                                    TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                                    TokenKind::kColon, TokenKind::kSemicolon,
                                    TokenKind::kEof}));
}

TEST(LexerTest, LineComments) {
  const auto tokens = Lex("1 // this is ignored\n2");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].int_value, 1);
  EXPECT_EQ(tokens[1].int_value, 2);
}

TEST(LexerTest, BlockComments) {
  const auto tokens = Lex("1 /* span\nmultiple\nlines */ 2");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].int_value, 2);
}

TEST(LexerTest, LineAndColumnTracking) {
  const auto tokens = Lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, UnterminatedStringFails) {
  const Status status = LexError("\"never closed");
  EXPECT_EQ(status.code(), ErrorCode::kParseError);
  EXPECT_NE(status.message().find("unterminated"), std::string::npos);
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_EQ(LexError("1 /* open").code(), ErrorCode::kParseError);
}

TEST(LexerTest, StrayAmpersandFails) {
  const Status status = LexError("a & b");
  EXPECT_NE(status.message().find("&&"), std::string::npos);
}

TEST(LexerTest, StrayPipeFails) { EXPECT_FALSE(Lexer("a | b").Tokenize().ok()); }

TEST(LexerTest, UnknownCharacterFails) {
  const Status status = LexError("a # b");
  EXPECT_NE(status.message().find("#"), std::string::npos);
}

TEST(LexerTest, UnknownEscapeFails) { EXPECT_FALSE(Lexer(R"("\q")").Tokenize().ok()); }

TEST(LexerTest, ErrorsIncludePosition) {
  const Status status = LexError("ok\nok #");
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(LexerTest, Listing2Tokenizes) {
  const auto kinds = Kinds(R"(
    guardrail low-false-submit {
      trigger: { TIMER(start_time, 1e9) },
      rule: { LOAD(false_submit_rate) <= 0.05 },
      action: { SAVE(ml_enabled, false) }
    }
  )");
  EXPECT_GT(kinds.size(), 25u);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
}

}  // namespace
}  // namespace osguard
