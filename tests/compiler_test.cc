// Compiler tests: expression compilation semantics end to end (parse ->
// compile -> verify -> execute against a real feature store).

#include <gtest/gtest.h>

#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/helper_env.h"
#include "src/store/feature_store.h"
#include "src/vm/compiler.h"
#include "src/vm/verifier.h"
#include "src/vm/vm.h"

namespace osguard {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  // Compiles and runs a standalone expression; fails the test on any error.
  Value Eval(const std::string& source, SimTime now = 0) {
    auto expr = ParseExprSource(source);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString() << " for: " << source;
    if (!expr.ok()) {
      return Value();
    }
    auto program = CompileExpr(*expr.value(), "test");
    EXPECT_TRUE(program.ok()) << program.status().ToString() << " for: " << source;
    if (!program.ok()) {
      return Value();
    }
    MonitorHelperEnv env(&store_, nullptr);
    env.SetEnvelope(ActionEnvelope{"test", Severity::kInfo, now});
    auto result = vm_.Execute(program.value(), env);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for: " << source;
    return result.ok() ? result.value() : Value();
  }

  double EvalNum(const std::string& source, SimTime now = 0) {
    return Eval(source, now).NumericOr(-999999.0);
  }

  bool EvalBool(const std::string& source, SimTime now = 0) {
    auto result = Eval(source, now).AsBool();
    EXPECT_TRUE(result.ok()) << "not a bool for: " << source;
    return result.ok() && result.value();
  }

  FeatureStore store_;
  Vm vm_;
};

TEST_F(CompilerTest, IntegerArithmetic) {
  EXPECT_EQ(EvalNum("1 + 2 * 3"), 7.0);
  EXPECT_EQ(EvalNum("(1 + 2) * 3"), 9.0);
  EXPECT_EQ(EvalNum("10 - 4 - 3"), 3.0);  // left associative
  EXPECT_EQ(EvalNum("7 % 3"), 1.0);
  EXPECT_EQ(EvalNum("-5 + 2"), -3.0);
}

TEST_F(CompilerTest, IntegerArithmeticStaysIntegral) {
  const Value v = Eval("2 + 3");
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt().value(), 5);
}

TEST_F(CompilerTest, DivisionIsAlwaysFloat) {
  EXPECT_DOUBLE_EQ(EvalNum("7 / 2"), 3.5);
  const Value v = Eval("6 / 3");
  EXPECT_EQ(v.type(), ValueType::kFloat);
}

TEST_F(CompilerTest, FloatArithmetic) {
  EXPECT_DOUBLE_EQ(EvalNum("0.1 + 0.2"), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(EvalNum("2.5 * 4"), 10.0);
}

TEST_F(CompilerTest, DurationLiteralsAreNanoseconds) {
  EXPECT_EQ(EvalNum("1s"), 1e9);
  EXPECT_EQ(EvalNum("250ms"), 250e6);
  EXPECT_EQ(EvalNum("100us"), 100e3);
  EXPECT_EQ(EvalNum("10ns"), 10.0);
  EXPECT_EQ(EvalNum("1m"), 60e9);
  EXPECT_EQ(EvalNum("2s + 500ms"), 2.5e9);
}

TEST_F(CompilerTest, Comparisons) {
  EXPECT_TRUE(EvalBool("1 < 2"));
  EXPECT_FALSE(EvalBool("2 < 1"));
  EXPECT_TRUE(EvalBool("2 <= 2"));
  EXPECT_TRUE(EvalBool("3 > 2"));
  EXPECT_TRUE(EvalBool("3 >= 3"));
  EXPECT_TRUE(EvalBool("1 == 1"));
  EXPECT_TRUE(EvalBool("1 != 2"));
  EXPECT_TRUE(EvalBool("1 == 1.0"));  // cross-type numeric equality
}

TEST_F(CompilerTest, LogicalOperators) {
  EXPECT_TRUE(EvalBool("true && true"));
  EXPECT_FALSE(EvalBool("true && false"));
  EXPECT_TRUE(EvalBool("false || true"));
  EXPECT_FALSE(EvalBool("false || false"));
  EXPECT_TRUE(EvalBool("!false"));
  EXPECT_FALSE(EvalBool("!true"));
  EXPECT_TRUE(EvalBool("1 < 2 && 3 < 4 || false"));
}

TEST_F(CompilerTest, ShortCircuitAndSkipsRhs) {
  // RHS would fault (LOG of missing key -> nil -> LOG(nil) faults), but the
  // false LHS must short-circuit it.
  store_.Save("zero", Value(0));
  EXPECT_FALSE(EvalBool("zero == 1 && LOG(zero) > 0"));
}

TEST_F(CompilerTest, ShortCircuitOrSkipsRhs) {
  store_.Save("zero", Value(0));
  EXPECT_TRUE(EvalBool("zero == 0 || LOG(zero) > 0"));
}

TEST_F(CompilerTest, BareIdentifierIsImplicitLoad) {
  store_.Save("latency", Value(15.0));
  EXPECT_TRUE(EvalBool("latency <= 20"));
  EXPECT_FALSE(EvalBool("latency <= 10"));
}

TEST_F(CompilerTest, LoadOfMissingKeyIsNil) {
  EXPECT_TRUE(Eval("LOAD(missing_key)").is_nil());
}

TEST_F(CompilerTest, LoadOrSuppliesDefault) {
  EXPECT_EQ(EvalNum("LOAD_OR(missing_key, 42)"), 42.0);
  store_.Save("present", Value(7));
  EXPECT_EQ(EvalNum("LOAD_OR(present, 42)"), 7.0);
}

TEST_F(CompilerTest, ExistsHelper) {
  EXPECT_FALSE(EvalBool("EXISTS(nothing)"));
  store_.Save("something", Value(1));
  EXPECT_TRUE(EvalBool("EXISTS(something)"));
}

TEST_F(CompilerTest, StringKeysWorkLikeIdentifiers) {
  store_.Save("a.b.c", Value(5));
  EXPECT_EQ(EvalNum("LOAD(\"a.b.c\")"), 5.0);
}

TEST_F(CompilerTest, MathHelpers) {
  EXPECT_DOUBLE_EQ(EvalNum("ABS(0 - 3)"), 3.0);
  EXPECT_DOUBLE_EQ(EvalNum("SQRT(16)"), 4.0);
  EXPECT_DOUBLE_EQ(EvalNum("FLOOR(3.7)"), 3.0);
  EXPECT_DOUBLE_EQ(EvalNum("CEIL(3.2)"), 4.0);
  EXPECT_DOUBLE_EQ(EvalNum("POW(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(EvalNum("MIN2(3, 7)"), 3.0);
  EXPECT_DOUBLE_EQ(EvalNum("MAX2(3, 7)"), 7.0);
  EXPECT_DOUBLE_EQ(EvalNum("CLAMP(15, 0, 10)"), 10.0);
  EXPECT_DOUBLE_EQ(EvalNum("CLAMP(0 - 5, 0, 10)"), 0.0);
  EXPECT_NEAR(EvalNum("EXP(LOG(5))"), 5.0, 1e-9);
}

TEST_F(CompilerTest, NowHelper) {
  EXPECT_EQ(EvalNum("NOW()", Seconds(3)), 3e9);
  EXPECT_TRUE(EvalBool("NOW() >= 2s", Seconds(3)));
}

TEST_F(CompilerTest, AggregatesOverSeries) {
  for (int i = 1; i <= 5; ++i) {
    store_.Observe("lat", Seconds(i), static_cast<double>(i) * 10.0);
  }
  const SimTime now = Seconds(5);
  EXPECT_EQ(EvalNum("COUNT(lat, 10s)", now), 5.0);
  EXPECT_EQ(EvalNum("SUM(lat, 10s)", now), 150.0);
  EXPECT_EQ(EvalNum("MEAN(lat, 10s)", now), 30.0);
  EXPECT_EQ(EvalNum("MIN(lat, 10s)", now), 10.0);
  EXPECT_EQ(EvalNum("MAX(lat, 10s)", now), 50.0);
  EXPECT_EQ(EvalNum("NEWEST(lat, 10s)", now), 50.0);
  EXPECT_EQ(EvalNum("OLDEST(lat, 10s)", now), 10.0);
  EXPECT_EQ(EvalNum("RATE(lat, 5s)", now), 1.0);  // 5 samples / 5 seconds
}

TEST_F(CompilerTest, AggregateWindowClipsOldSamples) {
  store_.Observe("lat", Seconds(1), 100.0);
  store_.Observe("lat", Seconds(9), 10.0);
  // Window of 2s at t=10 only sees the second sample.
  EXPECT_EQ(EvalNum("MEAN(lat, 2s)", Seconds(10)), 10.0);
}

TEST_F(CompilerTest, EmptyAggregateCountIsZeroButMeanIsNil) {
  EXPECT_EQ(EvalNum("COUNT(never_observed, 10s)"), 0.0);
  EXPECT_TRUE(Eval("MEAN(never_observed, 10s)").is_nil());
}

TEST_F(CompilerTest, QuantileSugar) {
  for (int i = 1; i <= 100; ++i) {
    store_.Observe("lat", Seconds(1), static_cast<double>(i));
  }
  const SimTime now = Seconds(1);
  EXPECT_NEAR(EvalNum("P50(lat, 10s)", now), 50.5, 1.0);
  EXPECT_NEAR(EvalNum("P99(lat, 10s)", now), 99.0, 1.5);
  EXPECT_NEAR(EvalNum("QUANTILE(lat, 0.9, 10s)", now), 90.1, 1.5);
}

TEST_F(CompilerTest, GuardedAggregatePattern) {
  // The documented cold-start idiom must work.
  EXPECT_TRUE(EvalBool("COUNT(pf_lat, 10s) == 0 || MEAN(pf_lat, 10s) <= 2"));
  store_.Observe("pf_lat", 0, 5.0);
  EXPECT_FALSE(EvalBool("COUNT(pf_lat, 10s) == 0 || MEAN(pf_lat, 10s) <= 2"));
}

TEST_F(CompilerTest, CompileSourceFullPipeline) {
  auto compiled = CompileSource(R"(
    guardrail demo {
      trigger: { TIMER(0, 1s) },
      rule: { LOAD_OR(x, 0) <= 10 },
      action: { SAVE(tripped, true) }
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled.value().size(), 1u);
  const CompiledGuardrail& guardrail = compiled.value()[0];
  EXPECT_EQ(guardrail.name, "demo");
  ASSERT_EQ(guardrail.triggers.size(), 1u);
  EXPECT_EQ(guardrail.triggers[0].interval, kSecond);
  EXPECT_TRUE(Verify(guardrail.rule).ok());
  EXPECT_TRUE(Verify(guardrail.action, {.allow_actions = true}).ok());
  EXPECT_TRUE(guardrail.on_satisfy.empty());
}

TEST_F(CompilerTest, CompiledListing2MatchesPaperSemantics) {
  auto compiled = CompileSource(R"(
    guardrail low-false-submit {
      trigger: {
        TIMER(0, 1e9)  // periodically check every 1s
      },
      rule: {
        LOAD(false_submit_rate) <= 0.05
      },
      action: {
        SAVE(ml_enabled, false)
      }
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const CompiledGuardrail& guardrail = compiled.value()[0];
  EXPECT_EQ(guardrail.name, "low-false-submit");
  EXPECT_EQ(guardrail.triggers[0].interval, 1000000000);

  // Run the rule program directly: below threshold -> holds; above -> violated.
  MonitorHelperEnv env(&store_, nullptr);
  env.SetEnvelope(ActionEnvelope{"t", Severity::kInfo, 0});
  store_.Save("false_submit_rate", Value(0.01));
  EXPECT_TRUE(TruthyValue(vm_.Execute(guardrail.rule, env).value()));
  store_.Save("false_submit_rate", Value(0.20));
  EXPECT_FALSE(TruthyValue(vm_.Execute(guardrail.rule, env).value()));
}

TEST_F(CompilerTest, MultipleRulesFormConjunction) {
  auto compiled = CompileSource(R"(
    guardrail multi {
      trigger: { TIMER(0, 1s) },
      rule: { LOAD_OR(a, 0) <= 10, LOAD_OR(b, 0) <= 20 },
      action: { REPORT() }
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  MonitorHelperEnv env(&store_, nullptr);
  env.SetEnvelope(ActionEnvelope{"t", Severity::kInfo, 0});
  const Program& rule = compiled.value()[0].rule;

  store_.Save("a", Value(5));
  store_.Save("b", Value(5));
  EXPECT_TRUE(TruthyValue(vm_.Execute(rule, env).value()));
  store_.Save("b", Value(50));
  EXPECT_FALSE(TruthyValue(vm_.Execute(rule, env).value()));
  store_.Save("a", Value(50));
  store_.Save("b", Value(5));
  EXPECT_FALSE(TruthyValue(vm_.Execute(rule, env).value()));
}

TEST_F(CompilerTest, RegisterReuseKeepsProgramsSmall) {
  // Deep arithmetic chains must not exhaust the register file thanks to
  // stack-discipline allocation.
  std::string source = "1";
  for (int i = 0; i < 100; ++i) {
    source += " + 1";
  }
  EXPECT_EQ(EvalNum(source), 101.0);
}

TEST_F(CompilerTest, DeeplyNestedExpressionsStayWithinRegisters) {
  // Right-leaning nesting grows the live-register set; 40 levels fits.
  std::string source;
  for (int i = 0; i < 40; ++i) {
    source += "(1 + ";
  }
  source += "1";
  for (int i = 0; i < 40; ++i) {
    source += ")";
  }
  EXPECT_EQ(EvalNum(source), 41.0);
}

TEST_F(CompilerTest, TooDeepNestingFailsCleanly) {
  std::string source;
  for (int i = 0; i < 80; ++i) {
    source += "(1 + ";
  }
  source += "1";
  for (int i = 0; i < 80; ++i) {
    source += ")";
  }
  auto expr = ParseExprSource(source);
  ASSERT_TRUE(expr.ok());
  auto program = CompileExpr(*expr.value(), "deep");
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), ErrorCode::kVerifierError);
}

TEST_F(CompilerTest, ConstantsAreDeduplicated) {
  auto expr = ParseExprSource("1 + 1 + 1 + 1");
  ASSERT_TRUE(expr.ok());
  auto program = CompileExpr(*expr.value(), "dedup");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().consts.size(), 1u);
}

TEST_F(CompilerTest, SaveThenLoadRoundTripsThroughStore) {
  auto compiled = CompileSource(R"(
    guardrail save-load {
      trigger: { TIMER(0, 1s) },
      rule: { true },
      action: { SAVE(counter, 41); INCR(counter); }
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  MonitorHelperEnv env(&store_, nullptr);
  env.SetEnvelope(ActionEnvelope{"t", Severity::kInfo, 0});
  ASSERT_TRUE(vm_.Execute(compiled.value()[0].action, env).ok());
  EXPECT_EQ(store_.Load("counter").value().NumericOr(0), 42.0);
}

TEST_F(CompilerTest, ObserveFromActionFeedsSeries) {
  auto compiled = CompileSource(R"(
    guardrail observer {
      trigger: { TIMER(0, 1s) },
      rule: { true },
      action: { OBSERVE(metric, 3.5) }
    }
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  MonitorHelperEnv env(&store_, nullptr);
  env.SetEnvelope(ActionEnvelope{"t", Severity::kInfo, Seconds(2)});
  ASSERT_TRUE(vm_.Execute(compiled.value()[0].action, env).ok());
  EXPECT_EQ(store_.Aggregate("metric", AggKind::kCount, Seconds(10), Seconds(2)).value(), 1.0);
}

TEST_F(CompilerTest, DisassemblyIsReadable) {
  auto expr = ParseExprSource("LOAD_OR(x, 0) <= 10");
  ASSERT_TRUE(expr.ok());
  auto program = CompileExpr(*expr.value(), "disasm");
  ASSERT_TRUE(program.ok());
  const std::string listing = program.value().Disassemble();
  EXPECT_NE(listing.find("LOAD_OR"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
  EXPECT_NE(listing.find("cle"), std::string::npos);
}

// Property-style sweep: for constant expressions, the compiled program must
// agree with the AST constant evaluator.
class ConstFoldEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConstFoldEquivalenceTest, CompiledMatchesEvalConst) {
  const std::string source = GetParam();
  auto expr = ParseExprSource(source);
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto reference = EvalConst(*expr.value());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  auto program = CompileExpr(*expr.value(), "equiv");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FeatureStore store;
  MonitorHelperEnv env(&store, nullptr);
  env.SetEnvelope(ActionEnvelope{"t", Severity::kInfo, 0});
  Vm vm;
  auto executed = vm.Execute(program.value(), env);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_NEAR(executed.value().NumericOr(-1), reference.value().NumericOr(-2), 1e-9)
      << source;
}

INSTANTIATE_TEST_SUITE_P(
    ConstExpressions, ConstFoldEquivalenceTest,
    ::testing::Values(
        "1 + 2 * 3 - 4", "2 * (3 + 4) * 5", "10 / 4", "17 % 5", "-3 * -4",
        "1 < 2", "2 <= 2", "3 > 4", "5 >= 5", "1 == 2", "1 != 2",
        "true && false", "true || false", "!true", "!(1 > 2)",
        "1s + 500ms", "2 * 250ms", "1e9 / 2", "0.5 * 4 + 1",
        "(1 < 2) && (3 < 4)", "1 + 2 == 3", "100 - 50 - 25 - 12",
        "3.5 * 2 == 7", "2.0 / 0.5", "-(4 - 9)"));

}  // namespace
}  // namespace osguard
