// Action-library tests: policy registry, reporter, retrain queue, task
// control, and the dispatcher's crash-free semantics.

#include <gtest/gtest.h>

#include "src/actions/dispatcher.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

class TestPolicy : public Policy {
 public:
  TestPolicy(std::string name, bool learned) : name_(std::move(name)), learned_(learned) {}
  std::string name() const override { return name_; }
  bool is_learned() const override { return learned_; }

 private:
  std::string name_;
  bool learned_;
};

// --- PolicyRegistry ---

TEST(PolicyRegistryTest, RegisterAndGet) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("p1", true)).ok());
  EXPECT_EQ(registry.Get("p1").value()->name(), "p1");
  EXPECT_EQ(registry.policy_count(), 1u);
  EXPECT_EQ(registry.Get("nope").status().code(), ErrorCode::kNotFound);
}

TEST(PolicyRegistryTest, DuplicateRegistrationRejected) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("p", false)).ok());
  EXPECT_EQ(registry.Register(std::make_shared<TestPolicy>("p", true)).code(),
            ErrorCode::kAlreadyExists);
}

TEST(PolicyRegistryTest, NullAndUnnamedRejected) {
  PolicyRegistry registry;
  EXPECT_FALSE(registry.Register(nullptr).ok());
  EXPECT_FALSE(registry.Register(std::make_shared<TestPolicy>("", false)).ok());
}

TEST(PolicyRegistryTest, SlotBindingAndActive) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("p", true)).ok());
  EXPECT_FALSE(registry.BindSlot("slot", "missing").ok());
  ASSERT_TRUE(registry.BindSlot("slot", "p").ok());
  EXPECT_EQ(registry.Active("slot").value()->name(), "p");
  EXPECT_FALSE(registry.Active("other").ok());
  EXPECT_EQ(registry.SlotNames(), (std::vector<std::string>{"slot"}));
}

TEST(PolicyRegistryTest, ActiveAsChecksType) {
  class Derived : public TestPolicy {
   public:
    Derived() : TestPolicy("derived", true) {}
  };
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<Derived>()).ok());
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("base", false)).ok());
  ASSERT_TRUE(registry.BindSlot("s1", "derived").ok());
  ASSERT_TRUE(registry.BindSlot("s2", "base").ok());
  EXPECT_TRUE(registry.ActiveAs<Derived>("s1").ok());
  EXPECT_EQ(registry.ActiveAs<Derived>("s2").status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(PolicyRegistryTest, ReplaceRebindsMatchingSlots) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("learned", true)).ok());
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("safe", false)).ok());
  ASSERT_TRUE(registry.BindSlot("a", "learned").ok());
  ASSERT_TRUE(registry.BindSlot("b", "learned").ok());
  ASSERT_TRUE(registry.BindSlot("c", "safe").ok());

  auto rebound = registry.Replace("learned", "safe", Seconds(1));
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound.value(), 2);
  EXPECT_EQ(registry.Active("a").value()->name(), "safe");
  EXPECT_EQ(registry.Active("b").value()->name(), "safe");
  EXPECT_EQ(registry.replace_history().size(), 2u);
}

TEST(PolicyRegistryTest, ReplaceIsIdempotent) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("learned", true)).ok());
  ASSERT_TRUE(registry.Register(std::make_shared<TestPolicy>("safe", false)).ok());
  ASSERT_TRUE(registry.BindSlot("a", "learned").ok());
  EXPECT_EQ(registry.Replace("learned", "safe", 0).value(), 1);
  EXPECT_EQ(registry.Replace("learned", "safe", 0).value(), 0);  // no-op, no error
}

TEST(PolicyRegistryTest, ReplaceToUnknownPolicyFails) {
  PolicyRegistry registry;
  EXPECT_EQ(registry.Replace("a", "ghost", 0).status().code(), ErrorCode::kNotFound);
}

// --- Reporter ---

TEST(ReporterTest, RecordsAndCounts) {
  Logger::Global().set_level(LogLevel::kOff);
  Reporter reporter;
  reporter.Report(ReportRecord{0, Seconds(1), ReportKind::kViolation, Severity::kWarning,
                               "g1", "m", {}});
  reporter.Report(ReportRecord{0, Seconds(2), ReportKind::kActionPayload, Severity::kInfo,
                               "g2", "m", {Value(1)}});
  EXPECT_EQ(reporter.total_reports(), 2u);
  EXPECT_EQ(reporter.CountFor("g1"), 1u);
  EXPECT_EQ(reporter.CountFor("g3"), 0u);
  EXPECT_EQ(reporter.CountOfKind(ReportKind::kViolation), 1u);
  ASSERT_EQ(reporter.Records().size(), 2u);
  EXPECT_EQ(reporter.Records()[0].sequence, 0u);
  EXPECT_EQ(reporter.Records()[1].sequence, 1u);
  EXPECT_EQ(reporter.RecordsFor("g2").size(), 1u);
}

TEST(ReporterTest, CapacityBoundsRing) {
  Logger::Global().set_level(LogLevel::kOff);
  Reporter reporter(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    reporter.Report(ReportRecord{0, i, ReportKind::kViolation, Severity::kInfo, "g", "", {}});
  }
  EXPECT_EQ(reporter.Records().size(), 3u);
  EXPECT_EQ(reporter.Records()[0].sequence, 7u);  // oldest retained
  EXPECT_EQ(reporter.total_reports(), 10u);       // counters keep the full total
}

TEST(ReporterTest, ToStringIncludesContext) {
  ReportRecord record{7, Seconds(2), ReportKind::kViolation, Severity::kCritical,
                      "my-guard", "bad news", {Value(0.2)}};
  const std::string text = record.ToString();
  EXPECT_NE(text.find("my-guard"), std::string::npos);
  EXPECT_NE(text.find("bad news"), std::string::npos);
  EXPECT_NE(text.find("critical"), std::string::npos);
  EXPECT_NE(text.find("0.2"), std::string::npos);
}

TEST(ReporterTest, ClearResets) {
  Logger::Global().set_level(LogLevel::kOff);
  Reporter reporter;
  reporter.Report(ReportRecord{});
  reporter.Clear();
  EXPECT_EQ(reporter.total_reports(), 0u);
  EXPECT_TRUE(reporter.Records().empty());
}

// --- RetrainQueue ---

TEST(RetrainQueueTest, AcceptsAndDrains) {
  RetrainQueue queue;
  EXPECT_TRUE(queue.Request("m1", "window", Seconds(1)));
  EXPECT_EQ(queue.depth(), 1u);
  auto request = queue.Pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->model, "m1");
  EXPECT_EQ(request->data_key, "window");
  EXPECT_EQ(request->requested_at, Seconds(1));
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(RetrainQueueTest, ThrottlesByMinInterval) {
  RetrainQueue queue(RetrainQueueOptions{.min_interval = Seconds(60), .max_depth = 10});
  EXPECT_TRUE(queue.Request("m", "", Seconds(0)));
  queue.Pop();
  // Abuse protection (§3.2 A3): rapid re-requests are rejected.
  EXPECT_FALSE(queue.Request("m", "", Seconds(1)));
  EXPECT_FALSE(queue.Request("m", "", Seconds(59)));
  EXPECT_TRUE(queue.Request("m", "", Seconds(61)));
  EXPECT_EQ(queue.stats().throttled, 2u);
  EXPECT_EQ(queue.stats().accepted, 2u);
}

TEST(RetrainQueueTest, ThrottleIsPerModel) {
  RetrainQueue queue(RetrainQueueOptions{.min_interval = Seconds(60), .max_depth = 10});
  EXPECT_TRUE(queue.Request("m1", "", 0));
  EXPECT_TRUE(queue.Request("m2", "", 0));
}

TEST(RetrainQueueTest, CoalescesQueuedDuplicates) {
  RetrainQueue queue(RetrainQueueOptions{.min_interval = 0, .max_depth = 10});
  EXPECT_TRUE(queue.Request("m", "", 0));
  EXPECT_FALSE(queue.Request("m", "", Seconds(100)));  // still queued
  EXPECT_EQ(queue.stats().coalesced, 1u);
  queue.Pop();
  EXPECT_TRUE(queue.Request("m", "", Seconds(200)));
}

TEST(RetrainQueueTest, OverflowRejected) {
  RetrainQueue queue(RetrainQueueOptions{.min_interval = 0, .max_depth = 2});
  EXPECT_TRUE(queue.Request("a", "", 0));
  EXPECT_TRUE(queue.Request("b", "", 0));
  EXPECT_FALSE(queue.Request("c", "", 0));
  EXPECT_EQ(queue.stats().overflowed, 1u);
}

TEST(RetrainQueueTest, DrainStatsTracked) {
  RetrainQueue queue(RetrainQueueOptions{.min_interval = 0, .max_depth = 10});
  queue.Request("a", "", 0);
  queue.Request("b", "", 0);
  queue.Pop();
  queue.Pop();
  EXPECT_EQ(queue.stats().drained, 2u);
}

// --- Dispatcher ---

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() : dispatcher_(&reporter_, &registry_, &retrain_, &task_control_) {
    Logger::Global().set_level(LogLevel::kOff);
  }

  Result<Value> Dispatch(HelperId id, std::vector<Value> args) {
    return dispatcher_.Dispatch(id, args,
                                ActionEnvelope{"test-guard", Severity::kWarning, Seconds(5)});
  }

  Reporter reporter_;
  PolicyRegistry registry_;
  RetrainQueue retrain_;
  RecordingTaskControl task_control_;
  ActionDispatcher dispatcher_;
};

TEST_F(DispatcherTest, ReportStoresPayloadAndEnvelope) {
  ASSERT_TRUE(Dispatch(HelperId::kReport, {Value("drift detected"), Value(0.3)}).ok());
  const auto records = reporter_.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].guardrail, "test-guard");
  EXPECT_EQ(records[0].time, Seconds(5));
  EXPECT_EQ(records[0].message, "drift detected");
  EXPECT_EQ(records[0].payload.size(), 2u);
  EXPECT_EQ(dispatcher_.stats().reports, 1u);
}

TEST_F(DispatcherTest, ReportWithNoArgsStillRecords) {
  ASSERT_TRUE(Dispatch(HelperId::kReport, {}).ok());
  EXPECT_EQ(reporter_.total_reports(), 1u);
}

TEST_F(DispatcherTest, ReplaceGoesThroughRegistry) {
  ASSERT_TRUE(registry_.Register(std::make_shared<TestPolicy>("old", true)).ok());
  ASSERT_TRUE(registry_.Register(std::make_shared<TestPolicy>("new", false)).ok());
  ASSERT_TRUE(registry_.BindSlot("slot", "old").ok());
  auto result = Dispatch(HelperId::kReplace, {Value("old"), Value("new")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().AsInt().value(), 1);
  EXPECT_EQ(dispatcher_.stats().replaces, 1u);
  // Re-fire: idempotent no-op.
  ASSERT_TRUE(Dispatch(HelperId::kReplace, {Value("old"), Value("new")}).ok());
  EXPECT_EQ(dispatcher_.stats().replace_noops, 1u);
}

TEST_F(DispatcherTest, ReplaceUnknownTargetFails) {
  auto result = Dispatch(HelperId::kReplace, {Value("a"), Value("ghost")});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(dispatcher_.stats().failures, 1u);
}

TEST_F(DispatcherTest, RetrainReturnsAcceptance) {
  auto first = Dispatch(HelperId::kRetrain, {Value("model"), Value("window")});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().AsBool().value());
  // Second immediately after: suppressed (coalesce/throttle), not an error.
  auto second = Dispatch(HelperId::kRetrain, {Value("model")});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().AsBool().value());
  EXPECT_EQ(dispatcher_.stats().retrains_requested, 1u);
  EXPECT_EQ(dispatcher_.stats().retrains_suppressed, 1u);
}

TEST_F(DispatcherTest, DeprioritizeForwardsPairs) {
  auto result = Dispatch(
      HelperId::kDeprioritize,
      {Value(std::vector<Value>{Value("t1"), Value("t2")}),
       Value(std::vector<Value>{Value(0.5), Value(-1)})});
  ASSERT_TRUE(result.ok());
  const auto events = task_control_.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tasks, (std::vector<std::string>{"t1", "t2"}));
  EXPECT_EQ(events[0].priorities, (std::vector<double>{0.5, -1}));
  EXPECT_EQ(events[0].time, Seconds(5));
}

TEST_F(DispatcherTest, DeprioritizeLengthMismatchFails) {
  auto result = Dispatch(HelperId::kDeprioritize,
                         {Value(std::vector<Value>{Value("t1")}),
                          Value(std::vector<Value>{Value(1), Value(2)})});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("different lengths"), std::string::npos);
}

TEST_F(DispatcherTest, DeprioritizeNonNumericPriorityFails) {
  auto result = Dispatch(HelperId::kDeprioritize,
                         {Value(std::vector<Value>{Value("t1")}),
                          Value(std::vector<Value>{Value("high")})});
  EXPECT_FALSE(result.ok());
}

TEST_F(DispatcherTest, NullTaskControlFallsBackToRecorder) {
  ActionDispatcher dispatcher(&reporter_, &registry_, &retrain_, nullptr);
  ASSERT_TRUE(dispatcher
                  .Dispatch(HelperId::kDeprioritize,
                            std::vector<Value>{Value(std::vector<Value>{Value("t")}),
                                               Value(std::vector<Value>{Value(1)})},
                            ActionEnvelope{"g", Severity::kInfo, 0})
                  .ok());
  EXPECT_EQ(dispatcher.fallback_task_control().events().size(), 1u);
}

TEST_F(DispatcherTest, NonActionHelperIsInternalError) {
  auto result = Dispatch(HelperId::kLoad, {Value("k")});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
}

}  // namespace
}  // namespace osguard
