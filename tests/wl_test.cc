// Workload generator tests: rates, phases, determinism, and drift shapes.

#include <gtest/gtest.h>

#include "src/wl/accessgen.h"
#include "src/wl/iogen.h"
#include "src/wl/taskgen.h"

namespace osguard {
namespace {

TEST(IoGenTest, ApproximatesArrivalRate) {
  IoPhase phase;
  phase.duration = Seconds(10);
  phase.arrivals_per_sec = 1000.0;
  IoTraceGenerator generator({phase}, 1);
  const auto trace = generator.Generate();
  EXPECT_NEAR(static_cast<double>(trace.size()), 10000.0, 500.0);
}

TEST(IoGenTest, TimestampsMonotoneAndBounded) {
  IoPhase phase;
  phase.duration = Seconds(5);
  IoTraceGenerator generator({phase}, 2);
  const auto trace = generator.Generate();
  ASSERT_FALSE(trace.empty());
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
  EXPECT_LT(trace.back().at, Seconds(5));
}

TEST(IoGenTest, WriteFractionRespected) {
  IoPhase phase;
  phase.duration = Seconds(20);
  phase.write_fraction = 0.3;
  IoTraceGenerator generator({phase}, 3);
  const auto trace = generator.Generate();
  size_t writes = 0;
  for (const IoRequest& request : trace) {
    writes += request.is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(trace.size()), 0.3, 0.02);
}

TEST(IoGenTest, AddressesWithinSpace) {
  IoPhase phase;
  phase.duration = Seconds(2);
  phase.address_space = 1024;
  IoTraceGenerator generator({phase}, 4);
  for (const IoRequest& request : generator.Generate()) {
    EXPECT_LT(request.lba, 1024u);
  }
}

TEST(IoGenTest, ZipfSkewConcentratesAddresses) {
  IoPhase skewed;
  skewed.duration = Seconds(10);
  skewed.zipf_skew = 1.2;
  skewed.address_space = 100000;
  IoPhase uniform = skewed;
  uniform.zipf_skew = 0.0;

  auto count_low = [](const std::vector<IoRequest>& trace) {
    size_t low = 0;
    for (const IoRequest& request : trace) {
      low += request.lba < 1000 ? 1 : 0;
    }
    return static_cast<double>(low) / static_cast<double>(trace.size());
  };
  EXPECT_GT(count_low(IoTraceGenerator({skewed}, 5).Generate()), 0.5);
  EXPECT_LT(count_low(IoTraceGenerator({uniform}, 5).Generate()), 0.05);
}

TEST(IoGenTest, PhasesConcatenateInTime) {
  IoPhase first;
  first.duration = Seconds(5);
  first.write_fraction = 0.0;
  IoPhase second;
  second.duration = Seconds(5);
  second.write_fraction = 1.0;
  IoTraceGenerator generator({first, second}, 6);
  for (const IoRequest& request : generator.Generate()) {
    EXPECT_EQ(request.is_write, request.at >= Seconds(5)) << request.at;
  }
  EXPECT_EQ(generator.TotalDuration(), Seconds(10));
}

TEST(IoGenTest, DeterministicPerSeed) {
  IoPhase phase;
  phase.duration = Seconds(2);
  const auto a = IoTraceGenerator({phase}, 7).Generate();
  const auto b = IoTraceGenerator({phase}, 7).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].lba, b[i].lba);
  }
  const auto c = IoTraceGenerator({phase}, 8).Generate();
  EXPECT_NE(a.size(), c.size());
}

TEST(IoGenTest, BurstFactorRaisesThroughput) {
  IoPhase calm;
  calm.duration = Seconds(10);
  calm.arrivals_per_sec = 1000;
  IoPhase bursty = calm;
  bursty.burst_factor = 5.0;
  const auto calm_trace = IoTraceGenerator({calm}, 9).Generate();
  const auto bursty_trace = IoTraceGenerator({bursty}, 9).Generate();
  EXPECT_GT(bursty_trace.size(), calm_trace.size() + calm_trace.size() / 4);
}

TEST(IoGenTest, DriftPhasesShapeMatchesIntent) {
  const auto phases = MakeDriftPhases(Seconds(10), Seconds(20), 1500);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].duration, Seconds(10));
  EXPECT_EQ(phases[1].duration, Seconds(20));
  EXPECT_LT(phases[0].write_fraction, 0.1);
  EXPECT_GT(phases[1].write_fraction, 0.3);
  EXPECT_GT(phases[1].zipf_skew, phases[0].zipf_skew);
}

TEST(IoGenTest, StartOffsetShiftsTrace) {
  IoPhase phase;
  phase.duration = Seconds(1);
  const auto trace = IoTraceGenerator({phase}, 10).Generate(Seconds(100));
  ASSERT_FALSE(trace.empty());
  EXPECT_GE(trace.front().at, Seconds(100));
  EXPECT_LT(trace.back().at, Seconds(101));
}

// --- FileAccessGenerator ---

TEST(AccessGenTest, SequentialPhaseMostlyStrideOne) {
  AccessPhase phase;
  phase.duration = Seconds(5);
  phase.sequential_prob = 1.0;
  FileAccessGenerator generator({phase}, 11);
  const auto trace = generator.Generate();
  ASSERT_GT(trace.size(), 100u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].chunk, (trace[i - 1].chunk + 1) % phase.file_chunks);
  }
}

TEST(AccessGenTest, RandomPhaseJumpsAround) {
  AccessPhase phase;
  phase.duration = Seconds(5);
  phase.sequential_prob = 0.0;
  FileAccessGenerator generator({phase}, 12);
  const auto trace = generator.Generate();
  size_t sequential = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    sequential += trace[i].chunk == trace[i - 1].chunk + 1 ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(sequential) / static_cast<double>(trace.size()), 0.01);
}

TEST(AccessGenTest, ChunksStayInFile) {
  AccessPhase phase;
  phase.duration = Seconds(2);
  phase.file_chunks = 256;
  phase.sequential_prob = 0.5;
  for (const FileAccess& access : FileAccessGenerator({phase}, 13).Generate()) {
    EXPECT_LT(access.chunk, 256u);
  }
}

// --- TaskLoadGenerator ---

TEST(TaskGenTest, GeneratesSortedBursts) {
  TaskLoadGenerator generator(
      {{"a", 1.0, 50.0, Milliseconds(5)}, {"b", 2.0, 100.0, Milliseconds(2)}}, 14);
  const auto events = generator.Generate(Seconds(10));
  ASSERT_GT(events.size(), 1000u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
}

TEST(TaskGenTest, PerTaskRatesRespected) {
  TaskLoadGenerator generator(
      {{"slow", 1.0, 10.0, Milliseconds(5)}, {"fast", 1.0, 100.0, Milliseconds(5)}}, 15);
  const auto events = generator.Generate(Seconds(20));
  size_t slow_count = 0;
  size_t fast_count = 0;
  for (const BurstEvent& event : events) {
    (event.task_index == 0 ? slow_count : fast_count) += 1;
  }
  EXPECT_NEAR(static_cast<double>(slow_count), 200.0, 60.0);
  EXPECT_NEAR(static_cast<double>(fast_count), 2000.0, 200.0);
}

TEST(TaskGenTest, BurstLengthsHaveConfiguredMean) {
  TaskLoadGenerator generator({{"t", 1.0, 200.0, Milliseconds(8)}}, 16);
  const auto events = generator.Generate(Seconds(30));
  double total = 0;
  for (const BurstEvent& event : events) {
    EXPECT_GE(event.cpu_time, Microseconds(10));
    total += static_cast<double>(event.cpu_time);
  }
  const double mean = total / static_cast<double>(events.size());
  EXPECT_NEAR(mean, static_cast<double>(Milliseconds(8)), static_cast<double>(Milliseconds(1)));
}

TEST(TaskGenTest, ZeroRateTaskGeneratesNothing) {
  TaskLoadGenerator generator({{"idle", 1.0, 0.0, Milliseconds(5)}}, 17);
  EXPECT_TRUE(generator.Generate(Seconds(10)).empty());
}

}  // namespace
}  // namespace osguard
