// Compiles every spec in the specs/ corpus — the same check CI would run
// with `osguardc specs/*.osg` — and sanity-checks the corpus contents.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/vm/compiler.h"

#ifndef OSGUARD_SPECS_DIR
#define OSGUARD_SPECS_DIR "specs"
#endif

namespace osguard {
namespace {

std::vector<std::filesystem::path> SpecFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(OSGUARD_SPECS_DIR)) {
    if (entry.path().extension() == ".osg") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(SpecCorpusTest, CorpusIsNonEmpty) { EXPECT_GE(SpecFiles().size(), 4u); }

TEST(SpecCorpusTest, EveryShippedSpecCompilesAndVerifies) {
  for (const auto& path : SpecFiles()) {
    auto compiled = CompileSource(ReadFile(path));
    EXPECT_TRUE(compiled.ok()) << path << ": " << compiled.status().ToString();
    if (compiled.ok()) {
      EXPECT_FALSE(compiled.value().empty()) << path;
    }
  }
}

TEST(SpecCorpusTest, AgentGovernanceSpecShipsAllFourFamilies) {
  const auto path =
      std::filesystem::path(OSGUARD_SPECS_DIR) / "agent_governance.osg";
  auto compiled = CompileSource(ReadFile(path));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::vector<std::string> names;
  for (const CompiledGuardrail& guardrail : compiled.value()) {
    names.push_back(guardrail.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{
                       "agent-exec-allowlist", "agent-global-rate",
                       "agent-net-fingerprint", "agent-secret-flow",
                       "agent-session-rate"}));
}

TEST(SpecCorpusTest, Listing2SpecMatchesPaperShape) {
  const auto path = std::filesystem::path(OSGUARD_SPECS_DIR) / "listing2.osg";
  auto compiled = CompileSource(ReadFile(path));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const CompiledGuardrail& guardrail = compiled.value()[0];
  EXPECT_EQ(guardrail.name, "low-false-submit");
  ASSERT_EQ(guardrail.triggers.size(), 1u);
  EXPECT_EQ(guardrail.triggers[0].kind, TriggerKind::kTimer);
  EXPECT_EQ(guardrail.triggers[0].interval, Seconds(1));
}

}  // namespace
}  // namespace osguard
