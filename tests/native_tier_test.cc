// Native-tier engine behavior (`ctest -L native`): promotion thresholds and
// hints, demotion on quarantine, step-budget pinning, tier telemetry through
// the feature store, object-cache reuse across engines, and — crucially —
// the graceful-degrade pin: with no working host compiler the engine runs
// interpreter-only and everything still works.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/actions/dispatcher.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/runtime/engine.h"
#include "src/support/logging.h"
#include "src/vm/native_aot.h"

namespace osguard {
namespace {

bool NativeAvailable() {
  static const bool available = [] {
    if (!NativeAot::CompiledIn()) {
      return false;
    }
    NativeAot aot;
    return aot.Available();
  }();
  return available;
}

#define SKIP_IF_NO_NATIVE()                                               \
  do {                                                                    \
    if (!NativeAvailable()) {                                             \
      GTEST_SKIP() << "native tier unavailable; degrade mode is pinned "  \
                      "by GracefulDegrade tests below";                   \
    }                                                                     \
  } while (0)

constexpr char kHotSpec[] = R"(
guardrail hotpath {
  trigger: { TIMER(100ms, 100ms) },
  rule: { LOAD_OR(x, 0) <= 5 },
  action: { SAVE(tripped, true) }
}
)";

class NativeTierTest : public ::testing::Test {
 protected:
  NativeTierTest() { Logger::Global().set_level(LogLevel::kOff); }

  void MakeEngine(const NativeTierOptions& tier) {
    EngineOptions options;
    options.measure_wall_time = false;
    options.tier = tier;
    engine_ = std::make_unique<Engine>(&store_, &registry_, nullptr, options);
  }

  void Load(const std::string& source) {
    Status status = engine_->LoadSource(source);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  int64_t TierKey(const std::string& key) {
    return store_.LoadOr(key, Value(static_cast<int64_t>(-1))).NumericOr(-1);
  }

  FeatureStore store_;
  PolicyRegistry registry_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(NativeTierTest, PromotesAfterThresholdAndPublishesTierKeys) {
  SKIP_IF_NO_NATIVE();
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 3;
  MakeEngine(tier);
  Load(kHotSpec);
  EXPECT_FALSE(engine_->TierOf("hotpath"));
  EXPECT_EQ(TierKey("engine.tier.promotions"), 0);  // keys exist from the start
  EXPECT_EQ(TierKey("engine.tier.hotpath"), 0);

  engine_->AdvanceTo(Seconds(2));  // 20 timer firings
  EXPECT_TRUE(engine_->TierOf("hotpath"));
  const TierStats& stats = engine_->tier_stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.demotions, 0u);
  EXPECT_GT(stats.native_evals, 0u);
  EXPECT_GT(stats.interp_evals, 0u);  // the pre-promotion evaluations
  EXPECT_EQ(stats.compile_failures, 0u);
  // Telemetry mirrors the supervisor.* convention through the store.
  EXPECT_EQ(TierKey("engine.tier.promotions"), 1);
  EXPECT_EQ(TierKey("engine.tier.demotions"), 0);
  EXPECT_EQ(TierKey("engine.tier.native_evals"),
            static_cast<int64_t>(stats.native_evals));
  EXPECT_EQ(TierKey("engine.tier.interp_evals"),
            static_cast<int64_t>(stats.interp_evals));
  EXPECT_EQ(TierKey("engine.tier.hotpath"), 1);
}

TEST_F(NativeTierTest, NativeHintPromotesAtFirstEvaluation) {
  SKIP_IF_NO_NATIVE();
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 1000;  // the hint must override this
  MakeEngine(tier);
  Load(R"(
    guardrail eager {
      trigger: { TIMER(100ms, 100ms) },
      rule: { LOAD_OR(x, 0) <= 5 },
      action: { SAVE(tripped, true) },
      meta: { tier = native }
    }
  )");
  engine_->AdvanceTo(Milliseconds(100));
  EXPECT_TRUE(engine_->TierOf("eager"));
  EXPECT_EQ(engine_->tier_stats().promotions, 1u);
  EXPECT_EQ(engine_->tier_stats().interp_evals, 0u);  // never ran interpreted
  EXPECT_GT(engine_->tier_stats().native_evals, 0u);
}

TEST_F(NativeTierTest, InterpreterHintPinsTheMonitor) {
  SKIP_IF_NO_NATIVE();
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 0;
  MakeEngine(tier);
  Load(R"(
    guardrail pinned {
      trigger: { TIMER(100ms, 100ms) },
      rule: { LOAD_OR(x, 0) <= 5 },
      action: { SAVE(tripped, true) },
      meta: { tier = interpreter }
    }
  )");
  engine_->AdvanceTo(Seconds(2));
  EXPECT_FALSE(engine_->TierOf("pinned"));
  EXPECT_EQ(engine_->tier_stats().promotions, 0u);
  EXPECT_EQ(engine_->tier_stats().native_evals, 0u);
  EXPECT_GT(engine_->tier_stats().interp_evals, 0u);
}

TEST_F(NativeTierTest, StepBudgetKeepsTheMonitorInterpreted) {
  SKIP_IF_NO_NATIVE();
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 0;
  MakeEngine(tier);
  // A step budget needs the interpreter's exact mid-program abort point;
  // native code only honors wall deadlines, so the monitor must never
  // promote while the cap is in force.
  Load(R"(
    guardrail capped {
      trigger: { TIMER(100ms, 100ms) },
      rule: { LOAD_OR(x, 0) <= 5 },
      action: { SAVE(tripped, true) },
      health: { budget_steps = 500 }
    }
  )");
  engine_->AdvanceTo(Seconds(2));
  EXPECT_FALSE(engine_->TierOf("capped"));
  EXPECT_EQ(engine_->tier_stats().promotions, 0u);
  EXPECT_EQ(engine_->tier_stats().native_evals, 0u);
  const MonitorStats* stats = engine_->FindStats("capped");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->evaluations, 0u);  // still evaluating, just interpreted
}

TEST_F(NativeTierTest, QuarantineDemotesBackToTheInterpreter) {
  SKIP_IF_NO_NATIVE();
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 2;
  MakeEngine(tier);
  // The rule faults on every evaluation (division by zero), so the breaker
  // opens after `quarantine` consecutive failures — by which point the
  // monitor has been promoted. Opening the breaker must demote it.
  Load(R"(
    guardrail shaky {
      trigger: { TIMER(100ms, 100ms) },
      rule: { 1 / LOAD_OR(zero, 0) <= 1 },
      action: { SAVE(tripped, true) },
      health: { quarantine = 4, probe_every = 1000, flap_threshold = 100 }
    }
  )");
  engine_->AdvanceTo(Seconds(3));
  const TierStats& stats = engine_->tier_stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_FALSE(engine_->TierOf("shaky"));
  EXPECT_EQ(TierKey("engine.tier.shaky"), 0);
  EXPECT_EQ(TierKey("engine.tier.demotions"), 1);
}

TEST_F(NativeTierTest, ObjectCacheIsReusedAcrossEngines) {
  SKIP_IF_NO_NATIVE();
  const std::filesystem::path cache_dir =
      std::filesystem::path(::testing::TempDir()) / "osguard-tier-cache";
  std::filesystem::remove_all(cache_dir);  // stale objects would skew the counts

  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 0;
  tier.cache_dir = cache_dir.string();
  {
    MakeEngine(tier);
    Load(kHotSpec);
    engine_->AdvanceTo(Seconds(1));
    ASSERT_TRUE(engine_->TierOf("hotpath"));
    const NativeAotStats& aot = engine_->native_aot()->stats();
    EXPECT_GE(aot.compiles, 1u);  // availability probe + the guardrail
    EXPECT_EQ(aot.failures, 0u);
  }
  store_.Clear();
  {
    // A second engine (fresh process in spirit: empty memory cache) finds
    // bit-identical objects on disk — reloads and rollbacks recompile
    // nothing.
    MakeEngine(tier);
    Load(kHotSpec);
    engine_->AdvanceTo(Seconds(1));
    ASSERT_TRUE(engine_->TierOf("hotpath"));
    const NativeAotStats& aot = engine_->native_aot()->stats();
    EXPECT_EQ(aot.compiles, 0u);
    EXPECT_GE(aot.cache_hits, 2u);  // the probe TU and the guardrail TU
    EXPECT_EQ(aot.failures, 0u);
  }
}

// --- Graceful degrade: these tests run on every host, compiler or not. ---

TEST_F(NativeTierTest, GracefulDegradeWithBrokenCompiler) {
  // A fresh cache dir, or the disk cache would happily serve objects other
  // tests compiled for the same programs — cache hits work without a
  // compiler by design, but here we want the fully degraded path.
  const std::filesystem::path cache =
      std::filesystem::path(::testing::TempDir()) / "osguard-tier-broken-cc";
  std::filesystem::remove_all(cache);
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 0;
  tier.compiler = "/nonexistent/osguard-no-such-cc";
  tier.cache_dir = cache.string();
  MakeEngine(tier);
  Load(kHotSpec);
  store_.Save("x", Value(9));  // rule violated: the action must still fire
  engine_->AdvanceTo(Seconds(2));

  EXPECT_FALSE(engine_->TierOf("hotpath"));
  EXPECT_EQ(engine_->tier_stats().promotions, 0u);
  EXPECT_EQ(engine_->tier_stats().native_evals, 0u);
  EXPECT_GT(engine_->tier_stats().interp_evals, 0u);
  // The engine still does its job on the interpreter.
  const MonitorStats* stats = engine_->FindStats("hotpath");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->evaluations, 0u);
  EXPECT_GT(stats->violations, 0u);
  EXPECT_TRUE(store_.LoadOr("tripped", Value(false)).NumericOr(0) > 0);
}

TEST_F(NativeTierTest, TierDisabledMeansNoTierStateAtAll) {
  MakeEngine(NativeTierOptions{});  // default: disabled
  Load(kHotSpec);
  engine_->AdvanceTo(Seconds(1));
  EXPECT_EQ(engine_->native_aot(), nullptr);
  EXPECT_FALSE(engine_->TierOf("hotpath"));
  EXPECT_EQ(engine_->tier_stats().promotions, 0u);
  EXPECT_EQ(engine_->tier_stats().interp_evals, 0u);  // not even counted
  EXPECT_FALSE(store_.Contains("engine.tier.promotions"));
  EXPECT_FALSE(store_.Contains("engine.tier.hotpath"));
}

// --- meta { tier = ... } sema ---

TEST(TierHintDslTest, TierAttributeParses) {
  auto spec = ParseSpecSource(R"(
    guardrail t {
      trigger: { TIMER(1s, 1s) },
      rule: { true },
      action: { REPORT() },
      meta: { tier = native }
    }
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto analyzed = Analyze(std::move(spec).value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().message();
  EXPECT_EQ(analyzed.value().guardrails[0].meta.tier, TierHint::kNative);
  EXPECT_EQ(TierHintName(TierHint::kNative), "native");
  EXPECT_EQ(TierHintName(TierHint::kInterpreter), "interpreter");
  EXPECT_EQ(TierHintName(TierHint::kAuto), "auto");
}

TEST(TierHintDslTest, DefaultsToAutoAndRejectsJunk) {
  auto spec = ParseSpecSource(R"(
    guardrail t {
      trigger: { TIMER(1s, 1s) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  ASSERT_TRUE(spec.ok());
  auto analyzed = Analyze(std::move(spec).value());
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().guardrails[0].meta.tier, TierHint::kAuto);

  auto bad = ParseSpecSource(R"(
    guardrail t {
      trigger: { TIMER(1s, 1s) },
      rule: { true },
      action: { REPORT() },
      meta: { tier = turbo }
    }
  )");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(Analyze(std::move(bad).value()).ok());
}

}  // namespace
}  // namespace osguard
