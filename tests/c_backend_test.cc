// C backend tests: the emitted kernel-module source must reflect the
// compiled guardrail faithfully.

#include <gtest/gtest.h>

#include "src/vm/c_backend.h"
#include "src/vm/compiler.h"

namespace osguard {
namespace {

CompiledGuardrail CompileOne(const std::string& source) {
  auto compiled = CompileSource(source);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return compiled.ok() ? std::move(compiled.value()[0]) : CompiledGuardrail{};
}

TEST(CBackendTest, EmitsRuleAndActionFunctions) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail low-false-submit {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD(false_submit_rate) <= 0.05 },
      action: { SAVE(ml_enabled, false) }
    }
  )");
  const std::string source = EmitKernelModuleSource(guardrail);
  EXPECT_NE(source.find("static osg_value low_false_submit_rule(struct osg_ctx *ctx)"),
            std::string::npos);
  EXPECT_NE(source.find("static osg_value low_false_submit_action(struct osg_ctx *ctx)"),
            std::string::npos);
  EXPECT_NE(source.find("OSG_HELPER_LOAD"), std::string::npos);
  EXPECT_NE(source.find("OSG_HELPER_SAVE"), std::string::npos);
  EXPECT_NE(source.find("osg_str(\"false_submit_rate\")"), std::string::npos);
  EXPECT_NE(source.find("OSG_MODULE"), std::string::npos);
}

TEST(CBackendTest, TimerTriggerEmitsRegistration) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(2s, 1s, 30s) },
      rule: { true }, action: { REPORT() }
    }
  )");
  const std::string source = EmitKernelModuleSource(guardrail);
  EXPECT_NE(source.find("OSG_TRIGGER_TIMER(g_monitor, 2000000000LL, 1000000000LL, "
                        "30000000000LL);"),
            std::string::npos);
}

TEST(CBackendTest, FunctionTriggerEmitsRegistration) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { FUNCTION(submit_io) },
      rule: { true }, action: { REPORT() }
    }
  )");
  EXPECT_NE(EmitKernelModuleSource(guardrail).find("OSG_TRIGGER_FUNCTION(g_monitor, submit_io)"),
            std::string::npos);
}

TEST(CBackendTest, MetaFieldsAppearInMonitorStruct) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) }, rule: { true }, action: { REPORT() },
      meta: { severity = critical, cooldown = 5s, hysteresis = 3 }
    }
  )");
  const std::string source = EmitKernelModuleSource(guardrail);
  EXPECT_NE(source.find(".severity = 2"), std::string::npos);
  EXPECT_NE(source.find(".cooldown_ns = 5000000000LL"), std::string::npos);
  EXPECT_NE(source.find(".hysteresis = 3"), std::string::npos);
}

TEST(CBackendTest, OnSatisfyEmittedWhenPresent) {
  const CompiledGuardrail with = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) }, rule: { true },
      action: { SAVE(a, 1) }, on_satisfy: { SAVE(a, 0) }
    }
  )");
  EXPECT_NE(EmitKernelModuleSource(with).find("g_on_satisfy"), std::string::npos);

  const CompiledGuardrail without = CompileOne(R"(
    guardrail g { trigger: { TIMER(0, 1s) }, rule: { true }, action: { SAVE(a, 1) } }
  )");
  EXPECT_NE(EmitKernelModuleSource(without).find(".on_satisfy = NULL"), std::string::npos);
}

TEST(CBackendTest, JumpsBecomeGotosWithLabels) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      rule: { LOAD_OR(a, 0) <= 1 && LOAD_OR(b, 0) <= 2 },
      action: { REPORT() }
    }
  )");
  const std::string source = EmitCFunction(guardrail.rule, "rule_fn");
  EXPECT_NE(source.find("goto L"), std::string::npos);
  EXPECT_NE(source.find("L"), std::string::npos);
  EXPECT_NE(source.find("return r["), std::string::npos);
}

TEST(CBackendTest, StringsAreEscaped) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) }, rule: { true },
      action: { REPORT("say \"hi\"") }
    }
  )");
  EXPECT_NE(EmitKernelModuleSource(guardrail).find(R"(say \"hi\")"), std::string::npos);
}

TEST(CBackendTest, NameListConstantsEmitted) {
  const CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) }, rule: { true },
      action: { DEPRIORITIZE({batch, scan}, {1, 2}) }
    }
  )");
  const std::string source = EmitKernelModuleSource(guardrail);
  EXPECT_NE(source.find("osg_namelist(2, \"batch\", \"scan\")"), std::string::npos);
  EXPECT_NE(source.find("osg_list(&r["), std::string::npos);
}

TEST(CBackendTest, NamesStartingWithDigitAreMangled) {
  CompiledGuardrail guardrail = CompileOne(R"(
    guardrail g { trigger: { TIMER(0, 1s) }, rule: { true }, action: { REPORT() } }
  )");
  guardrail.name = "99bottles";
  const std::string source = EmitKernelModuleSource(guardrail);
  EXPECT_NE(source.find("g_99bottles_monitor"), std::string::npos);
}

}  // namespace
}  // namespace osguard
