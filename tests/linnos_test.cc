// LinnOS reproduction tests: training pipeline, classifier quality, policy
// wiring, and the Figure-2 experiment shape (scaled down for test speed).

#include <gtest/gtest.h>

#include "src/linnos/harness.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

// Small-but-meaningful experiment configuration (a few seconds of trace).
Figure2Options FastOptions() {
  Figure2Options options;
  options.before_drift = Seconds(6);
  options.after_drift = Seconds(6);
  options.arrivals_per_sec = 1500.0;
  return options;
}

class LinnosTest : public ::testing::Test {
 protected:
  LinnosTest() { Logger::Global().set_level(LogLevel::kOff); }
};

TEST_F(LinnosTest, TrainingDataHasBothClassesAndRightShape) {
  Figure2Options options = FastOptions();
  TrainingRunOptions training;
  training.device = options.device;
  training.duration = Seconds(6);
  IoPhase phase;
  phase.write_fraction = 0.05;
  phase.zipf_skew = 0.6;
  auto data = CollectTrainingData(phase, training);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_GT(data.value().size(), 5000u);
  EXPECT_EQ(data.value().feature_dim(), kIoFeatureDim);
  size_t slow = 0;
  for (double label : data.value().labels) {
    slow += label >= 0.5 ? 1 : 0;
  }
  EXPECT_GT(slow, 10u);                          // some slow I/Os observed
  EXPECT_LT(slow, data.value().size() / 2);      // but fast dominates
}

TEST_F(LinnosTest, ModelTrainsAndBeatsAlwaysFastOnRecall) {
  Figure2Options options = FastOptions();
  TrainingRunOptions training;
  training.device = options.device;
  training.duration = Seconds(8);
  IoPhase phase;
  phase.write_fraction = 0.05;
  phase.zipf_skew = 0.6;
  auto model = TrainLinnosModel(phase, training);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_TRUE((*model)->trained());

  TrainingRunOptions holdout = training;
  holdout.trace_seed = training.trace_seed + 1;
  auto holdout_data = CollectTrainingData(phase, holdout);
  ASSERT_TRUE(holdout_data.ok());
  const ConfusionMatrix quality = (*model)->Evaluate(holdout_data.value());
  EXPECT_GT(quality.accuracy(), 0.95);
  // The model must be better than the degenerate always-fast classifier:
  // nonzero recall on slow I/Os.
  EXPECT_GT(quality.true_positive, 0u);
}

TEST_F(LinnosTest, UntrainedModelVouchesNothingSlow) {
  auto model = LinnosModel::Create(kIoFeatureDim);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().PredictSlowProbability(std::vector<double>(kIoFeatureDim, 1.0)),
            0.0);
}

TEST_F(LinnosTest, PolicyExposesLinnosContract) {
  auto model_or = LinnosModel::Create(kIoFeatureDim);
  ASSERT_TRUE(model_or.ok());
  auto model = std::make_shared<LinnosModel>(std::move(model_or).value());
  LinnosSubmitPolicy policy(model, Microseconds(5));
  EXPECT_EQ(policy.name(), "linnos_model");
  EXPECT_TRUE(policy.is_learned());
  EXPECT_EQ(policy.inference_cost(), Microseconds(5));
}

TEST_F(LinnosTest, Listing2GuardrailCompiles) {
  auto compiled = CompileSource(kListing2Guardrail);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled.value()[0].name, "low-false-submit");
  EXPECT_EQ(compiled.value()[0].triggers[0].interval, Seconds(1));
}

TEST_F(LinnosTest, Figure2ShapeHolds) {
  auto result = RunFigure2Experiment(FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Figure2Result& r = result.value();

  // 1. Before the drift, guardrailed and unguardrailed LinnOS are identical
  //    (the guardrail never fires pre-drift).
  EXPECT_DOUBLE_EQ(r.without_guardrail.mean_latency_us_before,
                   r.with_guardrail.mean_latency_us_before);
  EXPECT_GE(r.with_guardrail.trigger_time_s, r.drift_time_s);

  // 2. The guardrail fires shortly after the drift (within a few check
  //    intervals) and disables the model.
  ASSERT_TRUE(r.with_guardrail.guardrail_fired);
  EXPECT_LE(r.with_guardrail.trigger_time_s, r.drift_time_s + 3.0);
  EXPECT_FALSE(r.with_guardrail.ml_enabled_at_end);

  // 3. Post-drift, the guardrailed run is clearly better than the
  //    unguardrailed one...
  EXPECT_LT(r.with_guardrail.mean_latency_us_after,
            r.without_guardrail.mean_latency_us_after * 0.8);
  // ...and lands near the reactive baseline (within 50%).
  EXPECT_LT(r.with_guardrail.mean_latency_us_after,
            r.baseline.mean_latency_us_after * 1.5);

  // 4. The unguardrailed run accumulates far more false submits.
  EXPECT_GT(r.without_guardrail.blk.false_submits,
            r.with_guardrail.blk.false_submits * 2);

  // 5. Post-drift latency of un-guarded LinnOS is visibly worse than its
  //    own pre-drift level (the degradation is real).
  EXPECT_GT(r.without_guardrail.mean_latency_us_after,
            r.without_guardrail.mean_latency_us_before * 1.5);
}

TEST_F(LinnosTest, NoGuardrailRunNeverDisablesModel) {
  Figure2Options options = FastOptions();
  auto model = TrainLinnosModel(
      [] {
        IoPhase phase;
        phase.write_fraction = 0.05;
        return phase;
      }(),
      [&options] {
        TrainingRunOptions training;
        training.device = options.device;
        training.duration = Seconds(4);
        return training;
      }());
  ASSERT_TRUE(model.ok());
  auto run = RunLinnosConfiguration(options, model.value(), "");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->guardrail_loaded);
  EXPECT_FALSE(run->guardrail_fired);
  EXPECT_TRUE(run->ml_enabled_at_end);
  EXPECT_EQ(run->blk.revokes, 0u);  // model path disables reactive revocation
}

TEST_F(LinnosTest, BaselineRunUsesReactiveRevocation) {
  auto run = RunLinnosConfiguration(FastOptions(), nullptr, "");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->blk.model_decisions, 0u);
  EXPECT_GT(run->blk.revokes, 0u);
  EXPECT_EQ(run->blk.false_submits, 0u);
}

TEST_F(LinnosTest, SeriesCoversWholeRun) {
  Figure2Options options = FastOptions();
  auto result = RunLinnosConfiguration(options, nullptr, "");
  ASSERT_TRUE(result.ok());
  const Duration total = options.before_drift + options.after_drift;
  ASSERT_FALSE(result->series.empty());
  EXPECT_EQ(result->series.size(),
            static_cast<size_t>((total + options.bucket - 1) / options.bucket));
  uint64_t total_ios = 0;
  for (const LatencyPoint& point : result->series) {
    total_ios += point.ios;
  }
  EXPECT_EQ(total_ios, result->blk.total_ios);
}

}  // namespace
}  // namespace osguard
