// Parser tests: grammar coverage, precedence, structure, and diagnostics.

#include <gtest/gtest.h>

#include "src/dsl/parser.h"

namespace osguard {
namespace {

SpecFile Parse(const std::string& source) {
  auto spec = ParseSpecSource(source);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.ok() ? std::move(spec).value() : SpecFile{};
}

Status ParseFailure(const std::string& source) {
  auto spec = ParseSpecSource(source);
  EXPECT_FALSE(spec.ok()) << "expected parse failure";
  return spec.ok() ? OkStatus() : spec.status();
}

std::string ExprString(const std::string& source) {
  auto expr = ParseExprSource(source);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  return expr.ok() ? expr.value()->ToString() : "<error>";
}

TEST(ParserTest, MinimalGuardrail) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      rule: { true },
      action: { REPORT() }
    }
  )");
  ASSERT_EQ(spec.guardrails.size(), 1u);
  const GuardrailDecl& decl = spec.guardrails[0];
  EXPECT_EQ(decl.name, "g");
  EXPECT_EQ(decl.triggers.size(), 1u);
  EXPECT_EQ(decl.rules.size(), 1u);
  EXPECT_EQ(decl.actions.size(), 1u);
  EXPECT_TRUE(decl.satisfy_actions.empty());
}

TEST(ParserTest, DashedNamesIncludingKeywords) {
  const SpecFile spec = Parse(R"(
    guardrail low-false-submit {
      trigger: { TIMER(0, 1s) }, rule: { true }, action: { REPORT() }
    }
  )");
  EXPECT_EQ(spec.guardrails[0].name, "low-false-submit");
}

TEST(ParserTest, MultipleGuardrailsInOneFile) {
  const SpecFile spec = Parse(R"(
    guardrail a { trigger: { TIMER(0, 1s) }, rule: { true }, action: { REPORT() } }
    guardrail b { trigger: { TIMER(0, 2s) }, rule: { false }, action: { REPORT() } }
  )");
  ASSERT_EQ(spec.guardrails.size(), 2u);
  EXPECT_EQ(spec.guardrails[0].name, "a");
  EXPECT_EQ(spec.guardrails[1].name, "b");
}

TEST(ParserTest, SectionsInAnyOrder) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      action: { REPORT() },
      rule: { true },
      trigger: { TIMER(0, 1s) }
    }
  )");
  EXPECT_EQ(spec.guardrails[0].triggers.size(), 1u);
}

TEST(ParserTest, TimerTriggerTwoOrThreeArgs) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { TIMER(0, 1s), TIMER(1s, 2s, 10s) },
      rule: { true }, action: { REPORT() }
    }
  )");
  ASSERT_EQ(spec.guardrails[0].triggers.size(), 2u);
  EXPECT_EQ(spec.guardrails[0].triggers[0].kind, TriggerKind::kTimer);
  EXPECT_EQ(spec.guardrails[0].triggers[0].args.size(), 2u);
  EXPECT_EQ(spec.guardrails[0].triggers[1].args.size(), 3u);
}

TEST(ParserTest, FunctionTrigger) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { FUNCTION(submit_io) },
      rule: { true }, action: { REPORT() }
    }
  )");
  EXPECT_EQ(spec.guardrails[0].triggers[0].kind, TriggerKind::kFunction);
  EXPECT_EQ(spec.guardrails[0].triggers[0].function_name, "submit_io");
}

TEST(ParserTest, MultipleRulesAndActions) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      rule: { a <= 1, b >= 2 },
      action: { REPORT(); SAVE(x, 1); RETRAIN(m) }
    }
  )");
  EXPECT_EQ(spec.guardrails[0].rules.size(), 2u);
  EXPECT_EQ(spec.guardrails[0].actions.size(), 3u);
}

TEST(ParserTest, OnSatisfySection) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      rule: { true },
      action: { SAVE(off, true) },
      on_satisfy: { SAVE(off, false) }
    }
  )");
  EXPECT_EQ(spec.guardrails[0].satisfy_actions.size(), 1u);
}

TEST(ParserTest, MetaSection) {
  const SpecFile spec = Parse(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      rule: { true },
      action: { REPORT() },
      meta: { severity = critical, cooldown = 5s, hysteresis = 3, enabled = true,
              description = "demo" }
    }
  )");
  const auto& meta = spec.guardrails[0].meta;
  ASSERT_EQ(meta.size(), 5u);
  EXPECT_EQ(meta[0].key, "severity");
  EXPECT_EQ(meta[0].value.AsString().value(), "critical");
  EXPECT_EQ(meta[1].value.AsInt().value(), Seconds(5));
  EXPECT_EQ(meta[4].value.AsString().value(), "demo");
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(ExprString("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(ExprString("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(ParserTest, PrecedenceComparisonOverLogical) {
  EXPECT_EQ(ExprString("a < 1 && b > 2"), "((a < 1) && (b > 2))");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  EXPECT_EQ(ExprString("a || b && c"), "(a || (b && c))");
}

TEST(ParserTest, UnaryBindsTightly) {
  EXPECT_EQ(ExprString("-a + b"), "(-a + b)");
  EXPECT_EQ(ExprString("!a && b"), "(!a && b)");
  EXPECT_EQ(ExprString("--3"), "--3");  // double negation parses
}

TEST(ParserTest, ArithmeticLeftAssociative) {
  EXPECT_EQ(ExprString("10 - 4 - 3"), "((10 - 4) - 3)");
  EXPECT_EQ(ExprString("100 / 10 / 2"), "((100 / 10) / 2)");
}

TEST(ParserTest, CallsWithArguments) {
  EXPECT_EQ(ExprString("MEAN(lat, 10s)"), "MEAN(lat, 10000000000)");
  EXPECT_EQ(ExprString("LOAD(x)"), "LOAD(x)");
  EXPECT_EQ(ExprString("NOW()"), "NOW()");
}

TEST(ParserTest, QuantileSugarRewrites) {
  EXPECT_EQ(ExprString("P99(lat, 1s)"), "QUANTILE(lat, 0.99, 1000000000)");
  EXPECT_EQ(ExprString("P50(lat, 1s)"), "QUANTILE(lat, 0.5, 1000000000)");
}

TEST(ParserTest, BraceListsAsArguments) {
  EXPECT_EQ(ExprString("DEPRIORITIZE({a, b}, {1, 2})"), "DEPRIORITIZE({a, b}, {1, 2})");
}

TEST(ParserTest, ChainedComparisonRejected) {
  auto expr = ParseExprSource("1 < 2 < 3");
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("chained"), std::string::npos);
}

TEST(ParserTest, MissingTriggerSectionFails) {
  const Status status = ParseFailure("guardrail g { rule: { true }, action: { REPORT() } }");
  EXPECT_NE(status.message().find("trigger"), std::string::npos);
}

TEST(ParserTest, MissingRuleSectionFails) {
  EXPECT_FALSE(
      ParseSpecSource("guardrail g { trigger: { TIMER(0,1s) }, action: { REPORT() } }").ok());
}

TEST(ParserTest, MissingActionSectionFails) {
  EXPECT_FALSE(
      ParseSpecSource("guardrail g { trigger: { TIMER(0,1s) }, rule: { true } }").ok());
}

TEST(ParserTest, DuplicateSectionFails) {
  const Status status = ParseFailure(R"(
    guardrail g {
      trigger: { TIMER(0, 1s) },
      trigger: { TIMER(0, 2s) },
      rule: { true }, action: { REPORT() }
    }
  )");
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, EmptySpecFails) {
  EXPECT_FALSE(ParseSpecSource("").ok());
  EXPECT_FALSE(ParseSpecSource("   // just a comment\n").ok());
}

TEST(ParserTest, EmptyRuleBlockFails) {
  EXPECT_FALSE(ParseSpecSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { }, action: { REPORT() } }
  )").ok());
}

TEST(ParserTest, EmptyActionBlockFails) {
  EXPECT_FALSE(ParseSpecSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { } }
  )").ok());
}

TEST(ParserTest, TimerWrongArityFails) {
  EXPECT_FALSE(ParseSpecSource(R"(
    guardrail g { trigger: { TIMER(1s) }, rule: { true }, action: { REPORT() } }
  )").ok());
  EXPECT_FALSE(ParseSpecSource(R"(
    guardrail g { trigger: { TIMER(1s,2s,3s,4s) }, rule: { true }, action: { REPORT() } }
  )").ok());
}

TEST(ParserTest, UnknownTriggerKindFails) {
  const Status status = ParseFailure(R"(
    guardrail g { trigger: { INTERRUPT(x) }, rule: { true }, action: { REPORT() } }
  )");
  EXPECT_NE(status.message().find("INTERRUPT"), std::string::npos);
}

TEST(ParserTest, NonCallActionStatementFails) {
  EXPECT_FALSE(ParseSpecSource(R"(
    guardrail g { trigger: { TIMER(0,1s) }, rule: { true }, action: { 42 } }
  )").ok());
}

TEST(ParserTest, ErrorsIncludeLineNumbers) {
  const Status status = ParseFailure("guardrail g {\n  bogus: { }\n}");
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(ParserTest, TrailingInputAfterExpressionFails) {
  EXPECT_FALSE(ParseExprSource("1 + 2 extra").ok());
}

TEST(ParserTest, CommentsEverywhere) {
  const SpecFile spec = Parse(R"(
    // leading comment
    guardrail g { /* inline */
      trigger: { TIMER(0, 1s) /* after */ },
      rule: { true },  // trailing
      action: { REPORT() }
    }
  )");
  EXPECT_EQ(spec.guardrails.size(), 1u);
}

TEST(ParserTest, ListingOneGrammarShapesParse) {
  // Every production of Listing 1: multiple triggers, multiple rules,
  // all four paper actions.
  const SpecFile spec = Parse(R"(
    guardrail full {
      trigger: { TIMER(0, 1s), FUNCTION(pick_next) },
      rule: { LOAD(err_rate) <= 0.1, MEAN(lat, 5s) <= 2ms },
      action: {
        REPORT("violated", err_rate);
        REPLACE(learned_policy, fallback_policy);
        RETRAIN(learned_policy, recent_data);
        DEPRIORITIZE({batch, scan}, {0.5, 0.1});
      }
    }
  )");
  const GuardrailDecl& decl = spec.guardrails[0];
  EXPECT_EQ(decl.triggers.size(), 2u);
  EXPECT_EQ(decl.rules.size(), 2u);
  ASSERT_EQ(decl.actions.size(), 4u);
  EXPECT_EQ(decl.actions[0]->name, "REPORT");
  EXPECT_EQ(decl.actions[1]->name, "REPLACE");
  EXPECT_EQ(decl.actions[2]->name, "RETRAIN");
  EXPECT_EQ(decl.actions[3]->name, "DEPRIORITIZE");
}

}  // namespace
}  // namespace osguard
