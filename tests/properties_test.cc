// Property-library tests: every P1-P6 spec builder must produce compilable
// DSL that detects its violation class, and the drift detector must score
// distribution shifts.

#include <gtest/gtest.h>

#include "src/properties/drift.h"
#include "src/properties/specs.h"
#include "src/runtime/engine.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/vm/compiler.h"

namespace osguard {
namespace {

class PropertySpecTest : public ::testing::Test {
 protected:
  PropertySpecTest() : engine_(&store_, &registry_) {
    Logger::Global().set_level(LogLevel::kOff);
  }

  void LoadSpec(const std::string& source) {
    auto status = engine_.LoadSource(source);
    ASSERT_TRUE(status.ok()) << status.ToString() << "\nsource:\n" << source;
  }

  uint64_t Violations(const std::string& name) {
    return engine_.StatsFor(name).value().violations;
  }

  FeatureStore store_;
  PolicyRegistry registry_;
  Engine engine_;
};

// Shared minimal action for the generated specs.
constexpr char kFlagAction[] = "SAVE(flag, true)";

TEST_F(PropertySpecTest, AllBuildersProduceCompilableSpecs) {
  PropertySpecOptions options;
  for (const std::string& source : {
           InDistributionSpec("p1", "drift_score", 0.2, kFlagAction, options),
           RobustnessSpec("p2", "in_series", "out_series", 2.0, kFlagAction, options),
           OutputBoundsSpec("p3", "decision", "lo", "hi", kFlagAction, options),
           OutputBoundsConstSpec("p3c", "decision", 0, 100, kFlagAction, options),
           DecisionQualitySpec("p4", "learned_metric", "baseline_metric", 0.9, kFlagAction,
                               options),
           DecisionQualityAbsoluteSpec("p4a", "accuracy", 0.9, kFlagAction, options),
           DecisionOverheadSpec("p5", "infer_cost", "total_latency", 0.1, kFlagAction,
                                options),
           LivenessSpec("p6", "starved_ms", 100.0, kFlagAction, options),
       }) {
    auto compiled = CompileSource(source);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString() << "\n" << source;
  }
}

TEST_F(PropertySpecTest, InDistributionDetectsHighDriftScore) {
  LoadSpec(InDistributionSpec("p1", "drift", 0.2, kFlagAction));
  store_.Save("drift", Value(0.05));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p1"), 0u);
  store_.Save("drift", Value(0.5));
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p1"), 1u);
  EXPECT_TRUE(store_.Contains("flag"));
}

TEST_F(PropertySpecTest, InDistributionSatisfiedWithNoScoreYet) {
  LoadSpec(InDistributionSpec("p1", "drift", 0.2, kFlagAction));
  engine_.AdvanceTo(Seconds(1));  // LOAD_OR default 0 <= 0.2
  EXPECT_EQ(Violations("p1"), 0u);
}

TEST_F(PropertySpecTest, RobustnessDetectsOutputSensitivity) {
  PropertySpecOptions options;
  options.window = Seconds(10);
  LoadSpec(RobustnessSpec("p2", "model_in", "model_out", 2.0, kFlagAction, options));
  // Calm inputs, calm outputs: fine.
  for (int i = 0; i < 20; ++i) {
    store_.Observe("model_in", Milliseconds(i * 10), 1.0 + 0.01 * (i % 2));
    store_.Observe("model_out", Milliseconds(i * 10), 0.5 + 0.01 * (i % 2));
  }
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p2"), 0u);
  // Calm inputs, wild outputs: sensitivity violation.
  for (int i = 0; i < 20; ++i) {
    store_.Observe("model_in", Seconds(1) + Milliseconds(i * 10), 1.0 + 0.01 * (i % 2));
    store_.Observe("model_out", Seconds(1) + Milliseconds(i * 10), i % 2 == 0 ? 10.0 : -10.0);
  }
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p2"), 1u);
}

TEST_F(PropertySpecTest, OutputBoundsDetectsIllegalOutput) {
  LoadSpec(OutputBoundsSpec("p3", "ra.last_decision", "ra.min", "ra.max", kFlagAction));
  store_.Save("ra.min", Value(0));
  store_.Save("ra.max", Value(64));
  store_.Save("ra.last_decision", Value(32));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p3"), 0u);
  store_.Save("ra.last_decision", Value(100000));
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p3"), 1u);
  store_.Save("ra.last_decision", Value(-3));
  engine_.AdvanceTo(Seconds(3));
  EXPECT_EQ(Violations("p3"), 2u);
}

TEST_F(PropertySpecTest, BoundsFollowRuntimeKeys) {
  // The legal range is itself dynamic — shrinking it can flip the verdict.
  LoadSpec(OutputBoundsSpec("p3", "out", "lo", "hi", kFlagAction));
  store_.Save("lo", Value(0));
  store_.Save("hi", Value(100));
  store_.Save("out", Value(80));
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p3"), 0u);
  store_.Save("hi", Value(50));  // bound tightened at run time
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p3"), 1u);
}

TEST_F(PropertySpecTest, DecisionQualityComparesAgainstBaseline) {
  PropertySpecOptions options;
  options.window = Seconds(60);
  LoadSpec(DecisionQualitySpec("p4", "learned_hit", "baseline_hit", 1.0, kFlagAction,
                               options));
  for (int i = 1; i <= 10; ++i) {
    store_.Observe("learned_hit", Milliseconds(i * 50), 0.9);
    store_.Observe("baseline_hit", Milliseconds(i * 50), 0.6);
  }
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p4"), 0u);  // learned better than baseline
  for (int i = 1; i <= 50; ++i) {
    store_.Observe("learned_hit", Seconds(1) + Milliseconds(i * 10), 0.2);
  }
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p4"), 1u);  // learned collapsed below baseline
}

TEST_F(PropertySpecTest, DecisionQualityAbsoluteThreshold) {
  LoadSpec(DecisionQualityAbsoluteSpec("p4a", "accuracy", 0.9, kFlagAction));
  for (int i = 1; i <= 10; ++i) {
    store_.Observe("accuracy", Milliseconds(i * 50), i <= 9 ? 1.0 : 0.0);  // mean 0.9
  }
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p4a"), 0u);
  for (int i = 1; i <= 30; ++i) {
    store_.Observe("accuracy", Seconds(1) + Milliseconds(i * 10), 0.0);
  }
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p4a"), 1u);
}

TEST_F(PropertySpecTest, DecisionOverheadBoundsInferenceShare) {
  PropertySpecOptions options;
  options.window = Seconds(60);
  LoadSpec(DecisionOverheadSpec("p5", "infer_us", "latency_us", 0.10, kFlagAction, options));
  for (int i = 1; i <= 10; ++i) {
    store_.Observe("infer_us", Milliseconds(i * 50), 5.0);
    store_.Observe("latency_us", Milliseconds(i * 50), 100.0);
  }
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p5"), 0u);  // 5%
  for (int i = 1; i <= 100; ++i) {
    store_.Observe("infer_us", Seconds(1) + Milliseconds(i * 5), 50.0);
  }
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p5"), 1u);  // inference now dominates
}

TEST_F(PropertySpecTest, LivenessDetectsStarvation) {
  LoadSpec(LivenessSpec("p6", "sched.starved_ms", 100.0, kFlagAction));
  store_.Observe("sched.starved_ms", Milliseconds(500), 20.0);
  engine_.AdvanceTo(Seconds(1));
  EXPECT_EQ(Violations("p6"), 0u);
  store_.Observe("sched.starved_ms", Milliseconds(1500), 250.0);
  engine_.AdvanceTo(Seconds(2));
  EXPECT_EQ(Violations("p6"), 1u);
}

TEST_F(PropertySpecTest, OptionsControlMetaAndTrigger) {
  PropertySpecOptions options;
  options.check_interval = Milliseconds(100);
  options.check_start = Milliseconds(100);
  options.hysteresis = 3;
  options.cooldown = Seconds(2);
  options.severity = "critical";
  const std::string source = InDistributionSpec("p1", "drift", 0.2, kFlagAction, options);
  auto compiled = CompileSource(source);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const CompiledGuardrail& guardrail = compiled.value()[0];
  EXPECT_EQ(guardrail.triggers[0].interval, Milliseconds(100));
  EXPECT_EQ(guardrail.meta.hysteresis, 3);
  EXPECT_EQ(guardrail.meta.cooldown, Seconds(2));
  EXPECT_EQ(guardrail.meta.severity, Severity::kCritical);
}

// --- DriftDetector ---

TEST(DriftDetectorTest, UnfittedScoresZero) {
  DriftDetector detector;
  detector.Observe(1.0);
  EXPECT_EQ(detector.Score(), 0.0);
  EXPECT_FALSE(detector.fitted());
}

TEST(DriftDetectorTest, FitRejectsEmpty) {
  DriftDetector detector;
  EXPECT_FALSE(detector.Fit({}).ok());
}

TEST(DriftDetectorTest, SameDistributionScoresLow) {
  Rng rng(1);
  std::vector<double> training;
  for (int i = 0; i < 4000; ++i) {
    training.push_back(rng.Normal(10, 2));
  }
  DriftDetector detector;
  ASSERT_TRUE(detector.Fit(training).ok());
  for (int i = 0; i < 512; ++i) {
    detector.Observe(rng.Normal(10, 2));
  }
  EXPECT_LT(detector.Score(), 0.12);
}

TEST(DriftDetectorTest, ShiftedDistributionScoresHigh) {
  Rng rng(2);
  std::vector<double> training;
  for (int i = 0; i < 4000; ++i) {
    training.push_back(rng.Normal(10, 2));
  }
  DriftDetector detector;
  ASSERT_TRUE(detector.Fit(training).ok());
  for (int i = 0; i < 512; ++i) {
    detector.Observe(rng.Normal(20, 2));
  }
  EXPECT_GT(detector.Score(), 0.8);
}

TEST(DriftDetectorTest, FingerprintSubsamplesLargeTrainingSets) {
  Rng rng(3);
  std::vector<double> training;
  for (int i = 0; i < 100000; ++i) {
    training.push_back(rng.Normal(0, 1));
  }
  DriftDetectorOptions options;
  options.fingerprint_max = 1000;
  DriftDetector detector(options);
  ASSERT_TRUE(detector.Fit(training).ok());
  for (int i = 0; i < 512; ++i) {
    detector.Observe(rng.Normal(0, 1));
  }
  EXPECT_LT(detector.Score(), 0.15);  // subsampling keeps fidelity
}

TEST(DriftDetectorTest, PublishWritesScoreToStore) {
  DriftDetector detector;
  ASSERT_TRUE(detector.Fit({1, 2, 3, 4, 5}).ok());
  detector.Observe(100.0);
  FeatureStore store;
  const double score = detector.Publish(store, "drift_score");
  EXPECT_GT(score, 0.9);
  EXPECT_DOUBLE_EQ(store.Load("drift_score").value().NumericOr(0), score);
}

TEST(MultiDriftDetectorTest, ScoresWorstDimension) {
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({rng.Normal(0, 1), rng.Normal(5, 1)});
  }
  MultiDriftDetector detector(2);
  ASSERT_TRUE(detector.Fit(rows).ok());
  // Dimension 0 stays put; dimension 1 shifts.
  for (int i = 0; i < 512; ++i) {
    detector.Observe({rng.Normal(0, 1), rng.Normal(15, 1)});
  }
  EXPECT_GT(detector.Score(), 0.8);
  EXPECT_LT(detector.dimension(0).Score(), 0.15);
  EXPECT_GT(detector.dimension(1).Score(), 0.8);
}

TEST(MultiDriftDetectorTest, EndToEndWithInDistributionSpec) {
  // The full P1 story: fit on training, observe drifted inputs, publish,
  // guardrail fires RETRAIN.
  Logger::Global().set_level(LogLevel::kOff);
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  ASSERT_TRUE(engine
                  .LoadSource(InDistributionSpec("input-drift", "model.drift", 0.3,
                                                 "RETRAIN(the_model, recent)"))
                  .ok());
  Rng rng(5);
  std::vector<std::vector<double>> training;
  for (int i = 0; i < 2000; ++i) {
    training.push_back({rng.Normal(0, 1)});
  }
  MultiDriftDetector detector(1);
  ASSERT_TRUE(detector.Fit(training).ok());

  // In distribution: no retrain.
  for (int i = 0; i < 256; ++i) {
    detector.Observe({rng.Normal(0, 1)});
  }
  detector.Publish(store, "model.drift");
  engine.AdvanceTo(Seconds(1));
  EXPECT_FALSE(engine.retrain_queue().Pop().has_value());

  // Drift: retrain queued.
  for (int i = 0; i < 512; ++i) {
    detector.Observe({rng.Normal(8, 1)});
  }
  detector.Publish(store, "model.drift");
  engine.AdvanceTo(Seconds(2));
  auto request = engine.retrain_queue().Pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->model, "the_model");
}

}  // namespace
}  // namespace osguard
