// Simulator tests: event queue, kernel harness, SSD model, block layer
// (reactive vs. predictive paths), scheduler, and readahead.

#include <gtest/gtest.h>

#include "src/sim/blk_layer.h"
#include "src/sim/event_queue.h"
#include "src/sim/kernel.h"
#include "src/sim/readahead.h"
#include "src/sim/scheduler.h"
#include "src/sim/ssd_device.h"
#include "src/support/logging.h"

namespace osguard {
namespace {

// --- EventQueue ---

TEST(EventQueueTest, RunsInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(Seconds(3), [&](SimTime) { order.push_back(3); });
  queue.ScheduleAt(Seconds(1), [&](SimTime) { order.push_back(1); });
  queue.ScheduleAt(Seconds(2), [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(queue.RunUntil(Seconds(10)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), Seconds(10));
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(Seconds(1), [&order, i](SimTime) { order.push_back(i); });
  }
  queue.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int ran = 0;
  queue.ScheduleAt(Seconds(1), [&](SimTime) { ++ran; });
  queue.ScheduleAt(Seconds(5), [&](SimTime) { ++ran; });
  queue.RunUntil(Seconds(2));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime now) {
    if (++count < 5) {
      queue.ScheduleAt(now + Seconds(1), chain);
    }
  };
  queue.ScheduleAt(0, chain);
  queue.RunUntil(Seconds(10));
  EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue queue;
  queue.RunUntil(Seconds(5));
  SimTime ran_at = -1;
  queue.ScheduleAt(Seconds(1), [&](SimTime now) { ran_at = now; });
  queue.RunUntil(Seconds(6));
  EXPECT_EQ(ran_at, Seconds(5));
}

TEST(EventQueueTest, ClearDropsPending) {
  EventQueue queue;
  queue.ScheduleAt(Seconds(1), [](SimTime) { FAIL() << "should not run"; });
  queue.Clear();
  EXPECT_EQ(queue.RunUntil(Seconds(2)), 0u);
}

// --- Kernel ---

TEST(KernelTest, RunInterleavesEventsAndMonitors) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail watcher {
      trigger: { TIMER(1s, 1s) },
      rule: { LOAD_OR(events_run, 0) >= 1 },
      action: { SAVE(violated_at, NOW()) }
    }
  )").ok());
  // The event at 500ms sets events_run, so the 1s check must pass.
  kernel.queue().ScheduleAt(Milliseconds(500),
                            [&](SimTime) { kernel.store().Increment("events_run"); });
  kernel.Run(Seconds(2));
  EXPECT_FALSE(kernel.store().Contains("violated_at"));
  EXPECT_EQ(kernel.engine().StatsFor("watcher").value().evaluations, 2u);
}

TEST(KernelTest, MonitorSeesStateAtItsTimestampNotAfter) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail watcher {
      trigger: { TIMER(1s, 10s) },
      rule: { LOAD_OR(flag, 0) == 0 },
      action: { SAVE(tripped, true) }
    }
  )").ok());
  // Event at 1.5s is after the 1s check: the check must not see it.
  kernel.queue().ScheduleAt(Milliseconds(1500),
                            [&](SimTime) { kernel.store().Save("flag", Value(1)); });
  kernel.Run(Seconds(2));
  EXPECT_FALSE(kernel.store().Contains("tripped"));
}

TEST(KernelTest, CalloutFiresFunctionMonitors) {
  Logger::Global().set_level(LogLevel::kOff);
  Kernel kernel;
  ASSERT_TRUE(kernel.LoadGuardrails(R"(
    guardrail hook {
      trigger: { FUNCTION(my_fn) },
      rule: { false },
      action: { INCR(hits) }
    }
  )").ok());
  kernel.Callout("my_fn");
  kernel.Callout("my_fn");
  EXPECT_EQ(kernel.store().LoadOr("hits", Value(0)).NumericOr(0), 2.0);
}

// --- SsdDevice ---

SsdConfig QuietSsd(uint64_t seed) {
  SsdConfig config;
  config.seed = seed;
  config.gc_per_write = 0.0;
  config.gc_per_read = 0.0;
  return config;
}

TEST(SsdDeviceTest, ReadLatencyWithinConfiguredBand) {
  SsdDevice device("d", QuietSsd(1));
  for (int i = 0; i < 100; ++i) {
    // Idle device (spread in time): latency = base + jitter only.
    const IoResult result = device.Submit(Seconds(i), static_cast<uint64_t>(i), false);
    EXPECT_GE(result.latency, device.config().read_base);
    EXPECT_LT(result.latency, device.config().read_base + device.config().read_jitter);
    EXPECT_EQ(result.queue_wait, 0);
  }
}

TEST(SsdDeviceTest, WritesSlowerThanReads) {
  SsdDevice device("d", QuietSsd(2));
  Duration read_total = 0;
  Duration write_total = 0;
  for (int i = 0; i < 200; ++i) {
    read_total += device.Submit(Seconds(i), 0, false).latency;
    write_total += device.Submit(Seconds(i) + Milliseconds(500), 1, true).latency;
  }
  EXPECT_GT(write_total, read_total * 2);
}

TEST(SsdDeviceTest, BackToBackRequestsQueue) {
  SsdDevice device("d", QuietSsd(3));
  const IoResult first = device.Submit(0, 0, false);
  const IoResult second = device.Submit(0, 0, false);  // same channel, same time
  EXPECT_EQ(second.queue_wait, first.latency);
  EXPECT_GT(second.latency, first.latency);
}

TEST(SsdDeviceTest, DifferentChannelsDoNotQueue) {
  SsdDevice device("d", QuietSsd(4));
  device.Submit(0, 0, false);
  const IoResult other = device.Submit(0, 1, false);  // lba 1 -> channel 1
  EXPECT_EQ(other.queue_wait, 0);
}

TEST(SsdDeviceTest, GcPausesCreateBimodality) {
  SsdConfig config;
  config.seed = 5;
  config.gc_per_write = 1.0;  // every write triggers GC
  SsdDevice device("d", config);
  const IoResult write = device.Submit(0, 0, true);
  EXPECT_TRUE(write.hit_gc);
  EXPECT_GT(write.latency, config.write_base);
  EXPECT_GT(device.gc_events(), 0u);
}

TEST(SsdDeviceTest, QueueDepthTracksInFlight) {
  SsdDevice device("d", QuietSsd(6));
  EXPECT_EQ(device.QueueDepth(0, 0), 0);
  device.Submit(0, 0, false);
  device.Submit(0, 0, false);
  EXPECT_EQ(device.QueueDepth(0, 0), 2);
  EXPECT_EQ(device.TotalQueueDepth(0), 2);
  // After both complete, depth drains.
  EXPECT_EQ(device.QueueDepth(Seconds(1), 0), 0);
}

TEST(SsdDeviceTest, HistogramAccumulates) {
  SsdDevice device("d", QuietSsd(7));
  for (int i = 0; i < 50; ++i) {
    device.Submit(Seconds(i), static_cast<uint64_t>(i), false);
  }
  EXPECT_EQ(device.latency_histogram().count(), 50u);
  EXPECT_EQ(device.total_ios(), 50u);
}

TEST(SsdDeviceTest, ScaleGcPressureClamps) {
  SsdConfig config;
  config.gc_per_write = 0.5;
  SsdDevice device("d", config);
  device.ScaleGcPressure(10.0);
  EXPECT_EQ(device.config().gc_per_write, 1.0);
}

TEST(SsdDeviceTest, DeterministicPerSeed) {
  SsdDevice a("a", QuietSsd(42));
  SsdDevice b("b", QuietSsd(42));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Submit(Seconds(i), static_cast<uint64_t>(i), i % 3 == 0).latency,
              b.Submit(Seconds(i), static_cast<uint64_t>(i), i % 3 == 0).latency);
  }
}

// --- BlockLayer ---

class AlwaysSlowPolicy : public IoSubmitPolicy {
 public:
  std::string name() const override { return "always_slow"; }
  bool is_learned() const override { return true; }
  bool PredictSlow(const IoContext&) override { return true; }
  Duration inference_cost() const override { return Microseconds(5); }
};

class NeverSlowLearnedPolicy : public IoSubmitPolicy {
 public:
  std::string name() const override { return "never_slow"; }
  bool is_learned() const override { return true; }
  bool PredictSlow(const IoContext&) override { return false; }
  Duration inference_cost() const override { return Microseconds(5); }
};

class BlockLayerTest : public ::testing::Test {
 protected:
  BlockLayerTest() {
    Logger::Global().set_level(LogLevel::kOff);
    SsdConfig primary_config = QuietSsd(10);
    SsdConfig replica_config = QuietSsd(11);
    primary_ = std::make_unique<SsdDevice>("primary", primary_config);
    replica_ = std::make_unique<SsdDevice>("replica", replica_config);
  }

  void MakeBlockLayer(BlockLayerConfig config = {}) {
    blk_ = std::make_unique<BlockLayer>(kernel_, primary_.get(), replica_.get(), config);
  }

  Kernel kernel_;
  std::unique_ptr<SsdDevice> primary_;
  std::unique_ptr<SsdDevice> replica_;
  std::unique_ptr<BlockLayer> blk_;
};

TEST_F(BlockLayerTest, NoPolicyFastIoGoesToPrimary) {
  MakeBlockLayer();
  const IoOutcome outcome = blk_->SubmitIo(0, false);
  EXPECT_FALSE(outcome.used_model);
  EXPECT_FALSE(outcome.redirected);
  EXPECT_EQ(primary_->total_ios(), 1u);
  EXPECT_EQ(replica_->total_ios(), 0u);
}

TEST_F(BlockLayerTest, ReactiveRevocationCapsSlowIo) {
  // Force a guaranteed-slow primary: GC on every read with a long pause.
  SsdConfig slow = QuietSsd(12);
  slow.gc_per_read = 1.0;
  slow.gc_pause_mean = Milliseconds(5);
  primary_ = std::make_unique<SsdDevice>("primary", slow);
  BlockLayerConfig config;
  config.revoke_timeout = Microseconds(500);
  MakeBlockLayer(config);

  const IoOutcome outcome = blk_->SubmitIo(0, false);
  EXPECT_TRUE(outcome.revoked);
  EXPECT_TRUE(outcome.redirected);
  // Latency is bounded by timeout + penalty + replica read, far below the
  // multi-ms GC pause.
  EXPECT_LT(outcome.latency, Milliseconds(1));
}

TEST_F(BlockLayerTest, PredictedSlowGoesStraightToReplica) {
  MakeBlockLayer();
  auto policy = std::make_shared<AlwaysSlowPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("blk.submit_predictor", "always_slow").ok());
  const IoOutcome outcome = blk_->SubmitIo(0, false);
  EXPECT_TRUE(outcome.used_model);
  EXPECT_TRUE(outcome.predicted_slow);
  EXPECT_TRUE(outcome.redirected);
  EXPECT_FALSE(outcome.revoked);
  EXPECT_EQ(replica_->total_ios(), 1u);
  EXPECT_EQ(primary_->total_ios(), 0u);
  EXPECT_EQ(blk_->stats().redirects, 1u);
}

TEST_F(BlockLayerTest, ModelVouchDisablesReactiveRevocation) {
  // Slow primary + model that vouches "fast": the I/O pays the full pause.
  SsdConfig slow = QuietSsd(13);
  slow.gc_per_read = 1.0;
  slow.gc_pause_mean = Milliseconds(50);
  primary_ = std::make_unique<SsdDevice>("primary", slow);
  MakeBlockLayer();
  auto policy = std::make_shared<NeverSlowLearnedPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("blk.submit_predictor", "never_slow").ok());

  const IoOutcome outcome = blk_->SubmitIo(0, false);
  EXPECT_TRUE(outcome.false_submit);
  EXPECT_FALSE(outcome.revoked);
  EXPECT_GT(outcome.latency, Milliseconds(1));
  EXPECT_EQ(blk_->stats().false_submits, 1u);
}

TEST_F(BlockLayerTest, FalseSubmitRateMaintainedInStore) {
  SsdConfig slow = QuietSsd(14);
  slow.gc_per_read = 1.0;
  slow.gc_pause_mean = Milliseconds(500);
  primary_ = std::make_unique<SsdDevice>("primary", slow);
  MakeBlockLayer();
  auto policy = std::make_shared<NeverSlowLearnedPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("blk.submit_predictor", "never_slow").ok());

  for (int i = 0; i < 5; ++i) {
    kernel_.queue().RunUntil(Seconds(i));  // spread I/Os so they don't queue
    blk_->SubmitIo(static_cast<uint64_t>(i), false);
  }
  // Every predicted-fast I/O was slow -> rate 1.0.
  EXPECT_DOUBLE_EQ(kernel_.store().LoadOr("false_submit_rate", Value(-1.0)).NumericOr(-1),
                   1.0);
}

TEST_F(BlockLayerTest, MlEnabledKillSwitchBypassesModel) {
  MakeBlockLayer();
  auto policy = std::make_shared<AlwaysSlowPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("blk.submit_predictor", "always_slow").ok());
  kernel_.store().Save("blk.ml_enabled", Value(false));
  const IoOutcome outcome = blk_->SubmitIo(0, false);
  EXPECT_FALSE(outcome.used_model);
  EXPECT_FALSE(outcome.redirected);  // reverts to default primary path
  EXPECT_EQ(primary_->total_ios(), 1u);
}

TEST_F(BlockLayerTest, InferenceCostAddedAndAccounted) {
  MakeBlockLayer();
  auto policy = std::make_shared<NeverSlowLearnedPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("blk.submit_predictor", "never_slow").ok());
  blk_->SubmitIo(0, false);
  EXPECT_EQ(blk_->stats().inference_ns_total, Microseconds(5));
  EXPECT_GE(kernel_.store()
                .Aggregate("blk.infer_cost_us", AggKind::kCount, Seconds(10), kernel_.now())
                .value(),
            1.0);
}

TEST_F(BlockLayerTest, LatencySeriesObserved) {
  MakeBlockLayer();
  blk_->SubmitIo(0, false);
  blk_->SubmitIo(1, false);
  EXPECT_EQ(kernel_.store()
                .Aggregate("blk.io_latency_us", AggKind::kCount, Seconds(10), kernel_.now())
                .value(),
            2.0);
}

TEST_F(BlockLayerTest, FeatureVectorShape) {
  MakeBlockLayer();
  blk_->SubmitIo(0, false);
  const IoContext context = blk_->MakeContext(5, true);
  ASSERT_EQ(context.features.size(), kIoFeatureDim);
  EXPECT_EQ(context.features[6], 1.0);              // write flag
  EXPECT_GT(context.features[3], 0.0);              // newest latency history entry
  EXPECT_EQ(context.features[0], 0.0);              // history not yet warm
}

// --- Scheduler ---

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : scheduler_(kernel_) { Logger::Global().set_level(LogLevel::kOff); }

  Kernel kernel_;
  Scheduler scheduler_;
};

TEST_F(SchedulerTest, PicksAndRunsBursts) {
  const TaskId a = scheduler_.AddTask("a");
  ASSERT_TRUE(scheduler_.SubmitBurst(a, Milliseconds(10)).ok());
  int picks = 0;
  while (scheduler_.Tick() >= 0) {
    kernel_.queue().RunUntil(kernel_.now() + Milliseconds(4));
    ++picks;
  }
  EXPECT_EQ(picks, 3);  // 10ms in 4ms quanta
  EXPECT_EQ(scheduler_.GetTask(a).value().total_cpu, Milliseconds(10));
  EXPECT_EQ(scheduler_.GetTask(a).value().state, TaskState::kBlocked);
}

TEST_F(SchedulerTest, FairPolicySharesByWeight) {
  const TaskId heavy = scheduler_.AddTask("heavy", 3.0);
  const TaskId light = scheduler_.AddTask("light", 1.0);
  ASSERT_TRUE(scheduler_.SubmitBurst(heavy, Seconds(10)).ok());
  ASSERT_TRUE(scheduler_.SubmitBurst(light, Seconds(10)).ok());
  auto policy = std::make_shared<FairPickPolicy>();
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("sched.pick_next", "sched_fair").ok());

  for (int i = 0; i < 1000; ++i) {
    scheduler_.Tick();
    kernel_.queue().RunUntil(kernel_.now() + Milliseconds(4));
  }
  const Duration heavy_cpu = scheduler_.GetTask(heavy).value().total_cpu;
  const Duration light_cpu = scheduler_.GetTask(light).value().total_cpu;
  const double ratio = static_cast<double>(heavy_cpu) / static_cast<double>(light_cpu);
  EXPECT_NEAR(ratio, 3.0, 0.25);
}

TEST_F(SchedulerTest, IdleTickReturnsMinusOne) {
  EXPECT_EQ(scheduler_.Tick(), -1);
  EXPECT_EQ(scheduler_.stats().idle_quanta, 1u);
}

TEST_F(SchedulerTest, WaitTimesObservedToStore) {
  const TaskId a = scheduler_.AddTask("a");
  ASSERT_TRUE(scheduler_.SubmitBurst(a, Milliseconds(4)).ok());
  scheduler_.Tick();
  EXPECT_GE(kernel_.store()
                .Aggregate("sched.wait_ms", AggKind::kCount, Seconds(10), kernel_.now())
                .value(),
            1.0);
}

TEST_F(SchedulerTest, StarvationMetricTracksWaitingTask) {
  const TaskId a = scheduler_.AddTask("a");
  ASSERT_TRUE(scheduler_.SubmitBurst(a, Milliseconds(4)).ok());
  kernel_.queue().RunUntil(Milliseconds(100));  // task waits 100ms
  EXPECT_EQ(scheduler_.CurrentMaxStarvation(), Milliseconds(100));
}

TEST_F(SchedulerTest, DeprioritizeChangesWeight) {
  scheduler_.AddTask("victim", 5.0);
  ASSERT_TRUE(scheduler_.Deprioritize({"victim"}, {0.5}, 0).ok());
  EXPECT_EQ(scheduler_.GetTaskByName("victim").value().weight, 0.5);
}

TEST_F(SchedulerTest, NegativePriorityKills) {
  const TaskId victim = scheduler_.AddTask("victim");
  ASSERT_TRUE(scheduler_.SubmitBurst(victim, Seconds(1)).ok());
  ASSERT_TRUE(scheduler_.Deprioritize({"victim"}, {-1.0}, 0).ok());
  EXPECT_EQ(scheduler_.GetTask(victim).value().state, TaskState::kDead);
  EXPECT_EQ(scheduler_.stats().kills, 1u);
  EXPECT_FALSE(scheduler_.SubmitBurst(victim, Seconds(1)).ok());
  EXPECT_EQ(scheduler_.Tick(), -1);  // dead task is not runnable
}

TEST_F(SchedulerTest, DeprioritizeUnknownTaskFails) {
  EXPECT_EQ(scheduler_.Deprioritize({"ghost"}, {1.0}, 0).code(), ErrorCode::kNotFound);
}

TEST_F(SchedulerTest, KernelTaskControlRoutesToScheduler) {
  // Scheduler registered itself with the kernel; a DEPRIORITIZE guardrail
  // action must reach it.
  scheduler_.AddTask("bg", 2.0);
  ASSERT_TRUE(kernel_.LoadGuardrails(R"(
    guardrail squeeze {
      trigger: { TIMER(1s, 1s) },
      rule: { false },
      action: { DEPRIORITIZE({bg}, {0.1}) }
    }
  )").ok());
  kernel_.Run(Seconds(1));
  EXPECT_EQ(scheduler_.GetTaskByName("bg").value().weight, 0.1);
}

// --- Readahead ---

class ReadaheadTest : public ::testing::Test {
 protected:
  ReadaheadTest() { Logger::Global().set_level(LogLevel::kOff); }
  Kernel kernel_;
};

TEST_F(ReadaheadTest, SequentialAccessBenefitsFromHeuristic) {
  ReadaheadManager manager(kernel_, {});
  auto policy = std::make_shared<FixedWindowReadahead>(8);
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("mem.readahead", policy->name()).ok());
  for (uint64_t chunk = 0; chunk < 200; ++chunk) {
    manager.Read(chunk);
  }
  // After warmup almost everything hits.
  EXPECT_GT(manager.stats().hit_rate(), 0.8);
}

TEST_F(ReadaheadTest, NoPolicyMeansAllMisses) {
  ReadaheadManager manager(kernel_, {});
  for (uint64_t chunk = 0; chunk < 50; ++chunk) {
    manager.Read(chunk);
  }
  EXPECT_EQ(manager.stats().hits, 0u);
}

TEST_F(ReadaheadTest, RereadIsAHit) {
  ReadaheadManager manager(kernel_, {});
  const Duration miss = manager.Read(7);
  const Duration hit = manager.Read(7);
  EXPECT_LT(hit, miss);
  EXPECT_EQ(manager.stats().hits, 1u);
}

class OutOfBoundsReadahead : public ReadaheadPolicy {
 public:
  explicit OutOfBoundsReadahead(int64_t decision) : decision_(decision) {}
  std::string name() const override { return "oob_readahead"; }
  bool is_learned() const override { return true; }
  int64_t PrefetchChunks(const ReadaheadContext&) override { return decision_; }

 private:
  int64_t decision_;
};

TEST_F(ReadaheadTest, IllegalDecisionClampedAndCounted) {
  ReadaheadConfig config;
  config.cache_capacity_chunks = 64;
  ReadaheadManager manager(kernel_, config);
  auto policy = std::make_shared<OutOfBoundsReadahead>(1000000);
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("mem.readahead", policy->name()).ok());
  manager.Read(0);
  EXPECT_EQ(manager.stats().illegal_decisions, 1u);
  // Raw decision is visible to guardrails even though the kernel clamped.
  EXPECT_EQ(kernel_.store().LoadOr("ra.last_decision", Value(0)).AsInt().value(), 1000000);
  EXPECT_LE(manager.cached_chunks(), 65u);
}

TEST_F(ReadaheadTest, NegativeDecisionClamped) {
  ReadaheadManager manager(kernel_, {});
  auto policy = std::make_shared<OutOfBoundsReadahead>(-5);
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("mem.readahead", policy->name()).ok());
  manager.Read(0);
  EXPECT_EQ(manager.stats().illegal_decisions, 1u);
  EXPECT_EQ(manager.stats().prefetched_chunks, 0u);
}

TEST_F(ReadaheadTest, CacheEvictionBoundsOccupancy) {
  ReadaheadConfig config;
  config.cache_capacity_chunks = 16;
  ReadaheadManager manager(kernel_, config);
  auto policy = std::make_shared<FixedWindowReadahead>(8);
  ASSERT_TRUE(kernel_.registry().Register(policy).ok());
  ASSERT_TRUE(kernel_.registry().BindSlot("mem.readahead", policy->name()).ok());
  for (uint64_t chunk = 0; chunk < 500; ++chunk) {
    manager.Read(chunk);
  }
  EXPECT_LE(manager.cached_chunks(), 17u);
}

TEST_F(ReadaheadTest, FeaturesReflectSequentiality) {
  ReadaheadManager manager(kernel_, {});
  for (uint64_t chunk = 10; chunk < 20; ++chunk) {
    manager.Read(chunk);
  }
  const ReadaheadContext context = manager.MakeContext(20);
  EXPECT_DOUBLE_EQ(context.features[1], 1.0);  // fully sequential
  EXPECT_DOUBLE_EQ(context.features[3], 1.0);  // mean stride 1
}

}  // namespace
}  // namespace osguard
