// Differential campaign for the agent callout path (docs/AGENT.md): the
// serial engine is the oracle; the sharded engine and the panic+warm-restart
// protocol must reproduce its observable state byte for byte. Each seed
// derives a bursty multi-session tool-call workload (src/wl/sessiongen),
// drives it through Kernel::OnToolCall on two kernels, and compares feature
// store + report ring + engine image via the persist codec — the same
// oracle shard_diff_test and persist_test use.
//
// 1000 seeds per run, split across four regimes:
//   * 400 clean seeds        (FUNCTION-only agent specs: the parallel path —
//                             the campaign asserts parallel evals happened)
//   * 300 chaos seeds        (agent.event_drop, agent.dup_session,
//                             engine.callout_drop/delay armed)
//   * 200 governance seeds   (the shipped ONCHANGE specs: deny/throttle/
//                             kill corrective loops; the key-scoped
//                             classifier keeps the FUNCTION monitors on
//                             workers — their reads are disjoint from the
//                             cascades' agent.ctl.* writes — and the
//                             campaign asserts the parallel path stayed hot
//                             with a >= 50% worker-eval fraction on the
//                             governance + watch-monitor mix)
//   * 100 persist seeds      (mid-trace panic + warm restart on both sides)
// OSGUARD_CHAOS_SEED offsets the seed base so CI matrices explore fresh
// seeds without code changes.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/agent/harness.h"
#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/wl/sessiongen.h"

#ifndef OSGUARD_SPECS_DIR
#define OSGUARD_SPECS_DIR "specs"
#endif

namespace osguard {
namespace {

namespace fs = std::filesystem;

uint64_t SeedBase() {
  const char* env = std::getenv("OSGUARD_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 0;
}

std::string GovernanceSpec() {
  std::ifstream in(std::string(OSGUARD_SPECS_DIR) + "/agent_governance.osg");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Pure-read FUNCTION monitors over the agent feature keys: no ONCHANGE, no
// rule writes, no dynamic keys — fully parallel-eligible, so this spec set
// exercises the sharded fan-out on the OnToolCall path.
constexpr char kFunctionOnlySpec[] = R"(
  guardrail agent-flood-watch {
    trigger: { FUNCTION(agent.tool_call) },
    rule: { RATE(agent.calls.stream, 500ms) <= 150 },
    action: { REPORT("agent call storm") }
  }
  guardrail agent-exec-watch {
    trigger: { FUNCTION(agent.tool_call) },
    rule: { LOAD_OR(agent.calls.exec, 0) <= 5 },
    action: { REPORT("exec heavy") }
  }
  guardrail agent-taint-watch {
    trigger: { FUNCTION(agent.tool_call) },
    rule: { LOAD_OR(agent.taint.net_after_secret, 0) <= 0 },
    action: { REPORT("exfiltration observed") }
  }
  guardrail agent-session-watch {
    trigger: { FUNCTION(agent.tool_call) },
    rule: { LOAD_OR(agent.rate.current, 0) <= 40 },
    action: { REPORT("session storm") }
  }
)";

constexpr char kAgentChaosSpec[] = R"(
  chaos {
    site agent.event_drop { mode = bernoulli, p = 0.1 },
    site agent.dup_session { mode = bernoulli, p = 0.08 },
    site engine.callout_drop { mode = bernoulli, p = 0.05 },
    site engine.callout_delay { mode = bernoulli, p = 0.05, latency = 2ms }
  }
)";

struct RunConfig {
  bool sharded = false;
  size_t shards = 3;
  bool governance_specs = false;     // shipped ONCHANGE specs vs FUNCTION-only
  bool mix_function_specs = false;   // add the FUNCTION-only watch monitors too
  const char* chaos_spec = nullptr;  // extra source arming chaos sites
  bool reboot = false;               // panic + warm restart mid-trace
  std::string persist_dir;           // set iff reboot
};

// Per-seed workload shape: every parameter the generator exposes is varied
// so the campaign sweeps arrival rates, burst tails, and tool mixes.
SessionWorkloadOptions WorkloadFor(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 17);
  SessionWorkloadOptions options;
  options.duration = Milliseconds(static_cast<int64_t>(rng.UniformInt(250, 500)));
  options.sessions_per_sec = rng.Uniform(50.0, 120.0);
  options.mean_bursts = rng.Uniform(1.5, 4.0);
  options.burst_shape = rng.Uniform(1.1, 2.0);
  options.max_burst_calls = 64;
  options.mean_intra_gap = Milliseconds(static_cast<int64_t>(rng.UniformInt(2, 10)));
  options.mean_think = Milliseconds(static_cast<int64_t>(rng.UniformInt(50, 200)));
  options.net_fraction = rng.Uniform(0.15, 0.4);
  options.exec_fraction = rng.Uniform(0.02, 0.08);
  options.secret_fraction = rng.Uniform(0.02, 0.1);
  return options;
}

std::string RunWorkload(uint64_t seed, const RunConfig& config,
                        ShardedStats* stats_out = nullptr,
                        uint64_t* total_evals_out = nullptr) {
  EngineOptions engine_options;
  engine_options.measure_wall_time = false;
  ShardingOptions sharding;
  sharding.enabled = config.sharded;
  sharding.shards = config.shards;
  sharding.telemetry = false;
  Kernel kernel(engine_options, sharding);

  ChaosEngine chaos(seed);
  if (config.chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
  }
  std::unique_ptr<PersistManager> persist;
  if (config.reboot) {
    PersistOptions persist_options;
    persist_options.dir = config.persist_dir;
    persist = std::make_unique<PersistManager>(persist_options);
    kernel.AttachPersist(persist.get());
  }
  EXPECT_TRUE(kernel
                  .LoadGuardrails(config.governance_specs
                                      ? GovernanceSpec()
                                      : std::string(kFunctionOnlySpec))
                  .ok());
  if (config.governance_specs && config.mix_function_specs) {
    EXPECT_TRUE(kernel.LoadGuardrails(kFunctionOnlySpec).ok());
  }
  if (config.chaos_spec != nullptr) {
    EXPECT_TRUE(kernel.LoadGuardrails(config.chaos_spec).ok());
  }
  if (persist != nullptr) {
    EXPECT_TRUE(persist->Open().ok());
  }

  const agent::Harness harness(WorkloadFor(seed), seed);
  if (config.reboot) {
    // Crash protocol: deliver half the trace, panic, warm-restart, resume at
    // the same event index. Every OnToolCall commits a journal frame, so
    // recovery restores the state as of the last delivered event; serial and
    // sharded kernels crash at the same index and must land on the same
    // bytes.
    const size_t half = harness.events().size() / 2;
    const std::span<const agent::ToolCallEvent> events(harness.events());
    agent::ReplayTrace(kernel, events.first(half));
    kernel.Panic();
    auto recovery = kernel.Reboot();
    EXPECT_TRUE(recovery.ok());
    if (recovery.ok()) {
      EXPECT_FALSE(recovery.value().cold_start);
    }
    agent::ReplayTrace(kernel, events, half);
  } else {
    harness.Drive(kernel);
  }

  if (stats_out != nullptr && kernel.sharded_engine() != nullptr) {
    *stats_out = kernel.sharded_engine()->stats();
  }
  if (total_evals_out != nullptr) {
    *total_evals_out = kernel.engine().stats().evaluations;
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

class AgentDiffTest : public ::testing::Test {
 protected:
  AgentDiffTest() { Logger::Global().set_level(LogLevel::kOff); }

  fs::path FreshDir(const std::string& name) {
    fs::path dir = fs::temp_directory_path() / ("osguard_agent_diff_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  }
};

TEST_F(AgentDiffTest, CleanSeedsSerialVsSharded) {
  const uint64_t base = SeedBase();
  uint64_t parallel_evals = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    RunConfig sharded;
    sharded.sharded = true;
    ShardedStats stats;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
  }
  // The equivalence is only meaningful if the agent callout actually took
  // the parallel path (FUNCTION-only monitors are batch-eligible).
  EXPECT_GT(parallel_evals, 0u);
}

TEST_F(AgentDiffTest, ChaosArmedSeeds) {
  const uint64_t base = SeedBase() + 0x50000;
  for (uint64_t i = 0; i < 300; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.chaos_spec = kAgentChaosSpec;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded))
        << "seed=" << seed;
  }
}

TEST_F(AgentDiffTest, GovernanceSpecSeedsKeyScopedParallel) {
  const uint64_t base = SeedBase() + 0x60000;
  uint64_t parallel_evals = 0;
  uint64_t serial_callouts = 0;
  uint64_t total_evals = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.governance_specs = true;
    serial.mix_function_specs = true;
    RunConfig sharded = serial;
    sharded.sharded = true;
    ShardedStats stats;
    uint64_t evals = 0;
    const std::string expect = RunWorkload(seed, serial);
    const std::string actual = RunWorkload(seed, sharded, &stats, &evals);
    ASSERT_EQ(expect, actual) << "seed=" << seed;
    parallel_evals += stats.parallel_evals;
    serial_callouts += stats.serial_callouts;
    total_evals += evals;
  }
  // The ONCHANGE governance monitors used to force the whole-callout serial
  // fallback. The key-scoped classifier sees their cascades write only
  // agent.ctl.* — disjoint from every FUNCTION rule's reads — so the watch
  // monitors stay on workers even with the corrective loops live, and the
  // callouts never drop to global serial (the ONCHANGE evals themselves
  // replay inline on external writes, exactly as the serial oracle runs
  // them).
  EXPECT_EQ(serial_callouts, 0u);
  ASSERT_GT(total_evals, 0u);
  const double worker_fraction =
      static_cast<double>(parallel_evals) / static_cast<double>(total_evals);
  EXPECT_GE(worker_fraction, 0.5) << "parallel=" << parallel_evals
                                  << " total=" << total_evals;
}

TEST_F(AgentDiffTest, PersistWarmRestartSeeds) {
  const uint64_t base = SeedBase() + 0x80000;
  const fs::path serial_dir = FreshDir("serial");
  const fs::path sharded_dir = FreshDir("sharded");
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t seed = base + i;
    RunConfig serial;
    serial.governance_specs = true;
    serial.reboot = true;
    serial.persist_dir = (serial_dir / std::to_string(seed)).string();
    RunConfig sharded = serial;
    sharded.sharded = true;
    sharded.persist_dir = (sharded_dir / std::to_string(seed)).string();
    fs::create_directories(serial.persist_dir);
    fs::create_directories(sharded.persist_dir);
    ASSERT_EQ(RunWorkload(seed, serial), RunWorkload(seed, sharded))
        << "seed=" << seed;
  }
  fs::remove_all(serial_dir);
  fs::remove_all(sharded_dir);
}

TEST_F(AgentDiffTest, ShardWidthSweep) {
  const uint64_t seed = SeedBase() + 0x70000;
  RunConfig serial;
  const std::string expect = RunWorkload(seed, serial);
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    RunConfig config;
    config.sharded = true;
    config.shards = shards;
    ASSERT_EQ(expect, RunWorkload(seed, config)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace osguard
